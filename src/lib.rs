//! # synq-suite
//!
//! Umbrella crate for the `synq` workspace — a from-scratch Rust
//! reproduction of **"Scalable Synchronous Queues"** (Scherer, Lea & Scott,
//! PPoPP 2006). It re-exports every member crate under one roof so the
//! examples and integration tests in this repository (and downstream
//! experiments) can depend on a single package.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! The individual crates:
//!
//! * [`core`] (`synq`) — the paper's contribution: the synchronous dual
//!   queue (fair) and synchronous dual stack (unfair).
//! * [`baselines`] — the comparators: naive monitor queue, Hanson's
//!   semaphore queue, Java SE 5.0-style fair/unfair queues.
//! * [`reclaim`] — pluggable memory reclamation (the GC substitute): the
//!   `Reclaimer`/`Shield` trait family with an epoch backend (default) and
//!   a hazard-pointer backend whose stalled-thread garbage is bounded.
//! * [`primitives`] — parker, semaphore, ticket lock, backoff, spin policy.
//! * [`classic`] — Treiber stack, M&S queue, nonsynchronous dual structures.
//! * [`exchanger`] — elimination arena and elimination-backoff queue.
//! * [`transfer`] — TransferQueue (sync + async enqueue), plus the bounded
//!   ring-buffer mode (`TransferQueue::bounded`, `BufferedChannel`) with
//!   cycle-versioned slots and batch send/recv.
//! * [`executor`] — ThreadPoolExecutor built on a synchronous handoff.

pub use synq as core;
pub use synq_baselines as baselines;
pub use synq_classic as classic;
pub use synq_exchanger as exchanger;
pub use synq_executor as executor;
pub use synq_primitives as primitives;
pub use synq_reclaim as reclaim;
pub use synq_transfer as transfer;
