//! Baseline synchronous queues from the paper's evaluation (§3.1–§3.2).
//!
//! These are the algorithms the paper's two new structures are measured
//! against:
//!
//! * [`NaiveSQ`] — the monitor-based queue of Listing 3. One lock, one
//!   item slot, `notify_all` at every state change: a number of wake-ups
//!   *quadratic* in the number of waiting threads.
//! * [`HansonSQ`] — Hanson's queue (Listing 1): three semaphores, six
//!   scheduler synchronization events per transfer, blocking on nearly
//!   every operation. No way to support `poll`/`offer` or time-out.
//! * [`Java5SQ`] — the Java SE 5.0 `SynchronousQueue` (Listing 4): one
//!   entry lock protecting two wait lists (queues in fair mode, stacks in
//!   unfair mode), one parked waiter per node. Three synchronization
//!   events per transfer, but the single coarse-grained lock is the
//!   serialization bottleneck the paper eliminates. The fair variant uses
//!   a strictly FIFO entry lock ([`synq_primitives::TicketLock`]), which
//!   reproduces the "pileups that block the threads that will fulfill
//!   waiting threads".

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod hanson;
pub mod java5;
pub mod naive;

pub use hanson::{HansonFastSQ, HansonSQ};
pub use java5::Java5SQ;
pub use naive::NaiveSQ;
