//! The Java SE 5.0 `SynchronousQueue` (paper Listing 4).
//!
//! One entry lock protects two wait lists — `waiting_producers` and
//! `waiting_consumers` — which are FIFO queues in fair mode and LIFO stacks
//! in unfair mode. An arriving thread that finds a counterpart waiting
//! performs a single synchronization operation (the entry lock); otherwise
//! it enqueues a node carrying its own little synchronizer and blocks on
//! it. Three synchronization events per transfer versus Hanson's six — but
//! the coarse-grained lock serializes *all* operations, which is the
//! scalability bottleneck the paper's lock-free structures remove.
//!
//! In fair mode the entry lock itself is FIFO-fair
//! ([`synq_primitives::TicketLock`]), matching the Java implementation's
//! fair-mode `ReentrantLock`: "the fair-mode version uses a fair-mode entry
//! lock to ensure FIFO wait ordering. This causes pileups that block the
//! threads that will fulfill waiting threads" — the effect ablation A2
//! isolates.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use synq::{impl_channels_via_transferer, Deadline, TransferOutcome, Transferer};
use synq_primitives::{CancelToken, TicketLock};

/// Per-waiter synchronizer (the Listing 4 `Node` with its AQS replaced by
/// a mutex/condvar pair).
#[derive(Debug)]
struct Node<T> {
    state: Mutex<NodeState<T>>,
    cvar: Condvar,
}

#[derive(Debug)]
struct NodeState<T> {
    /// For producer nodes: the offered item (until taken). For consumer
    /// nodes: the delivered item (once fulfilled).
    item: Option<T>,
    done: bool,
    cancelled: bool,
}

#[derive(Debug)]
struct Lists<T> {
    waiting_producers: VecDeque<Arc<Node<T>>>,
    waiting_consumers: VecDeque<Arc<Node<T>>>,
}

impl<T> Lists<T> {
    /// Pops per the configured discipline, discarding cancelled nodes.
    /// The popped node's lock is NOT yet taken; the caller revalidates.
    fn pop(deque: &mut VecDeque<Arc<Node<T>>>, fair: bool) -> Option<Arc<Node<T>>> {
        if fair {
            deque.pop_front()
        } else {
            deque.pop_back()
        }
    }
}

/// The Listing 4 queue. `fair` selects FIFO wait lists + a FIFO entry
/// lock; unfair uses LIFO lists + an ordinary (barging) mutex.
///
/// Unlike [`crate::HansonSQ`], this design supports the full rich
/// interface, so it implements [`Transferer`] and participates in the
/// `ThreadPoolExecutor` benchmark (Figure 6).
///
/// # Examples
///
/// ```
/// use synq_baselines::Java5SQ;
/// use synq::{SyncChannel, TimedSyncChannel};
/// use std::sync::Arc;
/// use std::thread;
///
/// let q = Arc::new(Java5SQ::fair());
/// let q2 = Arc::clone(&q);
/// let t = thread::spawn(move || q2.take());
/// q.put(3u32);
/// assert_eq!(t.join().unwrap(), 3);
/// assert_eq!(q.poll(), None);
/// ```
#[derive(Debug)]
pub struct Java5SQ<T> {
    /// Present in fair mode: the FIFO entry lock taken around every list
    /// operation, dominating the inner mutex (which is then uncontended).
    fair_entry: Option<TicketLock>,
    lists: Mutex<Lists<T>>,
    fair: bool,
}

impl<T: Send> Java5SQ<T> {
    /// Fair (queue-based) mode with a FIFO entry lock.
    pub fn fair() -> Self {
        Self::with_mode(true)
    }

    /// Unfair (stack-based) mode with an ordinary mutex.
    pub fn unfair() -> Self {
        Self::with_mode(false)
    }

    /// Explicit-mode constructor (used by ablation A2, which also pairs
    /// fair lists with an unfair lock via [`Java5SQ::fair_lists_unfair_lock`]).
    pub fn with_mode(fair: bool) -> Self {
        Java5SQ {
            fair_entry: fair.then(TicketLock::new),
            lists: Mutex::new(Lists {
                waiting_producers: VecDeque::new(),
                waiting_consumers: VecDeque::new(),
            }),
            fair,
        }
    }

    /// Ablation A2: FIFO wait lists but a barging entry lock — isolates
    /// how much of fair-mode's cost is the fair *lock* rather than FIFO
    /// pairing.
    pub fn fair_lists_unfair_lock() -> Self {
        Java5SQ {
            fair_entry: None,
            lists: Mutex::new(Lists {
                waiting_producers: VecDeque::new(),
                waiting_consumers: VecDeque::new(),
            }),
            fair: true,
        }
    }

    /// True if this queue pairs FIFO.
    pub fn is_fair(&self) -> bool {
        self.fair
    }

    fn with_lists<R>(&self, f: impl FnOnce(&mut Lists<T>) -> R) -> R {
        let _entry = self.fair_entry.as_ref().map(|l| l.lock());
        let mut lists = self.lists.lock().unwrap();
        f(&mut lists)
    }

    /// Blocks on `node` until fulfilled, timed out, or cancelled.
    fn await_node(
        &self,
        node: &Node<T>,
        is_producer: bool,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        let mut st = node.state.lock().unwrap();
        loop {
            if st.done {
                return if is_producer {
                    TransferOutcome::Transferred(None)
                } else {
                    debug_assert!(st.item.is_some());
                    TransferOutcome::Transferred(st.item.take())
                };
            }
            let cancelled = token.is_some_and(|tk| tk.is_cancelled());
            if cancelled || deadline.expired() {
                st.cancelled = true;
                let item = st.item.take(); // producer reclaims its item
                return if cancelled {
                    TransferOutcome::Cancelled(item)
                } else {
                    TransferOutcome::Timeout(item)
                };
            }
            // Condvar waits cannot be interrupted by a CancelToken, so wait
            // in slices when a token is present.
            let slice = match (deadline, token) {
                (Deadline::At(d), None) => {
                    let now = Instant::now();
                    if now >= d {
                        continue;
                    }
                    Some(d - now)
                }
                (Deadline::At(d), Some(_)) => {
                    let now = Instant::now();
                    if now >= d {
                        continue;
                    }
                    Some((d - now).min(Duration::from_millis(2)))
                }
                (_, Some(_)) => Some(Duration::from_millis(2)),
                (_, None) => None,
            };
            st = match slice {
                Some(s) => node.cvar.wait_timeout(st, s).unwrap().0,
                None => node.cvar.wait(st).unwrap(),
            };
        }
    }
}

/// Result of the single-lock pop-or-push step of `transfer`.
enum Step<T> {
    /// A counterpart was fulfilled while holding the entry lock; for
    /// consumers the payload is the received item.
    Done(Option<T>),
    /// We were enqueued and must wait on our node.
    MustWait(Arc<Node<T>>),
    /// No counterpart and waiting is not permitted; the item is handed
    /// back to the caller.
    FailFast(Option<T>),
}

impl<T: Send> Transferer<T> for Java5SQ<T> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        let is_producer = item.is_some();
        let cancelled_on_entry = token.is_some_and(|tk| tk.is_cancelled());
        let mut give = item;
        // Listing 4 lines 18–22 / 33–37: the pop-of-the-counterpart-list
        // and the push-onto-our-own-list happen under ONE hold of the
        // entry lock. (Doing them as two separate acquisitions admits a
        // race where a producer and a consumer each observe "empty" and
        // both enqueue, stranding the pair forever.)
        let step = self.with_lists(|lists| {
            let counterpart = if is_producer {
                &mut lists.waiting_consumers
            } else {
                &mut lists.waiting_producers
            };
            while let Some(node) = Lists::pop(counterpart, self.fair) {
                let mut st = node.state.lock().unwrap();
                if st.cancelled {
                    continue; // discard and try the next waiter
                }
                if is_producer {
                    st.item = give.take();
                } else {
                    give = st.item.take();
                    debug_assert!(give.is_some(), "producer node without item");
                }
                st.done = true;
                drop(st);
                node.cvar.notify_one();
                return Step::Done(if is_producer { None } else { give.take() });
            }
            if deadline.is_now() || cancelled_on_entry {
                return Step::FailFast(give.take());
            }
            let node = Arc::new(Node {
                state: Mutex::new(NodeState {
                    item: give.take(),
                    done: false,
                    cancelled: false,
                }),
                cvar: Condvar::new(),
            });
            let own = if is_producer {
                &mut lists.waiting_producers
            } else {
                &mut lists.waiting_consumers
            };
            own.push_back(Arc::clone(&node));
            Step::MustWait(node)
        });
        match step {
            Step::Done(v) => TransferOutcome::Transferred(v),
            Step::FailFast(v) => {
                if cancelled_on_entry {
                    TransferOutcome::Cancelled(v)
                } else {
                    TransferOutcome::Timeout(v)
                }
            }
            Step::MustWait(node) => self.await_node(&node, is_producer, deadline, token),
        }
    }
}

impl_channels_via_transferer!(Java5SQ);

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use synq::{SyncChannel, TimedSyncChannel};

    fn both_modes() -> Vec<Java5SQ<u32>> {
        vec![
            Java5SQ::fair(),
            Java5SQ::unfair(),
            Java5SQ::fair_lists_unfair_lock(),
        ]
    }

    #[test]
    fn put_take_pair_all_modes() {
        for q in both_modes() {
            let q = Arc::new(q);
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || q2.take());
            q.put(77);
            assert_eq!(t.join().unwrap(), 77);
        }
    }

    #[test]
    fn poll_offer_fail_on_empty() {
        for q in both_modes() {
            assert_eq!(q.poll(), None);
            assert_eq!(q.offer(1), Err(1));
        }
    }

    #[test]
    fn offer_succeeds_with_waiting_consumer() {
        let q = Arc::new(Java5SQ::fair());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        // Wait for the consumer node to be enqueued.
        loop {
            match q.offer(13) {
                Ok(()) => break,
                Err(_) => thread::yield_now(),
            }
        }
        assert_eq!(t.join().unwrap(), 13);
    }

    #[test]
    fn timed_poll_expires() {
        let q: Java5SQ<u32> = Java5SQ::unfair();
        let start = Instant::now();
        assert_eq!(q.poll_timeout(Duration::from_millis(25)), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn timed_offer_returns_item() {
        let q: Java5SQ<u32> = Java5SQ::fair();
        assert_eq!(q.offer_timeout(5, Duration::from_millis(10)), Err(5));
    }

    #[test]
    fn fair_mode_pairs_fifo() {
        let q = Arc::new(Java5SQ::fair());
        let mut producers = Vec::new();
        for i in 0..5 {
            let q2 = Arc::clone(&q);
            producers.push(thread::spawn(move || q2.put(i)));
            // Ensure arrival order: wait until producer i is queued.
            loop {
                let len = q.lists.lock().unwrap().waiting_producers.len();
                if len >= (i + 1) as usize {
                    break;
                }
                thread::yield_now();
            }
        }
        for expect in 0..5 {
            assert_eq!(q.take(), expect);
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn unfair_mode_pairs_lifo() {
        let q = Arc::new(Java5SQ::unfair());
        let mut producers = Vec::new();
        for i in 0..4 {
            let q2 = Arc::clone(&q);
            producers.push(thread::spawn(move || q2.put(i)));
            loop {
                let len = q.lists.lock().unwrap().waiting_producers.len();
                if len >= (i + 1) as usize {
                    break;
                }
                thread::yield_now();
            }
        }
        for expect in (0..4).rev() {
            assert_eq!(q.take(), expect);
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn cancellation_interrupts_take() {
        let q: Arc<Java5SQ<u32>> = Arc::new(Java5SQ::fair());
        let token = CancelToken::new();
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take_with(Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(None) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_nodes_are_skipped_by_fulfillers() {
        let q: Arc<Java5SQ<u32>> = Arc::new(Java5SQ::fair());
        // A consumer times out, leaving a cancelled node in the list.
        assert_eq!(q.poll_timeout(Duration::from_millis(5)), None);
        // A fresh consumer then a producer: the producer must skip the
        // cancelled node and fulfill the live one.
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        loop {
            match q.offer(21) {
                Ok(()) => break,
                Err(_) => thread::yield_now(),
            }
        }
        assert_eq!(t.join().unwrap(), 21);
    }

    #[test]
    fn stress_conserves_values() {
        const N: usize = 4;
        const PER: usize = 300;
        for q in [Java5SQ::fair(), Java5SQ::unfair()] {
            let q = Arc::new(q);
            let mut handles = Vec::new();
            for p in 0..N {
                let q = Arc::clone(&q);
                handles.push(thread::spawn(move || {
                    for i in 0..PER {
                        q.put((p * PER + i) as u32);
                    }
                }));
            }
            let consumers: Vec<_> = (0..N)
                .map(|_| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || (0..PER).map(|_| q.take() as usize).sum::<usize>())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, (0..N * PER).sum::<usize>());
        }
    }
}
