//! The Java SE 5.0 `SynchronousQueue` (paper Listing 4).
//!
//! One entry lock protects two wait lists — `waiting_producers` and
//! `waiting_consumers` — which are FIFO queues in fair mode and LIFO stacks
//! in unfair mode. An arriving thread that finds a counterpart waiting
//! performs a single synchronization operation (the entry lock); otherwise
//! it enqueues a node carrying its own little synchronizer and blocks on
//! it. Three synchronization events per transfer versus Hanson's six — but
//! the coarse-grained lock serializes *all* operations, which is the
//! scalability bottleneck the paper's lock-free structures remove.
//!
//! The per-waiter synchronizer is the shared
//! [`synq_primitives::WaitSlot`]: a fulfiller holding the entry lock
//! claims the node (`try_claim`), moves the item, and completes; the
//! waiter blocks in [`WaitSlot::await_outcome`]. The Listing 4 semantics
//! — park immediately, no spinning — are the default
//! [`SpinPolicy::park_immediately`] strategy, but [`Java5SQ::with_spin`]
//! exposes the same knob as the dual structures for uniform sweeps.
//!
//! In fair mode the entry lock itself is FIFO-fair
//! ([`synq_primitives::TicketLock`]), matching the Java implementation's
//! fair-mode `ReentrantLock`: "the fair-mode version uses a fair-mode entry
//! lock to ensure FIFO wait ordering. This causes pileups that block the
//! threads that will fulfill waiting threads" — the effect ablation A2
//! isolates.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use synq::{impl_channels_via_transferer, Deadline, TransferOutcome, Transferer};
use synq_primitives::{CancelToken, SpinPolicy, TicketLock, WaitOutcome, WaitSlot};

/// Per-waiter synchronizer (the Listing 4 `Node` with its AQS replaced by
/// the shared wait-slot protocol). Producer nodes are armed with their item
/// before being enqueued; consumer nodes receive the item on fulfillment.
type Node<T> = WaitSlot<T>;

#[derive(Debug)]
struct Lists<T> {
    waiting_producers: VecDeque<Arc<Node<T>>>,
    waiting_consumers: VecDeque<Arc<Node<T>>>,
}

impl<T> Lists<T> {
    /// Pops per the configured discipline. The popped node may already be
    /// cancelled; the caller arbitrates with [`WaitSlot::try_claim`].
    fn pop(deque: &mut VecDeque<Arc<Node<T>>>, fair: bool) -> Option<Arc<Node<T>>> {
        if fair {
            deque.pop_front()
        } else {
            deque.pop_back()
        }
    }
}

/// The Listing 4 queue. `fair` selects FIFO wait lists + a FIFO entry
/// lock; unfair uses LIFO lists + an ordinary (barging) mutex.
///
/// Unlike [`crate::HansonSQ`], this design supports the full rich
/// interface, so it implements [`Transferer`] and participates in the
/// `ThreadPoolExecutor` benchmark (Figure 6).
///
/// # Examples
///
/// ```
/// use synq_baselines::Java5SQ;
/// use synq::{SyncChannel, TimedSyncChannel};
/// use std::sync::Arc;
/// use std::thread;
///
/// let q = Arc::new(Java5SQ::fair());
/// let q2 = Arc::clone(&q);
/// let t = thread::spawn(move || q2.take());
/// q.put(3u32);
/// assert_eq!(t.join().unwrap(), 3);
/// assert_eq!(q.poll(), None);
/// ```
#[derive(Debug)]
pub struct Java5SQ<T> {
    /// Present in fair mode: the FIFO entry lock taken around every list
    /// operation, dominating the inner mutex (which is then uncontended).
    fair_entry: Option<TicketLock>,
    lists: Mutex<Lists<T>>,
    fair: bool,
    /// How waiters burn time before parking. Listing 4 parks immediately.
    spin: SpinPolicy,
}

impl<T: Send> Java5SQ<T> {
    /// Fair (queue-based) mode with a FIFO entry lock.
    pub fn fair() -> Self {
        Self::with_mode(true)
    }

    /// Unfair (stack-based) mode with an ordinary mutex.
    pub fn unfair() -> Self {
        Self::with_mode(false)
    }

    /// Explicit-mode constructor (used by ablation A2, which also pairs
    /// fair lists with an unfair lock via [`Java5SQ::fair_lists_unfair_lock`]).
    pub fn with_mode(fair: bool) -> Self {
        Self::with_spin(fair, SpinPolicy::park_immediately())
    }

    /// Explicit mode *and* spin policy — `with_spin` parity with the dual
    /// structures, for uniform wait-strategy sweeps. Listing 4 itself never
    /// spins ([`SpinPolicy::park_immediately`], the `with_mode` default).
    pub fn with_spin(fair: bool, spin: SpinPolicy) -> Self {
        Java5SQ {
            fair_entry: fair.then(TicketLock::new),
            lists: Mutex::new(Lists {
                waiting_producers: VecDeque::new(),
                waiting_consumers: VecDeque::new(),
            }),
            fair,
            spin,
        }
    }

    /// Ablation A2: FIFO wait lists but a barging entry lock — isolates
    /// how much of fair-mode's cost is the fair *lock* rather than FIFO
    /// pairing.
    pub fn fair_lists_unfair_lock() -> Self {
        Java5SQ {
            fair_entry: None,
            lists: Mutex::new(Lists {
                waiting_producers: VecDeque::new(),
                waiting_consumers: VecDeque::new(),
            }),
            fair: true,
            spin: SpinPolicy::park_immediately(),
        }
    }

    /// True if this queue pairs FIFO.
    pub fn is_fair(&self) -> bool {
        self.fair
    }

    fn with_lists<R>(&self, f: impl FnOnce(&mut Lists<T>) -> R) -> R {
        let _entry = self.fair_entry.as_ref().map(|l| l.lock());
        let mut lists = self.lists.lock().unwrap();
        f(&mut lists)
    }

    /// Blocks on `node` until fulfilled, timed out, or cancelled, through
    /// the shared wait loop. A cancelled node stays in its list; fulfillers
    /// discard it when their claim fails.
    fn await_node(
        &self,
        node: &Node<T>,
        is_producer: bool,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        match node.await_outcome(deadline, token, &self.spin) {
            WaitOutcome::Matched(_) => {
                if is_producer {
                    TransferOutcome::Transferred(None)
                } else {
                    // SAFETY: the terminal state publishes the deposit.
                    TransferOutcome::Transferred(Some(unsafe { node.take_item() }))
                }
            }
            verdict => {
                // We won the cancel CAS: the item cell is ours again, and
                // no fulfiller will ever claim this node.
                let item = if is_producer {
                    // SAFETY: producer nodes were armed before enqueue and
                    // the won cancel race returns the cell to us.
                    Some(unsafe { node.take_item() })
                } else {
                    None
                };
                if matches!(verdict, WaitOutcome::Cancelled) {
                    TransferOutcome::Cancelled(item)
                } else {
                    TransferOutcome::Timeout(item)
                }
            }
        }
    }
}

/// Result of the single-lock pop-or-push step of `transfer`.
enum Step<T> {
    /// A counterpart was fulfilled while holding the entry lock; for
    /// consumers the payload is the received item.
    Done(Option<T>),
    /// We were enqueued and must wait on our node.
    MustWait(Arc<Node<T>>),
    /// No counterpart and waiting is not permitted; the item is handed
    /// back to the caller.
    FailFast(Option<T>),
}

impl<T: Send> Transferer<T> for Java5SQ<T> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        let is_producer = item.is_some();
        let cancelled_on_entry = token.is_some_and(|tk| tk.is_cancelled());
        let mut give = item;
        // Listing 4 lines 18–22 / 33–37: the pop-of-the-counterpart-list
        // and the push-onto-our-own-list happen under ONE hold of the
        // entry lock. (Doing them as two separate acquisitions admits a
        // race where a producer and a consumer each observe "empty" and
        // both enqueue, stranding the pair forever.)
        let step = self.with_lists(|lists| {
            let counterpart = if is_producer {
                &mut lists.waiting_consumers
            } else {
                &mut lists.waiting_producers
            };
            while let Some(node) = Lists::pop(counterpart, self.fair) {
                if !node.try_claim() {
                    continue; // cancelled node: discard, try the next waiter
                }
                let received = if is_producer {
                    // SAFETY: the claim grants the item cell to us.
                    unsafe { node.put_item(give.take().expect("producer holds an item")) };
                    None
                } else {
                    // SAFETY: producer nodes are armed before enqueue and
                    // the claim grants the cell to us.
                    Some(unsafe { node.take_item() })
                };
                node.complete();
                synq_obs::probe!(Java5Transfers);
                return Step::Done(received);
            }
            if deadline.is_now() || cancelled_on_entry {
                return Step::FailFast(give.take());
            }
            let node = Arc::new(match give.take() {
                Some(v) => WaitSlot::with_item(v),
                None => WaitSlot::new(),
            });
            let own = if is_producer {
                &mut lists.waiting_producers
            } else {
                &mut lists.waiting_consumers
            };
            own.push_back(Arc::clone(&node));
            Step::MustWait(node)
        });
        match step {
            Step::Done(v) => TransferOutcome::Transferred(v),
            Step::FailFast(v) => {
                if cancelled_on_entry {
                    TransferOutcome::Cancelled(v)
                } else {
                    TransferOutcome::Timeout(v)
                }
            }
            Step::MustWait(node) => self.await_node(&node, is_producer, deadline, token),
        }
    }
}

impl_channels_via_transferer!(Java5SQ);

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::{Duration, Instant};
    use synq::{SyncChannel, TimedSyncChannel};

    fn both_modes() -> Vec<Java5SQ<u32>> {
        vec![
            Java5SQ::fair(),
            Java5SQ::unfair(),
            Java5SQ::fair_lists_unfair_lock(),
        ]
    }

    #[test]
    fn put_take_pair_all_modes() {
        for q in both_modes() {
            let q = Arc::new(q);
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || q2.take());
            q.put(77);
            assert_eq!(t.join().unwrap(), 77);
        }
    }

    #[test]
    fn poll_offer_fail_on_empty() {
        for q in both_modes() {
            assert_eq!(q.poll(), None);
            assert_eq!(q.offer(1), Err(1));
        }
    }

    #[test]
    fn offer_succeeds_with_waiting_consumer() {
        let q = Arc::new(Java5SQ::fair());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        // Wait for the consumer node to be enqueued.
        loop {
            match q.offer(13) {
                Ok(()) => break,
                Err(_) => thread::yield_now(),
            }
        }
        assert_eq!(t.join().unwrap(), 13);
    }

    #[test]
    fn timed_poll_expires() {
        let q: Java5SQ<u32> = Java5SQ::unfair();
        let start = Instant::now();
        assert_eq!(q.poll_timeout(Duration::from_millis(25)), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn timed_offer_returns_item() {
        let q: Java5SQ<u32> = Java5SQ::fair();
        assert_eq!(q.offer_timeout(5, Duration::from_millis(10)), Err(5));
    }

    #[test]
    fn spinning_variant_pairs_correctly() {
        // with_spin parity: the baseline accepts any strategy the dual
        // structures accept, and the protocol is unchanged by spinning.
        let q = Arc::new(Java5SQ::with_spin(false, SpinPolicy::fixed(64)));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(5u32);
        assert_eq!(t.join().unwrap(), 5);
        assert_eq!(q.poll(), None);
    }

    #[test]
    fn fair_mode_pairs_fifo() {
        let q = Arc::new(Java5SQ::fair());
        let mut producers = Vec::new();
        for i in 0..5 {
            let q2 = Arc::clone(&q);
            producers.push(thread::spawn(move || q2.put(i)));
            // Ensure arrival order: wait until producer i is queued.
            loop {
                let len = q.lists.lock().unwrap().waiting_producers.len();
                if len >= (i + 1) as usize {
                    break;
                }
                thread::yield_now();
            }
        }
        for expect in 0..5 {
            assert_eq!(q.take(), expect);
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn unfair_mode_pairs_lifo() {
        let q = Arc::new(Java5SQ::unfair());
        let mut producers = Vec::new();
        for i in 0..4 {
            let q2 = Arc::clone(&q);
            producers.push(thread::spawn(move || q2.put(i)));
            loop {
                let len = q.lists.lock().unwrap().waiting_producers.len();
                if len >= (i + 1) as usize {
                    break;
                }
                thread::yield_now();
            }
        }
        for expect in (0..4).rev() {
            assert_eq!(q.take(), expect);
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn cancellation_interrupts_take() {
        let q: Arc<Java5SQ<u32>> = Arc::new(Java5SQ::fair());
        let token = CancelToken::new();
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take_with(Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(None) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_nodes_are_skipped_by_fulfillers() {
        let q: Arc<Java5SQ<u32>> = Arc::new(Java5SQ::fair());
        // A consumer times out, leaving a cancelled node in the list.
        assert_eq!(q.poll_timeout(Duration::from_millis(5)), None);
        // A fresh consumer then a producer: the producer must skip the
        // cancelled node and fulfill the live one.
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        loop {
            match q.offer(21) {
                Ok(()) => break,
                Err(_) => thread::yield_now(),
            }
        }
        assert_eq!(t.join().unwrap(), 21);
    }

    #[test]
    fn abandoned_producer_item_is_dropped_with_queue() {
        // A producer that times out reclaims its item; a producer whose
        // node is still armed when the queue drops must not leak it.
        let payload = Arc::new(());
        let q: Java5SQ<Arc<()>> = Java5SQ::unfair();
        assert!(q
            .offer_timeout(Arc::clone(&payload), Duration::from_millis(5))
            .is_err());
        drop(q);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn stress_conserves_values() {
        const N: usize = 4;
        const PER: usize = 300;
        for q in [Java5SQ::fair(), Java5SQ::unfair()] {
            let q = Arc::new(q);
            let mut handles = Vec::new();
            for p in 0..N {
                let q = Arc::clone(&q);
                handles.push(thread::spawn(move || {
                    for i in 0..PER {
                        q.put((p * PER + i) as u32);
                    }
                }));
            }
            let consumers: Vec<_> = (0..N)
                .map(|_| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || (0..PER).map(|_| q.take() as usize).sum::<usize>())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, (0..N * PER).sum::<usize>());
        }
    }
}
