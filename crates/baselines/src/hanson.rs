//! Hanson's synchronous queue (paper Listing 1).
//!
//! Three semaphores coordinate a single item slot:
//!
//! * `send` — 1 minus the number of pending puts (producer exclusion);
//! * `recv` — 0 minus the number of pending takes (consumer wakeup);
//! * `sync` — whether the item has been consumed (producer completion).
//!
//! Each transfer costs **six** scheduler-level synchronization events
//! (three per side), and the consumer blocks on `recv` in virtually every
//! execution. The paper also notes that this structure cannot reasonably
//! support `poll`/`offer` or time-out — which is why this type implements
//! only [`SyncChannel`] and is absent from the `ThreadPoolExecutor`
//! benchmark (Figure 6), exactly as in the paper.

use std::cell::UnsafeCell;
use synq::SyncChannel;
use synq_primitives::{FastSemaphore, Semaphore};

/// Listing 1, translated. The `item` slot is an `UnsafeCell`: exclusive
/// access is guaranteed by the semaphore protocol (a producer owns the slot
/// between `send.acquire()` and `recv.release()`; the consumer owns it
/// between `recv.acquire()` and `sync.release()`), and the semaphores'
/// internal lock provides the happens-before edges.
///
/// # Examples
///
/// ```
/// use synq_baselines::HansonSQ;
/// use synq::SyncChannel;
/// use std::sync::Arc;
/// use std::thread;
///
/// let q = Arc::new(HansonSQ::new());
/// let q2 = Arc::clone(&q);
/// let t = thread::spawn(move || q2.take());
/// q.put("m");
/// assert_eq!(t.join().unwrap(), "m");
/// ```
#[derive(Debug)]
pub struct HansonSQ<T> {
    item: UnsafeCell<Option<T>>,
    sync: Semaphore,
    send: Semaphore,
    recv: Semaphore,
}

// SAFETY: the semaphore protocol serializes all access to `item` (see type
// docs); values of T are sent across threads.
unsafe impl<T: Send> Send for HansonSQ<T> {}
unsafe impl<T: Send> Sync for HansonSQ<T> {}

impl<T> Default for HansonSQ<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HansonSQ<T> {
    /// Creates an empty queue (`sync = 0`, `send = 1`, `recv = 0`).
    pub fn new() -> Self {
        HansonSQ {
            item: UnsafeCell::new(None),
            sync: Semaphore::new(0),
            send: Semaphore::new(1),
            recv: Semaphore::new(0),
        }
    }
}

impl<T: Send> SyncChannel<T> for HansonSQ<T> {
    fn put(&self, value: T) {
        self.send.acquire(); // line 15
                             // SAFETY: holding the send permit grants slot write access.
        unsafe { *self.item.get() = Some(value) }; // line 16
        self.recv.release(); // line 17
        self.sync.acquire(); // line 18
    }

    fn take(&self) -> T {
        self.recv.acquire(); // line 07
                             // SAFETY: the recv permit (released by the producer after writing)
                             // grants slot read access.
        let value = unsafe { (*self.item.get()).take() }.expect("protocol: item present");
        self.sync.release(); // line 09
        self.send.release(); // line 10
        synq_obs::probe!(HansonTransfers);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn put_take_pair() {
        let q = Arc::new(HansonSQ::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(5u64);
        assert_eq!(t.join().unwrap(), 5);
    }

    #[test]
    fn take_then_put() {
        let q = Arc::new(HansonSQ::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            q2.put(9u64)
        });
        assert_eq!(q.take(), 9);
        t.join().unwrap();
    }

    #[test]
    fn producer_blocks_until_taken() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = Arc::new(HansonSQ::new());
        let returned = Arc::new(AtomicBool::new(false));
        let q2 = Arc::clone(&q);
        let r2 = Arc::clone(&returned);
        let producer = thread::spawn(move || {
            q2.put(1u8);
            r2.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!returned.load(Ordering::SeqCst));
        assert_eq!(q.take(), 1);
        producer.join().unwrap();
        assert!(returned.load(Ordering::SeqCst));
    }

    #[test]
    fn serialized_producers_and_consumers() {
        const N: usize = 4;
        const PER: usize = 200;
        let q = Arc::new(HansonSQ::new());
        let mut handles = Vec::new();
        for p in 0..N {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.put(p * PER + i);
                }
            }));
        }
        let consumers: Vec<_> = (0..N)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || (0..PER).map(|_| q.take()).sum::<usize>())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (0..N * PER).sum::<usize>());
    }
}

/// Hanson's queue over fast-path (benaphore) semaphores — the "fast-path
/// acquire sequence" improvement the paper attributes to early
/// `dl.util.concurrent` releases. Structurally identical to [`HansonSQ`];
/// only the semaphore implementation changes, so benchmarking the two
/// isolates how much of Hanson's cost is semaphore *lock* overhead versus
/// its inherent six-blocking-events structure.
#[derive(Debug)]
pub struct HansonFastSQ<T> {
    item: UnsafeCell<Option<T>>,
    sync: FastSemaphore,
    send: FastSemaphore,
    recv: FastSemaphore,
}

// SAFETY: identical protocol to HansonSQ (see its safety comment).
unsafe impl<T: Send> Send for HansonFastSQ<T> {}
unsafe impl<T: Send> Sync for HansonFastSQ<T> {}

impl<T> Default for HansonFastSQ<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HansonFastSQ<T> {
    /// Creates an empty queue (`sync = 0`, `send = 1`, `recv = 0`).
    pub fn new() -> Self {
        HansonFastSQ {
            item: UnsafeCell::new(None),
            sync: FastSemaphore::new(0),
            send: FastSemaphore::new(1),
            recv: FastSemaphore::new(0),
        }
    }
}

impl<T: Send> SyncChannel<T> for HansonFastSQ<T> {
    fn put(&self, value: T) {
        self.send.acquire();
        // SAFETY: as in HansonSQ — the send permit grants slot access.
        unsafe { *self.item.get() = Some(value) };
        self.recv.release();
        self.sync.acquire();
    }

    fn take(&self) -> T {
        self.recv.acquire();
        // SAFETY: as in HansonSQ.
        let value = unsafe { (*self.item.get()).take() }.expect("protocol: item present");
        self.sync.release();
        self.send.release();
        synq_obs::probe!(HansonTransfers);
        value
    }
}

#[cfg(test)]
mod fast_tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fast_variant_put_take() {
        let q = Arc::new(HansonFastSQ::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(123u32);
        assert_eq!(t.join().unwrap(), 123);
    }

    #[test]
    fn fast_variant_conserves_under_load() {
        const N: usize = 4;
        const PER: usize = 300;
        let q = Arc::new(HansonFastSQ::new());
        let mut handles = Vec::new();
        for p in 0..N {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.put(p * PER + i);
                }
            }));
        }
        let consumers: Vec<_> = (0..N)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || (0..PER).map(|_| q.take()).sum::<usize>())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (0..N * PER).sum::<usize>());
    }
}
