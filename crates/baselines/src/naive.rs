//! The naive monitor-based synchronous queue (paper Listing 3).
//!
//! One monitor serializes access to a single `item` slot and a `putting`
//! flag. At every point where an action might unblock another thread, all
//! candidates are awakened (`notify_all`) — producing a number of wake-ups
//! quadratic in the number of waiting threads, which "coupled with the high
//! cost of blocking or unblocking a thread, results in poor performance".
//! Included as the textbook baseline.

use std::sync::{Condvar, Mutex};
use synq::SyncChannel;

#[derive(Debug)]
struct State<T> {
    putting: bool,
    item: Option<T>,
}

/// The Listing 3 queue: a single monitor, `notify_all` everywhere.
///
/// # Examples
///
/// ```
/// use synq_baselines::NaiveSQ;
/// use synq::SyncChannel;
/// use std::sync::Arc;
/// use std::thread;
///
/// let q = Arc::new(NaiveSQ::new());
/// let q2 = Arc::clone(&q);
/// let t = thread::spawn(move || q2.take());
/// q.put(1u32);
/// assert_eq!(t.join().unwrap(), 1);
/// ```
#[derive(Debug)]
pub struct NaiveSQ<T> {
    monitor: Mutex<State<T>>,
    cvar: Condvar,
}

impl<T> Default for NaiveSQ<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> NaiveSQ<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        NaiveSQ {
            monitor: Mutex::new(State {
                putting: false,
                item: None,
            }),
            cvar: Condvar::new(),
        }
    }
}

impl<T: Send> SyncChannel<T> for NaiveSQ<T> {
    fn put(&self, value: T) {
        let mut st = self.monitor.lock().unwrap();
        // Listing 3 lines 15–16: wait for any in-progress put to finish.
        while st.putting {
            st = self.cvar.wait(st).unwrap();
        }
        st.putting = true;
        st.item = Some(value);
        self.cvar.notify_all(); // line 19
                                // Lines 20–21: wait for a consumer to take the item.
        while st.item.is_some() {
            st = self.cvar.wait(st).unwrap();
        }
        st.putting = false;
        self.cvar.notify_all(); // line 23
    }

    fn take(&self) -> T {
        let mut st = self.monitor.lock().unwrap();
        // Lines 05–06: await the presence of an item.
        loop {
            if let Some(v) = st.item.take() {
                self.cvar.notify_all(); // line 09
                synq_obs::probe!(NaiveTransfers);
                return v;
            }
            st = self.cvar.wait(st).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn put_take_pair() {
        let q = Arc::new(NaiveSQ::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(7u32);
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn producer_blocks_until_taken() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = Arc::new(NaiveSQ::new());
        let returned = Arc::new(AtomicBool::new(false));
        let q2 = Arc::clone(&q);
        let r2 = Arc::clone(&returned);
        let producer = thread::spawn(move || {
            q2.put(1u8);
            r2.store(true, Ordering::SeqCst);
        });
        thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !returned.load(Ordering::SeqCst),
            "put returned before a take"
        );
        assert_eq!(q.take(), 1);
        producer.join().unwrap();
        assert!(returned.load(Ordering::SeqCst));
    }

    #[test]
    fn many_pairs_conserve_values() {
        const N: usize = 4;
        const PER: usize = 200;
        let q = Arc::new(NaiveSQ::new());
        let mut handles = Vec::new();
        for p in 0..N {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.put(p * PER + i);
                }
            }));
        }
        let consumers: Vec<_> = (0..N)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || (0..PER).map(|_| q.take()).sum::<usize>())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (0..N * PER).sum::<usize>());
    }
}
