//! Stress and conformance tests for the exchanger and elimination arena.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use synq::{SyncChannel, TimedSyncChannel};
use synq_exchanger::{EliminationSyncStack, Exchanger};

#[test]
fn repeated_rounds_reuse_the_arena() {
    // The same two threads exchange many times; each round must pair the
    // round's own values (no stale values from prior rounds).
    const ROUNDS: usize = 500;
    let x = Arc::new(Exchanger::new());
    let x2 = Arc::clone(&x);
    let peer = thread::spawn(move || {
        let mut got = Vec::with_capacity(ROUNDS);
        for r in 0..ROUNDS {
            got.push(x2.exchange((1, r)));
        }
        got
    });
    let mut got = Vec::with_capacity(ROUNDS);
    for r in 0..ROUNDS {
        got.push(x.exchange((0, r)));
    }
    let peer_got = peer.join().unwrap();
    for r in 0..ROUNDS {
        assert_eq!(
            got[r],
            (1, r),
            "main got a stale/foreign value in round {r}"
        );
        assert_eq!(
            peer_got[r],
            (0, r),
            "peer got a stale/foreign value in round {r}"
        );
    }
}

#[test]
fn odd_thread_out_times_out() {
    // Three threads, patience-bounded: exactly one must time out (pairs
    // are formed two at a time), and the paired values must be consistent.
    let x = Arc::new(Exchanger::<u32>::with_slots(2));
    let handles: Vec<_> = (0..3u32)
        .map(|i| {
            let x = Arc::clone(&x);
            thread::spawn(move || x.exchange_timeout(i, Duration::from_millis(300)))
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let timeouts = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(
        timeouts, 1,
        "exactly one of three should time out: {results:?}"
    );
    // The two successes received each other's values.
    let received: HashSet<u32> = results
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .collect();
    let timed_out: u32 = results
        .iter()
        .filter_map(|r| r.as_ref().err().copied())
        .next()
        .unwrap();
    assert_eq!(received.len(), 2);
    assert!(
        !received.contains(&timed_out),
        "timed-out value was also delivered"
    );
}

#[test]
fn exchanger_values_conserved_many_threads() {
    // An even crowd: the multiset of received values equals the multiset
    // of offered values, and nobody receives its own offer.
    const N: usize = 10;
    let x = Arc::new(Exchanger::with_slots(4));
    let handles: Vec<_> = (0..N)
        .map(|i| {
            let x = Arc::clone(&x);
            thread::spawn(move || (i, x.exchange(i)))
        })
        .collect();
    let results: Vec<(usize, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut received: Vec<usize> = results.iter().map(|&(_, got)| got).collect();
    received.sort_unstable();
    assert_eq!(received, (0..N).collect::<Vec<_>>());
    for &(mine, got) in &results {
        assert_ne!(mine, got, "thread {mine} paired with itself");
    }
}

#[test]
fn elimination_stack_conserves_under_timed_chaos() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    const PRODUCERS: usize = 3;
    const PER: usize = 500;
    let q = Arc::new(EliminationSyncStack::new(4));
    let delivered = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..PRODUCERS {
        let q = Arc::clone(&q);
        let delivered = Arc::clone(&delivered);
        handles.push(thread::spawn(move || {
            for i in 0..PER {
                if q.offer_timeout(i as u64, Duration::from_micros(150))
                    .is_ok()
                {
                    delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    let stop = Arc::new(AtomicUsize::new(0));
    let consumer = {
        let q = Arc::clone(&q);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut got = 0usize;
            loop {
                if q.poll_timeout(Duration::from_micros(300)).is_some() {
                    got += 1;
                } else if stop.load(Ordering::Relaxed) == 1 {
                    while q.poll_timeout(Duration::from_millis(5)).is_some() {
                        got += 1;
                    }
                    return got;
                }
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    let got = consumer.join().unwrap();
    assert_eq!(got, delivered.load(Ordering::Relaxed));
}

#[test]
fn elimination_stack_blocking_api_equivalence() {
    // The elimination wrapper must be observationally equivalent to the
    // plain stack for the blocking API.
    let q = Arc::new(EliminationSyncStack::new(2));
    let q2 = Arc::clone(&q);
    let consumer = thread::spawn(move || (0..100).map(|_| q2.take()).sum::<u64>());
    for i in 0..100u64 {
        q.put(i);
    }
    assert_eq!(consumer.join().unwrap(), (0..100).sum::<u64>());
}
