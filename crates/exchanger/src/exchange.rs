//! A scalable elimination-based exchange channel.
//!
//! The swap analogue of a synchronous queue: two threads meet and exchange
//! values symmetrically. Rather than funneling every rendezvous through a
//! single word, threads meet in an *arena* of independent slots; collisions
//! on one slot push threads to others, spreading contention (Scherer, Lea &
//! Scott, "A Scalable Elimination-based Exchange Channel" \[18\]).

use rand::Rng;
use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;
use std::time::Duration;
use synq::Deadline;
use synq_primitives::{Backoff, SpinPolicy, WaitSlot};

struct ExNode<T> {
    /// What the installer offers; taken by the claimer.
    give: UnsafeCell<Option<T>>,
    /// The wait protocol; the claimer deposits its value here. Cancellation
    /// is arbitrated by the arena-slot pointer CAS, not the state word, so
    /// the installer waits with [`WaitSlot::await_match`].
    slot: WaitSlot<T>,
}

// SAFETY: access to `give` is serialized by the slot-claim CAS (claimer
// side) and the uninstall CAS (installer side); `slot` synchronizes itself.
unsafe impl<T: Send> Send for ExNode<T> {}
unsafe impl<T: Send> Sync for ExNode<T> {}

/// An elimination-based swap channel.
///
/// # Examples
///
/// ```
/// use synq_exchanger::Exchanger;
/// use std::sync::Arc;
/// use std::thread;
///
/// let x = Arc::new(Exchanger::new());
/// let x2 = Arc::clone(&x);
/// let t = thread::spawn(move || x2.exchange(1u32));
/// let got_in_main = x.exchange(2u32);
/// let got_in_thread = t.join().unwrap();
/// assert_eq!((got_in_main, got_in_thread), (1, 2));
/// ```
pub struct Exchanger<T> {
    slots: Box<[AtomicPtr<ExNode<T>>]>,
    spin: SpinPolicy,
}

impl<T: Send> Default for Exchanger<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Exchanger<T> {
    /// Arena sized to the processor count (min 1, max 32), adaptive spin.
    pub fn new() -> Self {
        Self::with_slots(synq_primitives::backoff::ncpus().clamp(1, 32))
    }

    /// Arena with an explicit number of slots and the adaptive spin policy.
    pub fn with_slots(n: usize) -> Self {
        Self::with_spin(n, SpinPolicy::adaptive())
    }

    /// Arena with explicit slot count and spin policy — `with_spin` parity
    /// with the dual structures, for uniform spin-policy sweeps.
    pub fn with_spin(n: usize, spin: SpinPolicy) -> Self {
        assert!(n >= 1, "exchanger needs at least one slot");
        Exchanger {
            slots: (0..n).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
            spin,
        }
    }

    /// Exchanges `mine` for a partner's value, waiting indefinitely.
    pub fn exchange(&self, mine: T) -> T {
        match self.exchange_with(mine, Deadline::Never) {
            Ok(theirs) => theirs,
            Err(_) => unreachable!("untimed exchange cannot fail"),
        }
    }

    /// Exchanges with a patience bound; returns `Err(mine)` on timeout.
    pub fn exchange_timeout(&self, mine: T, patience: Duration) -> Result<T, T> {
        self.exchange_with(mine, Deadline::after(patience))
    }

    /// The general form.
    pub fn exchange_with(&self, mine: T, deadline: Deadline) -> Result<T, T> {
        let mut rng = rand::thread_rng();
        // Start at slot 0 (the "main" location) and widen on collisions —
        // the tree-like backoff of the paper, flattened to random probing.
        let mut bound = 0usize;
        let backoff = Backoff::new();
        let mut mine = Some(mine);
        loop {
            let idx = if bound == 0 {
                0
            } else {
                rng.gen_range(0..=bound.min(self.slots.len() - 1))
            };
            let slot = &self.slots[idx];
            let cur = slot.load(Ordering::Acquire);

            if cur.is_null() {
                // Install ourselves and wait for a partner.
                let node = Arc::new(ExNode {
                    give: UnsafeCell::new(mine.take()),
                    slot: WaitSlot::new(),
                });
                let raw = Arc::into_raw(Arc::clone(&node)) as *mut ExNode<T>;
                if slot
                    .compare_exchange(ptr::null_mut(), raw, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // Lost the slot; retract the published count and retry.
                    // SAFETY: the failed CAS means nobody saw `raw`.
                    unsafe { drop(Arc::from_raw(raw)) };
                    mine = Some(node_take_give(&node));
                    bound = (bound + 1).min(self.slots.len() - 1);
                    backoff.snooze();
                    continue;
                }
                match self.await_partner(&node, slot, raw, deadline) {
                    Ok(theirs) => return Ok(theirs),
                    Err(returned) => return Err(returned),
                }
            }

            // Claim the waiting partner.
            if slot
                .compare_exchange(cur, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: the CAS transferred the slot's strong count.
                let partner = unsafe { Arc::from_raw(cur) };
                let theirs = node_take_give(&partner);
                // The pointer CAS granted exclusivity, so the claim cannot
                // lose (installers retract the pointer, never the state).
                let claimed = partner.slot.try_claim();
                debug_assert!(claimed, "exchanger slot claimed twice");
                // SAFETY: the claim grants the item cell to us.
                unsafe { partner.slot.fulfill(mine.take().expect("item still ours")) };
                synq_obs::probe!(ExchangerSwaps);
                return Ok(theirs);
            }

            // Collision: widen the arena window and retry elsewhere.
            bound = (bound + 1).min(self.slots.len() - 1);
            backoff.snooze();
            if deadline.expired() {
                synq_obs::probe!(ExchangerTimeouts);
                return Err(mine.take().expect("item still ours"));
            }
        }
    }

    /// Waits on an installed node (through the shared [`WaitSlot`] loop,
    /// honoring this exchanger's [`SpinPolicy`]). On timeout, tries to
    /// uninstall; if a partner claimed us concurrently we must complete
    /// the exchange.
    fn await_partner(
        &self,
        node: &Arc<ExNode<T>>,
        slot: &AtomicPtr<ExNode<T>>,
        raw: *mut ExNode<T>,
        deadline: Deadline,
    ) -> Result<T, T> {
        if node.slot.await_match(deadline, &self.spin).is_some() {
            synq_obs::probe!(ExchangerSwaps);
            // SAFETY: a terminal match publishes the partner's deposit.
            return Ok(unsafe { node.slot.take_item() });
        }
        // Deadline expired with the state still WAITING (await_match never
        // cancels — the arena-slot pointer is the cancellation token here).
        if slot
            .compare_exchange(raw, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // Uninstalled before anyone met us.
            // SAFETY: we took back the slot's strong count.
            unsafe { drop(Arc::from_raw(raw)) };
            synq_obs::probe!(ExchangerTimeouts);
            return Err(node_take_give(node));
        }
        // A partner claimed us at the deadline: the exchange is happening;
        // wait for completion (bounded by the claimer's next instructions).
        node.slot.await_completion();
        synq_obs::probe!(ExchangerSwaps);
        // SAFETY: as above.
        Ok(unsafe { node.slot.take_item() })
    }
}

fn node_take_give<T>(node: &ExNode<T>) -> T {
    // SAFETY: callers hold exclusive logical access to `give` (installer
    // before publication / after uninstall; claimer after the slot CAS).
    unsafe { (*node.give.get()).take() }.expect("give slot already taken")
}

impl<T> Drop for Exchanger<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: exclusive access in Drop; reclaim the slot count.
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn pairwise_swap() {
        let x = Arc::new(Exchanger::new());
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.exchange(10u32));
        let a = x.exchange(20u32);
        let b = t.join().unwrap();
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn timeout_returns_item() {
        let x: Exchanger<String> = Exchanger::new();
        let back = x
            .exchange_timeout("mine".into(), Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(back, "mine");
    }

    #[test]
    fn many_threads_all_pair_off() {
        // An even number of threads must all complete, each receiving a
        // value that exactly one other thread offered.
        const N: usize = 8;
        let x = Arc::new(Exchanger::with_slots(4));
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let x = Arc::clone(&x);
                thread::spawn(move || x.exchange(i))
            })
            .collect();
        let mut got: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn single_slot_arena_works() {
        let x = Arc::new(Exchanger::with_slots(1));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.exchange(1u8));
        assert_eq!(x.exchange(2u8), 1);
        assert_eq!(t.join().unwrap(), 2);
    }

    #[test]
    fn dropped_exchanger_frees_installed_node() {
        // Install a node via a timed exchange that expires after the
        // exchanger is dropped? Simpler: timeout cleanly uninstalls; then
        // drop. Exercises the Drop path with empty and non-empty slots.
        let x: Exchanger<Vec<u8>> = Exchanger::with_slots(2);
        let _ = x.exchange_timeout(vec![1], Duration::from_millis(5));
        drop(x);
    }
}
