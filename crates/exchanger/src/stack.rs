//! The elimination-backoff synchronous stack — the extension the paper
//! sketches in §5 and leaves to future work.
//!
//! Every transfer first makes one brief visit to an
//! [`EliminationArena`]; if a complementary operation is met there, the
//! pair "cancel each other out" without touching the stack head. Otherwise
//! the operation proceeds through the ordinary [`SyncDualStack`].
//!
//! The paper's finding — elimination is "beneficial only in cases of
//! artificially extreme contention", because "the reduced contention
//! benefits would need to outweigh the delayed release (lower throughput)
//! experienced when threads do not meet in arena locations" — is exactly
//! what ablation A3 measures by sweeping the arena size.

use crate::arena::EliminationArena;
use synq::{
    impl_channels_via_transferer, CancelToken, Deadline, SpinPolicy, SyncDualStack,
    TransferOutcome, Transferer,
};

/// A synchronous dual stack with an elimination arena in front.
///
/// # Examples
///
/// ```
/// use synq_exchanger::EliminationSyncStack;
/// use synq::{SyncChannel, TimedSyncChannel};
/// use std::sync::Arc;
/// use std::thread;
///
/// let q = Arc::new(EliminationSyncStack::new(4));
/// let q2 = Arc::clone(&q);
/// let t = thread::spawn(move || q2.take());
/// q.put(5u32);
/// assert_eq!(t.join().unwrap(), 5);
/// ```
pub struct EliminationSyncStack<T: Send> {
    stack: SyncDualStack<T>,
    arena: EliminationArena<T>,
    arena_spins: u32,
}

impl<T: Send> EliminationSyncStack<T> {
    /// Creates a stack with `arena_slots` elimination slots (0 disables
    /// elimination entirely — the A3 control arm).
    pub fn new(arena_slots: usize) -> Self {
        Self::with_spin(arena_slots, SpinPolicy::adaptive())
    }

    /// Full configuration.
    pub fn with_spin(arena_slots: usize, spin: SpinPolicy) -> Self {
        EliminationSyncStack {
            stack: SyncDualStack::with_spin(spin),
            arena: EliminationArena::new(arena_slots),
            arena_spins: 128,
        }
    }

    /// Number of transfers that completed through the arena (both sides of
    /// each pairing count once).
    pub fn eliminated(&self) -> usize {
        self.arena.eliminated()
    }
}

impl<T: Send> Transferer<T> for EliminationSyncStack<T> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        // One arena visit, then the main structure. (`Deadline::Now` skips
        // the arena: `poll`/`offer` promise not to wait, and an arena visit
        // installs-and-spins.)
        let item = if deadline.is_now() {
            item
        } else {
            match item {
                Some(v) => match self.arena.try_put(v, self.arena_spins) {
                    Ok(()) => return TransferOutcome::Transferred(None),
                    Err(v) => Some(v),
                },
                None => match self.arena.try_take(self.arena_spins) {
                    Some(v) => return TransferOutcome::Transferred(Some(v)),
                    None => None,
                },
            }
        };
        self.stack.transfer(item, deadline, token)
    }
}

impl_channels_via_transferer!(EliminationSyncStack);

impl<T: Send> std::fmt::Debug for EliminationSyncStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EliminationSyncStack")
            .field("eliminated", &self.eliminated())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;
    use synq::{SyncChannel, TimedSyncChannel};

    #[test]
    fn basic_rendezvous() {
        let q = Arc::new(EliminationSyncStack::new(2));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(1u32);
        assert_eq!(t.join().unwrap(), 1);
    }

    #[test]
    fn zero_slot_arena_is_plain_stack() {
        let q = Arc::new(EliminationSyncStack::new(0));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(2u32);
        assert_eq!(t.join().unwrap(), 2);
        assert_eq!(q.eliminated(), 0);
    }

    #[test]
    fn poll_offer_fail_on_empty() {
        let q: EliminationSyncStack<u8> = EliminationSyncStack::new(4);
        assert_eq!(q.poll(), None);
        assert_eq!(q.offer(1), Err(1));
    }

    #[test]
    fn timed_ops_respect_patience() {
        let q: EliminationSyncStack<u8> = EliminationSyncStack::new(4);
        assert_eq!(q.poll_timeout(Duration::from_millis(10)), None);
        assert_eq!(q.offer_timeout(2, Duration::from_millis(10)), Err(2));
    }

    #[test]
    fn heavy_contention_eliminates_some_pairs() {
        const THREADS: usize = 4;
        const PER: usize = 2_000;
        let q = Arc::new(EliminationSyncStack::new(8));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.put(i);
                }
            }));
        }
        let consumers: Vec<_> = (0..THREADS)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || (0..PER).map(|_| q.take()).sum::<usize>())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, THREADS * (0..PER).sum::<usize>());
        // Under this much contention at least some pairs should meet in
        // the arena (not guaranteed on a uniprocessor, so only report).
        println!("eliminated: {}", q.eliminated());
    }

    #[test]
    fn values_conserved_with_elimination() {
        const PER: usize = 3_000;
        let q = Arc::new(EliminationSyncStack::new(4));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            for i in 0..PER {
                q2.put(i);
            }
        });
        let mut seen = vec![false; PER];
        for _ in 0..PER {
            let v = q.take();
            assert!(!seen[v], "value {v} delivered twice");
            seen[v] = true;
        }
        producer.join().unwrap();
        assert!(seen.iter().all(|&b| b));
    }
}
