//! An *asymmetric* elimination arena for synchronous queues.
//!
//! Unlike the symmetric [`crate::Exchanger`], a synchronous queue must only
//! pair *complementary* operations: a producer meeting a producer must not
//! swap items. Each arena slot therefore holds a typed node (data or
//! request); an arriving operation claims a complementary node if present,
//! briefly installs its own node if the slot is empty, and walks away on a
//! same-type collision (falling back to the main structure).
//!
//! Arena visits never park — the arena is a backoff device, not a waiting
//! room. An installed node waits through the shared [`WaitSlot`] loop with
//! the [`SpinOnly`] strategy: the budget doubles as the deadline, and on
//! exhaustion the node retracts itself. Cancellation is arbitrated by the
//! arena-slot pointer CAS (as in the symmetric exchanger), never by the
//! state word, so installers use [`WaitSlot::await_match`].

use rand::Rng;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use synq::Deadline;
use synq_primitives::{CachePadded, SpinOnly, WaitSlot};

struct ArenaNode<T> {
    is_data: bool,
    /// Data node: the installer pre-fills the item cell; the claiming
    /// consumer takes it. Request node: the claiming producer deposits.
    slot: WaitSlot<T>,
}

/// The asymmetric elimination arena.
pub struct EliminationArena<T> {
    /// One slot per cache-line pair: the whole point of the arena is to
    /// spread contention across slots, which padding makes literal — two
    /// threads hashing to adjacent slots otherwise still collide on the
    /// line and the arena degenerates into one contended word.
    slots: Box<[CachePadded<AtomicPtr<ArenaNode<T>>>]>,
    eliminated: CachePadded<AtomicUsize>,
}

const _: () = assert!(std::mem::align_of::<CachePadded<AtomicPtr<ArenaNode<u8>>>>() >= 128);

impl<T: Send> EliminationArena<T> {
    /// Creates an arena with `n` slots (`n == 0` disables elimination —
    /// every visit fails fast, for the A3 control arm).
    pub fn new(n: usize) -> Self {
        EliminationArena {
            slots: (0..n)
                .map(|_| CachePadded::new(AtomicPtr::new(ptr::null_mut())))
                .collect(),
            eliminated: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Number of transfers completed through the arena (diagnostic).
    pub fn eliminated(&self) -> usize {
        self.eliminated.load(Ordering::Relaxed)
    }

    /// Producer-side visit: returns `Ok(())` if a waiting consumer took the
    /// item, `Err(item)` to fall back to the main structure.
    pub fn try_put(&self, item: T, spins: u32) -> Result<(), T> {
        match self.visit(Some(item), spins) {
            Ok(opt) => {
                debug_assert!(opt.is_none());
                Ok(())
            }
            Err(item) => Err(item.expect("producer visit returns its item")),
        }
    }

    /// Consumer-side visit: returns `Ok(Some(v))` on elimination,
    /// `Err(None)` to fall back.
    pub fn try_take(&self, spins: u32) -> Option<T> {
        match self.visit(None, spins) {
            Ok(v) => {
                debug_assert!(v.is_some());
                v
            }
            Err(_) => None,
        }
    }

    fn visit(&self, mut item: Option<T>, spins: u32) -> Result<Option<T>, Option<T>> {
        if self.slots.is_empty() {
            return Err(item);
        }
        let is_data = item.is_some();
        let idx = rand::thread_rng().gen_range(0..self.slots.len());
        let slot = &self.slots[idx];
        let cur = slot.load(Ordering::Acquire);

        if !cur.is_null() {
            // SAFETY: slot entries hold a strong count; the node stays
            // alive at least until someone claims it (and we only deref).
            let cur_ref = unsafe { &*cur };
            if cur_ref.is_data == is_data {
                synq_obs::probe!(ElimMisses);
                return Err(item); // same type: walk away
            }
            if slot
                .compare_exchange(cur, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: the CAS transferred the slot's strong count.
                let partner = unsafe { Arc::from_raw(cur) };
                // The pointer CAS granted exclusivity, so the claim cannot
                // lose (installers retract the pointer, never the state).
                let claimed = partner.slot.try_claim();
                debug_assert!(claimed, "arena node claimed twice");
                let result = if is_data {
                    // Give our item to the waiting consumer.
                    // SAFETY: the claim grants the item cell to us.
                    unsafe { partner.slot.fulfill(item.take().expect("item still ours")) };
                    None
                } else {
                    // Take the waiting producer's pre-filled item.
                    // SAFETY: as above; data nodes are armed before publish.
                    let v = unsafe { partner.slot.take_item() };
                    partner.slot.complete();
                    Some(v)
                };
                self.eliminated.fetch_add(1, Ordering::Relaxed);
                synq_obs::probe!(ElimHits);
                return Ok(result);
            }
            synq_obs::probe!(ElimMisses);
            return Err(item); // lost the claim race: fall back
        }

        // Empty slot: install ourselves for a brief spin.
        let node = Arc::new(ArenaNode {
            is_data,
            slot: WaitSlot::new(),
        });
        if let Some(v) = item.take() {
            // SAFETY: the node is unpublished; the cell is exclusively ours.
            unsafe { node.slot.put_item(v) };
        }
        let raw = Arc::into_raw(Arc::clone(&node)) as *mut ArenaNode<T>;
        if slot
            .compare_exchange(ptr::null_mut(), raw, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // SAFETY: failed CAS — nobody saw `raw`.
            unsafe { drop(Arc::from_raw(raw)) };
            synq_obs::probe!(ElimMisses);
            // SAFETY: node unpublished; re-take the armed item (if any).
            return Err(if is_data {
                Some(unsafe { node.slot.reclaim_item() })
            } else {
                None
            });
        }
        // The spin budget *is* the patience here: `SpinOnly` never parks,
        // so budget exhaustion reads as expiry even with `Deadline::Never`.
        if node
            .slot
            .await_match(Deadline::Never, &SpinOnly(spins))
            .is_some()
        {
            self.eliminated.fetch_add(1, Ordering::Relaxed);
            synq_obs::probe!(ElimHits);
            return Ok(if is_data {
                None
            } else {
                // SAFETY: the match publishes the producer's deposit.
                Some(unsafe { node.slot.take_item() })
            });
        }
        // Give up: retract.
        if slot
            .compare_exchange(raw, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // SAFETY: we took back the slot's strong count.
            unsafe { drop(Arc::from_raw(raw)) };
            synq_obs::probe!(ElimMisses);
            // SAFETY: retracted before anyone claimed; the cell is ours.
            return Err(if is_data {
                Some(unsafe { node.slot.reclaim_item() })
            } else {
                None
            });
        }
        // Claimed at the buzzer: finish the exchange.
        node.slot.await_completion();
        self.eliminated.fetch_add(1, Ordering::Relaxed);
        synq_obs::probe!(ElimHits);
        Ok(if is_data {
            None
        } else {
            // SAFETY: the terminal state publishes the producer's deposit.
            Some(unsafe { node.slot.take_item() })
        })
    }
}

impl<T> Drop for EliminationArena<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: exclusive access in Drop.
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn empty_arena_always_falls_back() {
        let a: EliminationArena<u32> = EliminationArena::new(0);
        assert_eq!(a.try_put(1, 100), Err(1));
        assert_eq!(a.try_take(100), None);
        assert_eq!(a.eliminated(), 0);
    }

    #[test]
    fn lone_visit_retracts() {
        let a: EliminationArena<u32> = EliminationArena::new(1);
        assert_eq!(a.try_put(7, 10), Err(7));
        assert_eq!(a.try_take(10), None);
        assert_eq!(a.eliminated(), 0);
    }

    #[test]
    fn complementary_ops_eliminate() {
        let a = Arc::new(EliminationArena::new(1));
        let a2 = Arc::clone(&a);
        // The consumer spins long enough for the producer to arrive.
        let consumer = thread::spawn(move || {
            for _ in 0..10_000 {
                if let Some(v) = a2.try_take(10_000) {
                    return Some(v);
                }
            }
            None
        });
        let mut item = 42u32;
        let mut produced = false;
        for _ in 0..10_000 {
            match a.try_put(item, 10_000) {
                Ok(()) => {
                    produced = true;
                    break;
                }
                Err(back) => item = back,
            }
        }
        let got = consumer.join().unwrap();
        assert!(produced, "producer never eliminated");
        assert_eq!(got, Some(42));
        assert_eq!(a.eliminated(), 2); // both sides count
    }

    #[test]
    fn same_type_ops_do_not_pair() {
        // Two producers visiting must never "exchange": one installs, the
        // other sees a same-type node and walks away.
        let a = Arc::new(EliminationArena::new(1));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || a2.try_put(1u32, 50_000));
        let r = a.try_put(2u32, 50_000);
        let r2 = t.join().unwrap();
        assert!(r.is_err());
        assert!(r2.is_err());
        assert_eq!(a.eliminated(), 0);
    }

    #[test]
    fn values_conserved_under_stress() {
        use std::sync::atomic::AtomicUsize;
        const PRODUCERS: usize = 2;
        const PER: usize = 500;
        let a = Arc::new(EliminationArena::new(2));
        let delivered = Arc::new(AtomicUsize::new(0));
        let received = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..PRODUCERS {
            let a = Arc::clone(&a);
            let delivered = Arc::clone(&delivered);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    if a.try_put(i, 2_000).is_ok() {
                        delivered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for _ in 0..2 {
            let a = Arc::clone(&a);
            let received = Arc::clone(&received);
            handles.push(thread::spawn(move || {
                for _ in 0..PER {
                    if a.try_take(2_000).is_some() {
                        received.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            delivered.load(Ordering::Relaxed),
            received.load(Ordering::Relaxed),
            "every delivered item must be received exactly once"
        );
    }

    #[test]
    fn payloads_dropped_exactly_once_under_churn() {
        // Drop-counting payloads through install/retract/claim churn: every
        // item handed to the arena must be dropped exactly once whether it
        // eliminated, bounced back, or sat armed in a retracted node.
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        const PER: usize = 300;
        let a: Arc<EliminationArena<Counted>> = Arc::new(EliminationArena::new(1));
        let a2 = Arc::clone(&a);
        let d2 = Arc::clone(&drops);
        let producer = thread::spawn(move || {
            for _ in 0..PER {
                let _ = a2.try_put(Counted(Arc::clone(&d2)), 500);
            }
        });
        let a3 = Arc::clone(&a);
        let consumer = thread::spawn(move || {
            for _ in 0..PER {
                drop(a3.try_take(500));
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
        drop(a);
        assert_eq!(drops.load(Ordering::Relaxed), PER);
    }
}
