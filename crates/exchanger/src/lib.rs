//! Elimination: the paper's §5 extension path.
//!
//! > "Reducing such contention by spreading it out is the idea behind
//! > elimination … multiple locations (comprising an *arena*) are employed
//! > as potential targets of the main atomic instructions underlying these
//! > operations. If two threads meet in one of these lower-traffic areas,
//! > they cancel each other out."
//!
//! Two components:
//!
//! * [`Exchanger`] — a scalable elimination-based *exchange channel* (the
//!   structure the authors built for `java.util.concurrent.Exchanger`
//!   \[18\]): any two threads that meet swap values symmetrically.
//! * [`EliminationSyncStack`] — a synchronous dual stack with an
//!   *asymmetric* elimination arena bolted on: producers and consumers that
//!   collide on the stack head retry in an arena slot, pairing off without
//!   ever touching the head. The paper reports this is "beneficial only in
//!   cases of artificially extreme contention"; ablation A3 reproduces that
//!   finding.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod exchange;
pub mod stack;

pub use arena::EliminationArena;
pub use exchange::Exchanger;
pub use stack::EliminationSyncStack;
