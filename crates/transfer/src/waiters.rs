//! A notification registry for threads/tasks waiting on ring transitions.
//!
//! The bounded mode of [`TransferQueue`](crate::TransferQueue) needs two
//! wait lists — producers waiting for ring *space* and consumers waiting
//! for ring *items* — with the same lost-wakeup discipline the rendezvous
//! path gets from its linked reservations. Rather than invent a second
//! parking mechanism, each waiter is an `Arc<WaitSlot<()>>`: the same
//! primitive that backs rendezvous nodes, so blocking waits reuse the
//! spin-then-park policy and async waits reuse `poll_match`.
//!
//! The lost-wakeup-free protocol (Dekker-style, DESIGN §4.11):
//!
//! * **Waiter**: [`WaiterQueue::register`] (a SeqCst RMW on the length
//!   hint) → `fence(SeqCst)` → re-check the condition → if now satisfied,
//!   [`WaiterQueue::retract`] and retry; else park.
//! * **Notifier**: perform the state change (a SeqCst CAS on the ring) →
//!   `fence(SeqCst)` → [`WaiterQueue::notify`] (a SeqCst load of the
//!   hint, queue lock taken only when it is non-zero).
//!
//! In the SC total order either the notifier's hint load sees the
//! registration (and wakes the waiter) or the waiter's re-check sees the
//! state change (and retracts) — there is no interleaving where both miss.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use synq_primitives::{WaitSlot, MIN_TOKEN};

/// Token stored into a waiter's slot by [`WaiterQueue::notify`]. The
/// payload carries no data — waiters loop back and re-attempt the ring
/// operation — so one token suffices.
pub(crate) const NOTIFIED: usize = MIN_TOKEN;

/// FIFO list of parked waiters with a lock-free emptiness hint.
///
/// The hint holds the exact queue length (maintained under the lock, read
/// with SeqCst outside it) so the notify fast path on an uncontended ring
/// is a single atomic load.
pub(crate) struct WaiterQueue {
    hint: AtomicUsize,
    entries: Mutex<VecDeque<Arc<WaitSlot<()>>>>,
}

impl WaiterQueue {
    pub(crate) fn new() -> Self {
        WaiterQueue {
            hint: AtomicUsize::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends a fresh waiter and returns its slot. The caller MUST then
    /// fence and re-check the awaited condition before parking (see the
    /// module docs), retracting on success.
    pub(crate) fn register(&self) -> Arc<WaitSlot<()>> {
        let slot = Arc::new(WaitSlot::new());
        let mut q = self.entries.lock().unwrap();
        q.push_back(Arc::clone(&slot));
        self.hint.store(q.len(), Ordering::SeqCst);
        slot
    }

    /// Number of registered (possibly already-notified) waiters.
    pub(crate) fn hint(&self) -> usize {
        self.hint.load(Ordering::SeqCst)
    }

    /// Wakes up to `n` live waiters. Cancelled entries are discarded and
    /// do not count against `n`.
    ///
    /// Waiters are fulfilled **in place**: a notified entry stays on the
    /// list (and in the hint) until its owner removes it after landing the
    /// retried operation. That keeps the no-barge check in the bounded
    /// fast paths honest — fresh arrivals see `hint() > 0` for the whole
    /// pop-to-retry handoff window and keep deferring, instead of stealing
    /// the freed slot out from under the woken waiter (the cause of the
    /// ~1 s buffered-mode wakeup tails PR 9's histograms surfaced).
    pub(crate) fn notify(&self, n: usize) {
        if n == 0 || self.hint.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut q = self.entries.lock().unwrap();
        let mut woken = 0;
        let mut i = 0;
        while woken < n && i < q.len() {
            if q[i].try_fulfill_token(NOTIFIED).is_ok() {
                woken += 1;
                i += 1;
            } else if q[i].is_cancelled() {
                // Raced out (timed out / cancelled) and not yet removed by
                // its owner: dead weight, collect it now.
                q.remove(i);
            } else {
                // Notified earlier, retry still in flight: skip it.
                i += 1;
            }
        }
        self.hint.store(q.len(), Ordering::SeqCst);
    }

    /// Withdraws a waiter whose condition turned out to be satisfied
    /// before it parked. If a notifier got to the slot first, the
    /// notification is passed on to the next waiter so it is not lost.
    pub(crate) fn retract(&self, waiter: &Arc<WaitSlot<()>>) {
        if waiter.try_cancel() {
            self.remove(waiter);
        } else {
            // Lost the race: a notify already landed in this slot. We are
            // about to retry the operation ourselves, so hand the wakeup
            // to the next parked waiter.
            self.remove(waiter);
            self.notify(1);
        }
    }

    /// Physically unlinks a waiter without touching its slot state. Use
    /// after `await_outcome` returned a TimedOut/Cancelled verdict (the
    /// slot is already CANCELLED) — calling [`Self::retract`] there would
    /// wrongly pass a notification on.
    pub(crate) fn remove(&self, waiter: &Arc<WaitSlot<()>>) {
        let mut q = self.entries.lock().unwrap();
        if let Some(idx) = q.iter().position(|s| Arc::ptr_eq(s, waiter)) {
            q.remove(idx);
        }
        self.hint.store(q.len(), Ordering::SeqCst);
    }
}

impl std::fmt::Debug for WaiterQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaiterQueue")
            .field("waiting", &self.hint())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synq_primitives::{Deadline, SpinPolicy, WaitOutcome};

    #[test]
    fn notify_wakes_registered_waiter() {
        let wq = Arc::new(WaiterQueue::new());
        let w = wq.register();
        assert_eq!(wq.hint(), 1);
        let wq2 = Arc::clone(&wq);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            wq2.notify(1);
        });
        let out = w.await_outcome(Deadline::Never, None, &SpinPolicy::default());
        assert!(matches!(out, WaitOutcome::Matched(NOTIFIED)));
        t.join().unwrap();
        // In-place fulfillment: the notified waiter stays registered until
        // its owner removes it after landing the retried operation.
        assert_eq!(wq.hint(), 1);
        wq.remove(&w);
        assert_eq!(wq.hint(), 0);
    }

    #[test]
    fn retract_passes_stolen_notification_on() {
        let wq = WaiterQueue::new();
        let first = wq.register();
        let second = wq.register();
        // Notify lands in `first` before it can retract.
        wq.notify(1);
        wq.retract(&first);
        // The wakeup must have been passed to `second`.
        let out = second.await_outcome(Deadline::Never, None, &SpinPolicy::default());
        assert!(matches!(out, WaitOutcome::Matched(NOTIFIED)));
        wq.remove(&second);
        assert_eq!(wq.hint(), 0);
    }

    #[test]
    fn notify_skips_cancelled_entries() {
        let wq = WaiterQueue::new();
        let dead = wq.register();
        let live = wq.register();
        assert!(dead.try_cancel());
        wq.notify(1);
        let out = live.await_outcome(Deadline::Never, None, &SpinPolicy::default());
        assert!(matches!(out, WaitOutcome::Matched(NOTIFIED)));
    }
}
