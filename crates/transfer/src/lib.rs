//! TransferQueue — the paper's §5 extension, adopted into Java 7 as
//! `LinkedTransferQueue`.
//!
//! > "TransferQueues permit producers to enqueue data either synchronously
//! > or asynchronously. … The base synchronous support in TransferQueues
//! > mirrors our fair synchronous queue. The asynchronous additions differ
//! > only by releasing producers before items are taken."
//!
//! [`TransferQueue`] is therefore the synchronous dual queue of
//! `synq::dual_queue` with one extra degree of freedom per data node:
//! *async* data nodes have no waiter — [`TransferQueue::put`] links the
//! item and returns immediately (the queue buffers it), while
//! [`TransferQueue::transfer`] blocks until a consumer takes the item,
//! exactly like the synchronous queue's `put`. Consumers are identical in
//! both cases. The list still never holds data and reservations at once.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;
use synq::{
    impl_channels_via_transferer, CancelToken, Deadline, SpinPolicy, TransferOutcome, Transferer,
};
use synq_primitives::{WaitOutcome, WaitSlot};
use synq_reclaim::{self as epoch, Atomic, Guard, Owned, Shared};

struct TNode<T> {
    /// The wait-node protocol. Async data nodes never wait on it: the
    /// producer has already returned and only the state machine is used.
    slot: WaitSlot<T>,
    next: Atomic<TNode<T>>,
    is_data: bool,
    refs: AtomicUsize,
    unlinked: AtomicBool,
}

impl<T> TNode<T> {
    fn new(is_data: bool, refs: usize) -> Owned<TNode<T>> {
        Owned::new(TNode {
            slot: WaitSlot::new(),
            next: Atomic::null(),
            is_data,
            refs: AtomicUsize::new(refs),
            unlinked: AtomicBool::new(false),
        })
    }

    unsafe fn release(ptr: *const TNode<T>) {
        // SAFETY: caller owns one reference.
        let node = unsafe { &*ptr };
        if node.refs.fetch_sub(1, Ordering::Release) == 1 {
            std::sync::atomic::fence(Ordering::Acquire);
            // SAFETY: last reference (see synq::dual_queue for the
            // reclamation argument). The slot's Drop releases any item
            // still pending in the cell.
            drop(unsafe { Box::from_raw(ptr as *mut TNode<T>) });
        }
    }
}

/// How a producer-side operation relates to its item.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PutMode {
    /// Link and return (the queue buffers the item).
    Async,
    /// Wait until a consumer takes the item.
    Sync,
}

/// A queue supporting both synchronous and asynchronous enqueue.
///
/// # Examples
///
/// ```
/// use synq_transfer::TransferQueue;
///
/// let q = TransferQueue::new();
/// q.put(1);          // asynchronous: returns immediately
/// q.put(2);
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.take(), 1); // FIFO
/// assert_eq!(q.take(), 2);
/// ```
pub struct TransferQueue<T> {
    head: Atomic<TNode<T>>,
    tail: Atomic<TNode<T>>,
    spin: SpinPolicy,
}

// SAFETY: as for synq::SyncDualQueue.
unsafe impl<T: Send> Send for TransferQueue<T> {}
unsafe impl<T: Send> Sync for TransferQueue<T> {}

impl<T: Send> Default for TransferQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> TransferQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_spin(SpinPolicy::adaptive())
    }

    /// Creates an empty queue with an explicit spin policy.
    pub fn with_spin(spin: SpinPolicy) -> Self {
        let dummy = TNode::new(false, 1);
        let guard = unsafe { epoch::unprotected() };
        let dummy = dummy.into_shared(&guard);
        let head = Atomic::null();
        let tail = Atomic::null();
        head.store(dummy, Ordering::Relaxed);
        tail.store(dummy, Ordering::Relaxed);
        TransferQueue { head, tail, spin }
    }

    // ------------------------------------------------------ producer API

    /// Asynchronous enqueue: links the item and returns immediately.
    ///
    /// **Name-resolution note:** this inherent method shadows
    /// `SyncChannel::put` (which maps to the *synchronous* [`TransferQueue::transfer`])
    /// when called as `q.put(v)` on a concrete `TransferQueue`. Through a
    /// `dyn SyncChannel` or a generic bound, `put` is synchronous — the
    /// same put/transfer duality as Java's `LinkedTransferQueue`.
    pub fn put(&self, value: T) {
        match self.producer(Some(value), PutMode::Async, Deadline::Never, None) {
            TransferOutcome::Transferred(_) => {}
            _ => unreachable!("async put cannot fail"),
        }
    }

    /// Synchronous enqueue: waits until a consumer receives the item.
    pub fn transfer(&self, value: T) {
        match self.producer(Some(value), PutMode::Sync, Deadline::Never, None) {
            TransferOutcome::Transferred(_) => {}
            _ => unreachable!("untimed transfer cannot fail"),
        }
    }

    /// Synchronous enqueue only if a consumer is already waiting.
    pub fn try_transfer(&self, value: T) -> Result<(), T> {
        match self.producer(Some(value), PutMode::Sync, Deadline::Now, None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned")),
        }
    }

    /// Synchronous enqueue with patience.
    pub fn transfer_timeout(&self, value: T, patience: Duration) -> Result<(), T> {
        match self.producer(Some(value), PutMode::Sync, Deadline::after(patience), None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned")),
        }
    }

    /// Fully general synchronous enqueue.
    pub fn transfer_with(
        &self,
        value: T,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        self.producer(Some(value), PutMode::Sync, deadline, token)
    }

    // ------------------------------------------------------ consumer API

    /// Receives a value, waiting if necessary.
    pub fn take(&self) -> T {
        match self.consumer(Deadline::Never, None) {
            TransferOutcome::Transferred(Some(v)) => v,
            _ => unreachable!("untimed take cannot fail"),
        }
    }

    /// Receives a buffered or offered value without waiting.
    pub fn poll(&self) -> Option<T> {
        self.consumer(Deadline::Now, None).into_inner()
    }

    /// `poll` with patience.
    pub fn poll_timeout(&self, patience: Duration) -> Option<T> {
        self.consumer(Deadline::after(patience), None).into_inner()
    }

    /// Fully general receive.
    pub fn take_with(&self, deadline: Deadline, token: Option<&CancelToken>) -> TransferOutcome<T> {
        self.consumer(deadline, token)
    }

    // ------------------------------------------------------- inspection

    /// Number of buffered (unmatched, uncancelled) data items. O(n).
    pub fn len(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let mut p = self.head.load(Ordering::Acquire, &guard);
        loop {
            // SAFETY: chain protected by the pin.
            let node = unsafe { p.deref() };
            let next = node.next.load(Ordering::Acquire, &guard);
            let Some(next_ref) = (unsafe { next.as_ref() }) else {
                return n;
            };
            if next_ref.is_data && next_ref.slot.is_waiting() {
                n += 1;
            }
            p = next;
        }
    }

    /// True if no data is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if at least one consumer is blocked waiting for an element
    /// (mirrors `LinkedTransferQueue.hasWaitingConsumer`). Producers can
    /// use this to decide between `put` and `transfer`.
    pub fn has_waiting_consumer(&self) -> bool {
        self.waiting_consumer_count() > 0
    }

    /// Number of consumers blocked waiting for an element (mirrors
    /// `LinkedTransferQueue.getWaitingConsumerCount`). O(n), approximate
    /// under concurrency.
    pub fn waiting_consumer_count(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let mut p = self.head.load(Ordering::Acquire, &guard);
        loop {
            // SAFETY: chain protected by the pin.
            let node = unsafe { p.deref() };
            let next = node.next.load(Ordering::Acquire, &guard);
            let Some(next_ref) = (unsafe { next.as_ref() }) else {
                return n;
            };
            if !next_ref.is_data && next_ref.slot.is_waiting() {
                n += 1;
            }
            p = next;
        }
    }

    // ---------------------------------------------------------- internals

    fn advance_head<'g>(
        &self,
        h: Shared<'g, TNode<T>>,
        nh: Shared<'g, TNode<T>>,
        guard: &'g Guard,
    ) -> bool {
        if self
            .head
            .compare_exchange(h, nh, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            // SAFETY: unlinked by our CAS; release the structure reference.
            let node_ref = unsafe { h.deref() };
            let was = node_ref.unlinked.swap(true, Ordering::AcqRel);
            debug_assert!(!was);
            let raw = h.as_raw() as usize;
            // SAFETY: deferred past the grace period.
            unsafe {
                guard.defer_unchecked(move || TNode::release(raw as *const TNode<T>));
            }
            true
        } else {
            false
        }
    }

    fn absorb_cancelled(&self, guard: &Guard) {
        loop {
            let h = self.head.load(Ordering::Acquire, guard);
            // SAFETY: head never null.
            let hn = unsafe { h.deref() }.next.load(Ordering::Acquire, guard);
            let Some(hn_ref) = (unsafe { hn.as_ref() }) else {
                return;
            };
            if !hn_ref.slot.is_cancelled() {
                return;
            }
            let _ = self.advance_head(h, hn, guard);
        }
    }

    fn producer(
        &self,
        mut item: Option<T>,
        mode: PutMode,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        let mut node: Option<Owned<TNode<T>>> = None;
        loop {
            let guard = epoch::pin();
            self.absorb_cancelled(&guard);

            let h = self.head.load(Ordering::Acquire, &guard);
            let t = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: never null, protected.
            let t_ref = unsafe { t.deref() };

            if h.ptr_eq(&t) || t_ref.is_data {
                // Append our data node.
                let n = t_ref.next.load(Ordering::Acquire, &guard);
                if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard)) {
                    continue;
                }
                if !n.is_null() {
                    let _ = self.tail.compare_exchange(
                        t,
                        n,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    continue;
                }
                if mode == PutMode::Sync {
                    if deadline.is_now() {
                        return TransferOutcome::Timeout(item);
                    }
                    if token.is_some_and(|tk| tk.is_cancelled()) {
                        return TransferOutcome::Cancelled(item);
                    }
                }
                // Async nodes carry only the structure's reference.
                let refs = if mode == PutMode::Async { 1 } else { 2 };
                let owned = match node.take() {
                    Some(n) => n,
                    None => TNode::new(true, refs),
                };
                // SAFETY: unpublished node, exclusively ours.
                unsafe { owned.slot.put_item(item.take().expect("producer has item")) };
                match t_ref.next.compare_exchange(
                    Shared::null(),
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        let _ = self.tail.compare_exchange(
                            t,
                            published,
                            Ordering::Release,
                            Ordering::Relaxed,
                            &guard,
                        );
                        if mode == PutMode::Async {
                            return TransferOutcome::Transferred(None);
                        }
                        let raw = published.as_raw();
                        drop(guard);
                        return self.await_fulfill(raw, true, deadline, token);
                    }
                    Err(e) => {
                        synq::contention::note_cas_fail();
                        let owned = e.new;
                        // SAFETY: unpublished; reclaim the item.
                        item = Some(unsafe { owned.slot.reclaim_item() });
                        node = Some(owned);
                        continue;
                    }
                }
            }

            // Reservations at the front: fulfill the oldest.
            // SAFETY: head never null.
            let m = unsafe { h.deref() }.next.load(Ordering::Acquire, &guard);
            if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard))
                || !h.ptr_eq(&self.head.load(Ordering::Acquire, &guard))
                || m.is_null()
            {
                continue;
            }
            // SAFETY: m reachable under our pin.
            let m_ref = unsafe { m.deref() };
            let matched = if m_ref.slot.try_claim() {
                // SAFETY: claim grants slot write access.
                unsafe { m_ref.slot.put_item(item.take().expect("producer has item")) };
                m_ref.slot.complete();
                true
            } else {
                false
            };
            let _ = self.advance_head(h, m, &guard);
            if matched {
                return TransferOutcome::Transferred(None);
            }
        }
    }

    fn consumer(&self, deadline: Deadline, token: Option<&CancelToken>) -> TransferOutcome<T> {
        let mut node: Option<Owned<TNode<T>>> = None;
        loop {
            let guard = epoch::pin();
            self.absorb_cancelled(&guard);

            let h = self.head.load(Ordering::Acquire, &guard);
            let t = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: never null, protected.
            let t_ref = unsafe { t.deref() };

            if h.ptr_eq(&t) || !t_ref.is_data {
                // Queue empty or holds reservations: append ours.
                let n = t_ref.next.load(Ordering::Acquire, &guard);
                if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard)) {
                    continue;
                }
                if !n.is_null() {
                    let _ = self.tail.compare_exchange(
                        t,
                        n,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    continue;
                }
                if deadline.is_now() {
                    return TransferOutcome::Timeout(None);
                }
                if token.is_some_and(|tk| tk.is_cancelled()) {
                    return TransferOutcome::Cancelled(None);
                }
                let owned = match node.take() {
                    Some(n) => n,
                    None => TNode::new(false, 2),
                };
                match t_ref.next.compare_exchange(
                    Shared::null(),
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        let _ = self.tail.compare_exchange(
                            t,
                            published,
                            Ordering::Release,
                            Ordering::Relaxed,
                            &guard,
                        );
                        let raw = published.as_raw();
                        drop(guard);
                        return self.await_fulfill(raw, false, deadline, token);
                    }
                    Err(e) => {
                        synq::contention::note_cas_fail();
                        node = Some(e.new);
                        continue;
                    }
                }
            }

            // Data at the front: take the oldest.
            // SAFETY: head never null.
            let m = unsafe { h.deref() }.next.load(Ordering::Acquire, &guard);
            if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard))
                || !h.ptr_eq(&self.head.load(Ordering::Acquire, &guard))
                || m.is_null()
            {
                continue;
            }
            // SAFETY: m reachable under our pin.
            let m_ref = unsafe { m.deref() };
            let mut taken = None;
            if m_ref.slot.try_claim() {
                // SAFETY: claim grants slot read access.
                taken = Some(unsafe { m_ref.slot.take_item() });
                m_ref.slot.complete();
            }
            let _ = self.advance_head(h, m, &guard);
            if taken.is_some() {
                return TransferOutcome::Transferred(taken);
            }
        }
    }

    fn await_fulfill(
        &self,
        node_raw: *const TNode<T>,
        is_data: bool,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        // SAFETY: we hold the waiter reference.
        let node = unsafe { &*node_raw };
        let outcome = match node.slot.await_outcome(deadline, token, &self.spin) {
            WaitOutcome::Matched(_) => {
                let item = if is_data {
                    None
                } else {
                    // SAFETY: producer wrote before MATCHED.
                    Some(unsafe { node.slot.take_item() })
                };
                TransferOutcome::Transferred(item)
            }
            verdict => {
                // We won the cancel CAS.
                let guard = epoch::pin();
                self.absorb_cancelled(&guard);
                drop(guard);
                let item = if is_data {
                    // SAFETY: cancellation wins the item back.
                    Some(unsafe { node.slot.take_item() })
                } else {
                    None
                };
                if verdict == WaitOutcome::Cancelled {
                    TransferOutcome::Cancelled(item)
                } else {
                    TransferOutcome::Timeout(item)
                }
            }
        };
        // SAFETY: the waiter reference.
        unsafe { TNode::release(node_raw) };
        outcome
    }
}

/// A `TransferQueue` is itself a synchronous transfer point when driven
/// through [`Transferer`]: the producer side maps to the *synchronous*
/// `transfer` (the paper: "the base synchronous support in TransferQueues
/// mirrors our fair synchronous queue"). This lets a `TransferQueue` slot
/// directly into anything built over the channel traits — including the
/// `ThreadPoolExecutor` — while still offering `put` for asynchronous use.
impl<T: Send> Transferer<T> for TransferQueue<T> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        match item {
            Some(v) => self.producer(Some(v), PutMode::Sync, deadline, token),
            None => self.consumer(deadline, token),
        }
    }
}

impl_channels_via_transferer!(TransferQueue);

impl<T> Drop for TransferQueue<T> {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        let mut p = self.head.load(Ordering::Relaxed, &guard);
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let node = unsafe { p.deref() };
            let next = node.next.load(Ordering::Relaxed, &guard);
            unsafe { TNode::release(p.as_raw()) };
            p = next;
        }
    }
}

impl<T> std::fmt::Debug for TransferQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("TransferQueue { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn async_put_buffers_fifo() {
        let q = TransferQueue::new();
        assert!(q.is_empty());
        q.put(1);
        q.put(2);
        q.put(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.take(), 1);
        assert_eq!(q.take(), 2);
        assert_eq!(q.take(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn poll_on_empty_fails() {
        let q: TransferQueue<u8> = TransferQueue::new();
        assert_eq!(q.poll(), None);
    }

    #[test]
    fn transfer_blocks_until_taken() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = Arc::new(TransferQueue::new());
        let returned = Arc::new(AtomicBool::new(false));
        let q2 = Arc::clone(&q);
        let r2 = Arc::clone(&returned);
        let t = thread::spawn(move || {
            q2.transfer(9u32);
            r2.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!returned.load(Ordering::SeqCst), "transfer returned early");
        assert_eq!(q.take(), 9);
        t.join().unwrap();
        assert!(returned.load(Ordering::SeqCst));
    }

    #[test]
    fn put_does_not_block() {
        let q: TransferQueue<u32> = TransferQueue::new();
        // No consumer exists; put must return.
        for i in 0..100 {
            q.put(i);
        }
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn try_transfer_needs_waiting_consumer() {
        let q = Arc::new(TransferQueue::new());
        assert_eq!(q.try_transfer(1), Err(1));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        let mut v = 5u32;
        loop {
            match q.try_transfer(v) {
                Ok(()) => break,
                Err(back) => {
                    v = back;
                    thread::yield_now();
                }
            }
        }
        assert_eq!(t.join().unwrap(), 5);
    }

    #[test]
    fn transfer_timeout_returns_item() {
        let q: TransferQueue<String> = TransferQueue::new();
        let back = q
            .transfer_timeout("x".into(), Duration::from_millis(15))
            .unwrap_err();
        assert_eq!(back, "x");
        // The cancelled sync node must not count as buffered data.
        assert_eq!(q.poll(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn consumers_wake_for_async_puts() {
        let q = Arc::new(TransferQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        thread::sleep(Duration::from_millis(20));
        q.put(77u32);
        assert_eq!(t.join().unwrap(), 77);
    }

    #[test]
    fn mixed_sync_async_ordering() {
        let q = Arc::new(TransferQueue::new());
        q.put(1); // buffered
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.transfer(2)); // waits behind it
        while q.len() < 2 {
            thread::yield_now();
        }
        assert_eq!(q.take(), 1);
        assert_eq!(q.take(), 2);
        t.join().unwrap();
    }

    #[test]
    fn cancellation_of_waiting_transfer() {
        let q: Arc<TransferQueue<u32>> = Arc::new(TransferQueue::new());
        let token = CancelToken::new();
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.transfer_with(4, Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(Some(4)) => {}
            other => panic!("expected Cancelled(4), got {other:?}"),
        }
    }

    #[test]
    fn values_conserved_mixed_stress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        const PRODUCERS: usize = 4;
        const PER: usize = 400;
        let q = Arc::new(TransferQueue::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    let v = p * PER + i;
                    if i % 2 == 0 {
                        q.put(v);
                    } else {
                        q.transfer(v);
                    }
                }
            }));
        }
        let sum = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                thread::spawn(move || {
                    for _ in 0..PER {
                        sum.fetch_add(q.take(), Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (0..PRODUCERS * PER).sum());
        assert!(q.is_empty());
    }

    #[test]
    fn waiting_consumer_introspection() {
        let q: Arc<TransferQueue<u32>> = Arc::new(TransferQueue::new());
        assert!(!q.has_waiting_consumer());
        assert_eq!(q.waiting_consumer_count(), 0);
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        while !q.has_waiting_consumer() {
            thread::yield_now();
        }
        assert_eq!(q.waiting_consumer_count(), 1);
        q.put(5);
        assert_eq!(t.join().unwrap(), 5);
        assert!(!q.has_waiting_consumer());
    }

    #[test]
    fn transferer_impl_mirrors_fair_synchronous_queue() {
        use synq::{SyncChannel, TimedSyncChannel};
        let q: Arc<TransferQueue<u32>> = Arc::new(TransferQueue::new());
        // Channel-trait view: offer fails with nobody waiting (synchronous
        // semantics), even though `put` (async) would succeed.
        assert_eq!(q.offer(1), Err(1));
        assert_eq!(TimedSyncChannel::poll(&*q), None);
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || SyncChannel::take(&*q2));
        SyncChannel::put(&*q, 9); // trait put == synchronous transfer
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn works_as_executor_channel() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use synq_executor::ThreadPool;
        let pool = ThreadPool::cached(Arc::new(TransferQueue::new()));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn drop_frees_buffered_items() {
        static DROPS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        {
            let q = TransferQueue::new();
            for _ in 0..7 {
                q.put(D);
            }
            drop(q.take());
        }
        assert_eq!(DROPS.load(std::sync::atomic::Ordering::SeqCst), 7);
    }
}
