//! TransferQueue — the paper's §5 extension, adopted into Java 7 as
//! `LinkedTransferQueue`.
//!
//! > "TransferQueues permit producers to enqueue data either synchronously
//! > or asynchronously. … The base synchronous support in TransferQueues
//! > mirrors our fair synchronous queue. The asynchronous additions differ
//! > only by releasing producers before items are taken."
//!
//! [`TransferQueue`] is therefore the synchronous dual queue of
//! `synq::dual_queue` with one extra degree of freedom per data node:
//! *async* data nodes have no waiter — [`TransferQueue::put`] links the
//! item and returns immediately (the queue buffers it), while
//! [`TransferQueue::transfer`] blocks until a consumer takes the item,
//! exactly like the synchronous queue's `put`. Consumers are identical in
//! both cases. The list still never holds data and reservations at once.
//!
//! # Bounded mode
//!
//! [`TransferQueue::bounded`] puts a [`RingBuffer`] — a cycle-versioned
//! circular array (DESIGN §4.11) — in front of the linked rendezvous
//! machinery. Buffered `put`/`poll` then ride the ring: no node
//! allocation, no epoch pin, one CAS on a cache-padded index per
//! operation (or per *batch* via [`TransferQueue::put_batch`] /
//! [`TransferQueue::take_batch`]). Producers block only when the ring is
//! full, consumers only when it is empty, both via lightweight
//! space/item wait lists. [`TransferQueue::transfer`] still rendezvouses
//! through the linked protocol for exactly-once handoff semantics.
//!
//! The ordering contract in bounded mode: `take`/`poll` drain buffered
//! ring items *before* claiming waiting synchronous transfers, and each
//! category is FIFO within itself. Because bounded consumers wait on the
//! item list rather than publishing linked reservations,
//! [`TransferQueue::try_transfer`] (and the channel-trait `offer`, which
//! has the same only-if-a-consumer-waits semantics) always fails in
//! bounded mode — use [`BufferedChannel`] for trait-level buffered
//! semantics.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod ring;
mod waiters;

pub use ring::RingBuffer;

use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Poll, Waker};
use std::time::Duration;
use synq::{
    impl_channels_via_transferer, CancelToken, Deadline, PendingTransfer, PollTransferer,
    SpinPolicy, StartTransfer, SyncChannel, TimedSyncChannel, TransferOutcome, Transferer,
};
use synq_obs::probe;
use synq_primitives::{CachePadded, WaitOutcome, WaitSlot};
use synq_reclaim::{Atomic, Epoch, Owned, Reclaimer, Shared, Shield};
use waiters::WaiterQueue;

struct TNode<T, R: Reclaimer> {
    /// The wait-node protocol. Async data nodes never wait on it: the
    /// producer has already returned and only the state machine is used.
    slot: WaitSlot<T>,
    next: Atomic<TNode<T, R>, R>,
    is_data: bool,
    /// Bounded mode tallies linked sync transfers in
    /// `TransferQueue::sync_transfers` so consumers can skip the
    /// reclaimer-guarded linked path entirely when none exist; a counted
    /// node must decrement on claim or cancellation.
    counted: bool,
    refs: AtomicUsize,
    unlinked: AtomicBool,
}

impl<T, R: Reclaimer> TNode<T, R> {
    fn new(is_data: bool, counted: bool, refs: usize) -> Owned<TNode<T, R>> {
        Owned::new(TNode {
            slot: WaitSlot::new(),
            next: Atomic::null(),
            is_data,
            counted,
            refs: AtomicUsize::new(refs),
            unlinked: AtomicBool::new(false),
        })
    }

    unsafe fn release(ptr: *const TNode<T, R>) {
        // SAFETY: caller owns one reference.
        let node = unsafe { &*ptr };
        if node.refs.fetch_sub(1, Ordering::Release) == 1 {
            std::sync::atomic::fence(Ordering::Acquire);
            // SAFETY: last reference (see synq::dual_queue for the
            // reclamation argument). The slot's Drop releases any item
            // still pending in the cell.
            drop(unsafe { Box::from_raw(ptr as *mut TNode<T, R>) });
        }
    }
}

/// How a producer-side operation relates to its item.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PutMode {
    /// Link and return (the queue buffers the item).
    Async,
    /// Wait until a consumer takes the item.
    Sync,
}

/// A queue supporting both synchronous and asynchronous enqueue, with an
/// optional bounded array-backed fast path for the asynchronous side.
///
/// # Examples
///
/// ```
/// use synq_transfer::TransferQueue;
///
/// let q = TransferQueue::new();
/// q.put(1);          // asynchronous: returns immediately
/// q.put(2);
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.take(), 1); // FIFO
/// assert_eq!(q.take(), 2);
/// ```
///
/// Bounded mode buffers through the ring instead of the linked list:
///
/// ```
/// use synq_transfer::TransferQueue;
///
/// let q = TransferQueue::bounded(4);
/// assert_eq!(q.capacity(), Some(4));
/// assert_eq!(q.try_put(1), Ok(()));
/// assert_eq!(q.try_put(2), Ok(()));
/// assert_eq!(q.poll(), Some(1));
/// assert_eq!(q.poll(), Some(2));
/// ```
///
/// The memory-reclamation backend is pluggable (`R`, default
/// [`Epoch`]) — see `synq_reclaim` for the trade-offs:
///
/// ```
/// use synq_reclaim::Hazard;
/// use synq_transfer::TransferQueue;
///
/// let q: TransferQueue<u32, Hazard> = TransferQueue::new_in();
/// q.put(7);
/// assert_eq!(q.take(), 7);
/// ```
pub struct TransferQueue<T, R: Reclaimer = Epoch> {
    head: Atomic<TNode<T, R>, R>,
    tail: Atomic<TNode<T, R>, R>,
    spin: SpinPolicy,
    /// Bounded mode: the array fast path in front of the linked protocol.
    ring: Option<RingBuffer<T>>,
    /// Bounded mode: linked *sync* data nodes currently published (put
    /// after the publish CAS, taken back on claim or cancellation).
    /// Consumers touch the reclaimer-guarded linked path only when this is
    /// non-zero, which is what makes the pure buffered path guard-free.
    sync_transfers: CachePadded<AtomicUsize>,
    /// Bounded mode: producers waiting for ring space.
    space_waiters: WaiterQueue,
    /// Bounded mode: consumers (and unbounded async receivers) waiting
    /// for an item.
    item_waiters: WaiterQueue,
}

// SAFETY: as for synq::SyncDualQueue; the ring imposes only T: Send.
unsafe impl<T: Send, R: Reclaimer> Send for TransferQueue<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for TransferQueue<T, R> {}

impl<T: Send, R: Reclaimer> Default for TransferQueue<T, R> {
    fn default() -> Self {
        Self::new_in()
    }
}

impl<T: Send> TransferQueue<T> {
    /// Creates an empty unbounded queue (under the default [`Epoch`]
    /// reclaimer — see [`TransferQueue::new_in`] for other backends).
    pub fn new() -> Self {
        Self::with_spin(SpinPolicy::adaptive())
    }

    /// Creates an empty unbounded queue with an explicit spin policy.
    pub fn with_spin(spin: SpinPolicy) -> Self {
        Self::with_spin_in(spin)
    }

    /// Creates a bounded queue: buffered `put`/`poll` ride a
    /// [`RingBuffer`] of `capacity` slots (rounded up to a power of two,
    /// minimum 2) and block when it is full/empty. `transfer` still
    /// rendezvouses through the linked protocol.
    pub fn bounded(capacity: usize) -> Self {
        Self::bounded_with_spin(capacity, SpinPolicy::adaptive())
    }

    /// [`Self::bounded`] with an explicit spin policy.
    pub fn bounded_with_spin(capacity: usize, spin: SpinPolicy) -> Self {
        Self::bounded_with_spin_in(capacity, spin)
    }
}

impl<T: Send, R: Reclaimer> TransferQueue<T, R> {
    /// Creates an empty unbounded queue under the reclamation backend
    /// `R`: `TransferQueue::<T, Hazard>::new_in()`.
    pub fn new_in() -> Self {
        Self::with_spin_in(SpinPolicy::adaptive())
    }

    /// [`Self::new_in`] with an explicit spin policy.
    pub fn with_spin_in(spin: SpinPolicy) -> Self {
        Self::build(spin, None)
    }

    /// [`Self::bounded`] under the reclamation backend `R`.
    pub fn bounded_in(capacity: usize) -> Self {
        Self::bounded_with_spin_in(capacity, SpinPolicy::adaptive())
    }

    /// [`Self::bounded_in`] with an explicit spin policy.
    pub fn bounded_with_spin_in(capacity: usize, spin: SpinPolicy) -> Self {
        Self::build(spin, Some(RingBuffer::new(capacity)))
    }

    fn build(spin: SpinPolicy, ring: Option<RingBuffer<T>>) -> Self {
        let dummy = TNode::new(false, false, 1);
        // SAFETY: single-threaded construction.
        let guard = unsafe { R::unprotected() };
        let dummy = dummy.into_shared(&guard);
        let head = Atomic::null();
        let tail = Atomic::null();
        head.store(dummy, Ordering::Relaxed);
        tail.store(dummy, Ordering::Relaxed);
        TransferQueue {
            head,
            tail,
            spin,
            ring,
            sync_transfers: CachePadded::new(AtomicUsize::new(0)),
            space_waiters: WaiterQueue::new(),
            item_waiters: WaiterQueue::new(),
        }
    }

    /// Ring capacity in bounded mode, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.ring.as_ref().map(RingBuffer::capacity)
    }

    // ------------------------------------------------------ producer API

    /// Asynchronous (buffered) enqueue. Unbounded: links the item and
    /// returns immediately. Bounded: publishes into the ring, waiting for
    /// space if it is full.
    ///
    /// **Name-resolution note:** this inherent method shadows
    /// `SyncChannel::put` (which maps to the *synchronous* [`TransferQueue::transfer`])
    /// when called as `q.put(v)` on a concrete `TransferQueue`. Through a
    /// `dyn SyncChannel` or a generic bound, `put` is synchronous — the
    /// same put/transfer duality as Java's `LinkedTransferQueue`.
    pub fn put(&self, value: T) {
        match self.put_with(value, Deadline::Never, None) {
            TransferOutcome::Transferred(_) => {}
            _ => unreachable!("untimed put cannot fail"),
        }
    }

    /// Buffered enqueue only if it can complete immediately. Unbounded
    /// queues always accept; bounded queues refuse (returning the value)
    /// when the ring is full — or, as of PR 10, when producers are already
    /// **registered waiting for space**: a just-freed slot belongs to the
    /// woken waiter, so `try_put` may fail while `len() < capacity` for
    /// the short handoff window (no-barge rule, DESIGN §4.15).
    pub fn try_put(&self, value: T) -> Result<(), T> {
        match self.put_with(value, Deadline::Now, None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned")),
        }
    }

    /// Buffered enqueue, waiting up to `patience` for ring space.
    pub fn put_timeout(&self, value: T, patience: Duration) -> Result<(), T> {
        match self.put_with(value, Deadline::after(patience), None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned")),
        }
    }

    /// Fully general buffered enqueue. The deadline/token only matter in
    /// bounded mode (an unbounded buffered put never waits).
    pub fn put_with(
        &self,
        value: T,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        match &self.ring {
            Some(ring) => self.bounded_put(ring, value, deadline, token, true),
            None => self.producer(Some(value), PutMode::Async, deadline, token),
        }
    }

    /// Immediate buffered enqueue that does **not** defer to registered
    /// space waiters. For callers that already hold a registration on the
    /// space list (the async permit) — deferring would deadlock against
    /// their own entry, and their barge is the wakeup-retry the no-barge
    /// rule protects.
    fn try_put_as_waiter(&self, value: T) -> Result<(), T> {
        let out = match &self.ring {
            Some(ring) => self.bounded_put(ring, value, Deadline::Now, None, false),
            None => self.producer(Some(value), PutMode::Async, Deadline::Now, None),
        };
        match out {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned")),
        }
    }

    /// Synchronous enqueue: waits until a consumer receives the item.
    pub fn transfer(&self, value: T) {
        match self.producer(Some(value), PutMode::Sync, Deadline::Never, None) {
            TransferOutcome::Transferred(_) => {}
            _ => unreachable!("untimed transfer cannot fail"),
        }
    }

    /// Synchronous enqueue only if a consumer is already waiting.
    ///
    /// Bounded-mode caveat: consumers wait on the item list rather than
    /// publishing linked reservations, so there is never a reservation to
    /// fulfill and this **always fails** on a bounded queue.
    pub fn try_transfer(&self, value: T) -> Result<(), T> {
        match self.producer(Some(value), PutMode::Sync, Deadline::Now, None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned")),
        }
    }

    /// Synchronous enqueue with patience.
    pub fn transfer_timeout(&self, value: T, patience: Duration) -> Result<(), T> {
        match self.producer(Some(value), PutMode::Sync, Deadline::after(patience), None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned")),
        }
    }

    /// Fully general synchronous enqueue.
    pub fn transfer_with(
        &self,
        value: T,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        self.producer(Some(value), PutMode::Sync, deadline, token)
    }

    // ------------------------------------------------------ consumer API

    /// Receives a value, waiting if necessary. Bounded mode prefers
    /// buffered ring items over waiting synchronous transfers (FIFO
    /// within each category).
    pub fn take(&self) -> T {
        match self.take_with(Deadline::Never, None) {
            TransferOutcome::Transferred(Some(v)) => v,
            _ => unreachable!("untimed take cannot fail"),
        }
    }

    /// Receives a buffered or offered value without waiting. Like
    /// [`Self::try_put`], defers to consumers already registered on the
    /// item wait list (no-barge rule): may return `None` while the ring
    /// is momentarily non-empty if its items are spoken for.
    pub fn poll(&self) -> Option<T> {
        self.take_with(Deadline::Now, None).into_inner()
    }

    /// `poll` with patience.
    pub fn poll_timeout(&self, patience: Duration) -> Option<T> {
        self.take_with(Deadline::after(patience), None).into_inner()
    }

    /// Fully general receive.
    pub fn take_with(&self, deadline: Deadline, token: Option<&CancelToken>) -> TransferOutcome<T> {
        match &self.ring {
            Some(ring) => self.bounded_take(ring, deadline, token, true),
            None => self.consumer(deadline, token),
        }
    }

    /// Immediate receive that does **not** defer to registered item
    /// waiters; see [`Self::try_put_as_waiter`].
    fn poll_as_waiter(&self) -> Option<T> {
        match &self.ring {
            Some(ring) => self.bounded_take(ring, Deadline::Now, None, false),
            None => self.consumer(Deadline::Now, None),
        }
        .into_inner()
    }

    // --------------------------------------------------------- batch API

    /// Transfers every item in `items` (buffered), in order, blocking for
    /// ring space as needed in bounded mode; on return the vector is
    /// empty. Bounded queues publish each run of items with a single tail
    /// update (see [`RingBuffer::try_push_batch`]).
    pub fn put_batch(&self, items: &mut Vec<T>) {
        let Some(ring) = &self.ring else {
            for value in items.drain(..) {
                self.put(value);
            }
            return;
        };
        let mut entry: Option<Arc<WaitSlot<()>>> = None;
        let mut consumed_match = false;
        while !items.is_empty() {
            // No-barge: a fresh batch defers to producers already queued
            // for space (same rule as `bounded_put`).
            if !(entry.is_none() && self.space_waiters.hint() > 0) {
                let pushed = ring.try_push_batch(items);
                if pushed > 0 {
                    fence(Ordering::SeqCst);
                    self.item_waiters.notify(pushed);
                    continue;
                }
            }
            if entry.as_ref().is_none_or(|e| !e.is_waiting()) {
                let fresh = self.space_waiters.register();
                fence(Ordering::SeqCst);
                if let Some(old) = entry.replace(fresh) {
                    self.space_waiters.remove(&old);
                }
                consumed_match = false;
                if !ring.is_full() {
                    continue;
                }
            }
            probe!(RingFullWaits);
            match entry.as_ref().expect("registered above").await_outcome(
                Deadline::Never,
                None,
                &self.spin,
            ) {
                WaitOutcome::Matched(_) => consumed_match = true,
                _ => unreachable!("untimed, uncancellable wait cannot expire"),
            }
        }
        if let Some(e) = entry {
            self.release_waiter(&self.space_waiters, e, consumed_match);
        }
    }

    /// Transfers as many items from the front of `items` as fit without
    /// waiting, leaving the rest. Returns how many were sent. Unbounded
    /// queues accept everything.
    pub fn try_put_batch(&self, items: &mut Vec<T>) -> usize {
        let Some(ring) = &self.ring else {
            let n = items.len();
            for value in items.drain(..) {
                self.put(value);
            }
            return n;
        };
        let mut sent = 0;
        loop {
            let pushed = ring.try_push_batch(items);
            if pushed == 0 {
                break;
            }
            sent += pushed;
        }
        if sent > 0 {
            fence(Ordering::SeqCst);
            self.item_waiters.notify(sent);
        }
        sent
    }

    /// Receives up to `max` items into `out`, blocking until at least one
    /// is available (when `max > 0`). Returns how many arrived. Bounded
    /// queues claim each available run with a single head update.
    pub fn take_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let got = self.try_take_batch(out, max);
        if got > 0 {
            return got;
        }
        match self.take_with(Deadline::Never, None) {
            TransferOutcome::Transferred(Some(v)) => out.push(v),
            _ => unreachable!("untimed take cannot fail"),
        }
        1 + self.try_take_batch(out, max - 1)
    }

    /// Receives up to `max` immediately-available items into `out` without
    /// blocking. Returns how many arrived. In bounded mode, ring items
    /// are drained first, then any waiting synchronous transfers.
    pub fn try_take_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let Some(ring) = &self.ring else {
            let mut got = 0;
            while got < max {
                match self.consumer(Deadline::Now, None) {
                    TransferOutcome::Transferred(Some(v)) => {
                        out.push(v);
                        got += 1;
                    }
                    _ => break,
                }
            }
            return got;
        };
        let mut got = 0;
        loop {
            let popped = ring.try_pop_batch(out, max - got);
            if popped == 0 {
                break;
            }
            fence(Ordering::SeqCst);
            self.space_waiters.notify(popped);
            got += popped;
        }
        while got < max && self.sync_transfers.load(Ordering::SeqCst) > 0 {
            match self.consumer(Deadline::Now, None) {
                TransferOutcome::Transferred(Some(v)) => {
                    out.push(v);
                    got += 1;
                }
                _ => break,
            }
        }
        got
    }

    // ------------------------------------------------------- inspection

    /// Number of buffered (unmatched, uncancelled) data items: ring
    /// occupancy plus published-but-unclaimed synchronous transfers.
    ///
    /// Bounded mode is O(1) and guard-free (two atomic loads); unbounded
    /// mode walks the linked chain under a reclaimer guard, O(n).
    pub fn len(&self) -> usize {
        if let Some(ring) = &self.ring {
            return ring.len() + self.sync_transfers.load(Ordering::SeqCst);
        }
        let guard = R::pin();
        'restart: loop {
            let h = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: head never null; structure-field protection.
            let mut prev = unsafe { h.deref() };
            let mut n = 0;
            loop {
                let next = prev.next.load(Ordering::Acquire, &guard);
                // Head re-anchor (see synq::dual_queue): nodes retire only
                // as the head advances past them, so an unchanged head
                // proves everything reached from it is still alive.
                if !self.head.load(Ordering::Acquire, &guard).ptr_eq(&h) {
                    continue 'restart;
                }
                // SAFETY: protected, and validated live just above.
                let Some(next_ref) = (unsafe { next.as_ref() }) else {
                    return n;
                };
                if next_ref.is_data && next_ref.slot.is_waiting() {
                    n += 1;
                }
                prev = next_ref;
            }
        }
    }

    /// True if no data is buffered (ring *and* linked chain — see
    /// [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if at least one consumer is blocked waiting for an element
    /// (mirrors `LinkedTransferQueue.hasWaitingConsumer`). Producers can
    /// use this to decide between `put` and `transfer`.
    pub fn has_waiting_consumer(&self) -> bool {
        self.waiting_consumer_count() > 0
    }

    /// Number of consumers blocked waiting for an element (mirrors
    /// `LinkedTransferQueue.getWaitingConsumerCount`). Approximate under
    /// concurrency. Bounded mode reads the item wait-list length (O(1));
    /// unbounded mode walks the chain, O(n).
    pub fn waiting_consumer_count(&self) -> usize {
        if self.ring.is_some() {
            return self.item_waiters.hint();
        }
        let guard = R::pin();
        'restart: loop {
            let h = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: head never null; structure-field protection.
            let mut prev = unsafe { h.deref() };
            let mut n = 0;
            loop {
                let next = prev.next.load(Ordering::Acquire, &guard);
                // Head re-anchor (see `len`).
                if !self.head.load(Ordering::Acquire, &guard).ptr_eq(&h) {
                    continue 'restart;
                }
                // SAFETY: protected, and validated live just above.
                let Some(next_ref) = (unsafe { next.as_ref() }) else {
                    return n;
                };
                if !next_ref.is_data && next_ref.slot.is_waiting() {
                    n += 1;
                }
                prev = next_ref;
            }
        }
    }

    // ----------------------------------------------- bounded fast paths

    /// Bounded buffered put: ride the ring, waiting for space when full.
    ///
    /// Lost-wakeup discipline (see `waiters`): push (SeqCst CAS) →
    /// fence → notify on the producer side; register (SeqCst store) →
    /// fence → re-check `is_full` on this side. One of the two always
    /// observes the other.
    /// `defer_to_waiters` is the **no-barge** rule (PR 10): a fresh arrival
    /// that finds earlier producers already registered does not race them
    /// for whatever space a consumer just freed — it queues up behind them.
    /// Only callers with no registration of their own defer; a woken waiter
    /// re-attempting must barge, or woken waiters would defer to each other
    /// and the ring could sit non-full with every producer parked.
    fn bounded_put(
        &self,
        ring: &RingBuffer<T>,
        mut value: T,
        deadline: Deadline,
        token: Option<&CancelToken>,
        defer_to_waiters: bool,
    ) -> TransferOutcome<T> {
        let mut entry: Option<Arc<WaitSlot<()>>> = None;
        // True while `entry` holds a notification we were woken by and have
        // not yet converted into a successful push.
        let mut consumed_match = false;
        let outcome = loop {
            if !(defer_to_waiters && entry.is_none() && self.space_waiters.hint() > 0) {
                match ring.try_push(value) {
                    Ok(()) => {
                        fence(Ordering::SeqCst);
                        self.item_waiters.notify(1);
                        break TransferOutcome::Transferred(None);
                    }
                    Err(back) => value = back,
                }
            }
            if deadline.is_now() || deadline.expired() {
                break TransferOutcome::Timeout(Some(value));
            }
            if token.is_some_and(|tk| tk.is_cancelled()) {
                break TransferOutcome::Cancelled(Some(value));
            }
            if entry.as_ref().is_none_or(|e| !e.is_waiting()) {
                // (Re-)register. A spent (matched) entry is replaced
                // *before* it is removed, so the registered count never
                // dips to zero mid-handoff — a dip would open the barge
                // window the in-place notify protocol closes.
                let fresh = self.space_waiters.register();
                fence(Ordering::SeqCst);
                if let Some(old) = entry.replace(fresh) {
                    self.space_waiters.remove(&old);
                }
                consumed_match = false;
                if !ring.is_full() {
                    continue;
                }
            }
            probe!(RingFullWaits);
            match entry
                .as_ref()
                .expect("registered above")
                .await_outcome(deadline, token, &self.spin)
            {
                WaitOutcome::Matched(_) => consumed_match = true,
                WaitOutcome::TimedOut => break TransferOutcome::Timeout(Some(value)),
                WaitOutcome::Cancelled => break TransferOutcome::Cancelled(Some(value)),
            }
        };
        if let Some(e) = entry {
            self.release_waiter(
                &self.space_waiters,
                e,
                consumed_match && matches!(outcome, TransferOutcome::Transferred(_)),
            );
        }
        outcome
    }

    /// Unlinks a wait-list entry on exit from a bounded fast path.
    /// `notification_used`: the entry's match was converted into a
    /// completed ring operation, so the wakeup is consumed rather than
    /// passed on.
    fn release_waiter(&self, waiters: &WaiterQueue, e: Arc<WaitSlot<()>>, notification_used: bool) {
        if e.is_cancelled() || notification_used {
            // CANCELLED: `await_outcome` arbitration already settled the
            // slot; a retract here would wrongly pass a notification on.
            waiters.remove(&e);
        } else {
            // Still WAITING (or matched by a racing notify whose freed
            // capacity we did not use): cancel-or-pass-on.
            waiters.retract(&e);
        }
    }

    /// Bounded receive: ring items first, then waiting synchronous
    /// transfers, else wait on the item list. The `sync_transfers` gate is
    /// what keeps the pure buffered path off the epoch-pinned linked
    /// protocol entirely. `defer_to_waiters` mirrors [`Self::bounded_put`]:
    /// fresh arrivals queue up behind already-registered consumers instead
    /// of stealing a just-pushed item out from under them.
    fn bounded_take(
        &self,
        ring: &RingBuffer<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
        defer_to_waiters: bool,
    ) -> TransferOutcome<T> {
        let mut entry: Option<Arc<WaitSlot<()>>> = None;
        let mut consumed_match = false;
        let outcome = loop {
            if !(defer_to_waiters && entry.is_none() && self.item_waiters.hint() > 0) {
                if let Some(v) = ring.try_pop() {
                    fence(Ordering::SeqCst);
                    self.space_waiters.notify(1);
                    break TransferOutcome::Transferred(Some(v));
                }
                if self.sync_transfers.load(Ordering::SeqCst) > 0 {
                    if let TransferOutcome::Transferred(v) = self.consumer(Deadline::Now, None) {
                        break TransferOutcome::Transferred(v);
                    }
                    // The counted node was claimed or cancelled by someone
                    // else and the counter is momentarily stale; re-examine.
                    std::thread::yield_now();
                    continue;
                }
            }
            if deadline.is_now() || deadline.expired() {
                break TransferOutcome::Timeout(None);
            }
            if token.is_some_and(|tk| tk.is_cancelled()) {
                break TransferOutcome::Cancelled(None);
            }
            if entry.as_ref().is_none_or(|e| !e.is_waiting()) {
                // Register-fresh-then-remove-old, as in `bounded_put`.
                let fresh = self.item_waiters.register();
                fence(Ordering::SeqCst);
                if let Some(old) = entry.replace(fresh) {
                    self.item_waiters.remove(&old);
                }
                consumed_match = false;
                if !ring.is_empty() || self.sync_transfers.load(Ordering::SeqCst) > 0 {
                    continue;
                }
            }
            probe!(RingEmptyWaits);
            match entry
                .as_ref()
                .expect("registered above")
                .await_outcome(deadline, token, &self.spin)
            {
                WaitOutcome::Matched(_) => consumed_match = true,
                WaitOutcome::TimedOut => break TransferOutcome::Timeout(None),
                WaitOutcome::Cancelled => break TransferOutcome::Cancelled(None),
            }
        };
        if let Some(e) = entry {
            self.release_waiter(
                &self.item_waiters,
                e,
                consumed_match && matches!(outcome, TransferOutcome::Transferred(_)),
            );
        }
        outcome
    }

    // ---------------------------------------------------------- internals

    fn advance_head<'g>(
        &self,
        h: Shared<'g, TNode<T, R>>,
        nh: Shared<'g, TNode<T, R>>,
        guard: &'g R::Guard,
    ) -> bool {
        if self
            .head
            .compare_exchange(h, nh, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            // Help a lagging tail off `h` before retiring it, so `tail`
            // never references a retired node (Michael's rule). Without
            // this a bounded-slot backend could free `h` while `tail`
            // still points at it, and a later tail-load's source
            // re-validation would wrongly pass. Tail moves only forward
            // along the chain, so once past `h` it can never return.
            let t = self.tail.load(Ordering::Acquire, guard);
            if t.ptr_eq(&h) {
                let _ =
                    self.tail
                        .compare_exchange(t, nh, Ordering::Release, Ordering::Relaxed, guard);
            }
            // SAFETY: unlinked by our CAS; release the structure reference.
            let node_ref = unsafe { h.deref() };
            let was = node_ref.unlinked.swap(true, Ordering::AcqRel);
            debug_assert!(!was);
            let raw = h.as_raw() as usize;
            // SAFETY: deferred past the backend's grace period.
            unsafe {
                guard.defer_retire(raw, move || TNode::release(raw as *const TNode<T, R>));
            }
            true
        } else {
            false
        }
    }

    fn absorb_cancelled(&self, guard: &R::Guard) {
        loop {
            let h = self.head.load(Ordering::Acquire, guard);
            // SAFETY: head never null.
            let hn = unsafe { h.deref() }.next.load(Ordering::Acquire, guard);
            // Snapshot re-check (see synq::dual_queue): `hn` came through a
            // node field, so prove `h` was still the head — hence
            // unretired, hence `hn` unretired — after `hn`'s protection
            // published.
            if !self.head.load(Ordering::Acquire, guard).ptr_eq(&h) {
                continue;
            }
            // SAFETY: validated just above.
            let Some(hn_ref) = (unsafe { hn.as_ref() }) else {
                return;
            };
            if !hn_ref.slot.is_cancelled() {
                return;
            }
            let _ = self.advance_head(h, hn, guard);
        }
    }

    fn producer(
        &self,
        mut item: Option<T>,
        mode: PutMode,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        // Bounded mode tallies linked sync transfers (see `sync_transfers`).
        let counted = mode == PutMode::Sync && self.ring.is_some();
        let mut node: Option<Owned<TNode<T, R>>> = None;
        loop {
            let guard = R::pin();
            self.absorb_cancelled(&guard);

            let h = self.head.load(Ordering::Acquire, &guard);
            let t = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: never null, protected.
            let t_ref = unsafe { t.deref() };

            if h.ptr_eq(&t) || t_ref.is_data {
                // Append our data node.
                let n = t_ref.next.load(Ordering::Acquire, &guard);
                if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard)) {
                    continue;
                }
                if !n.is_null() {
                    let _ = self.tail.compare_exchange(
                        t,
                        n,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    continue;
                }
                if mode == PutMode::Sync {
                    if deadline.is_now() {
                        return TransferOutcome::Timeout(item);
                    }
                    if token.is_some_and(|tk| tk.is_cancelled()) {
                        return TransferOutcome::Cancelled(item);
                    }
                }
                // Async nodes carry only the structure's reference.
                let refs = if mode == PutMode::Async { 1 } else { 2 };
                let owned = match node.take() {
                    Some(n) => n,
                    None => TNode::new(true, counted, refs),
                };
                // SAFETY: unpublished node, exclusively ours.
                unsafe { owned.slot.put_item(item.take().expect("producer has item")) };
                match t_ref.next.compare_exchange(
                    Shared::null(),
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        let _ = self.tail.compare_exchange(
                            t,
                            published,
                            Ordering::Release,
                            Ordering::Relaxed,
                            &guard,
                        );
                        if counted {
                            self.sync_transfers.fetch_add(1, Ordering::SeqCst);
                        }
                        // Wake an item-list waiter (bounded consumers and
                        // async receivers wait there, not as reservations).
                        fence(Ordering::SeqCst);
                        self.item_waiters.notify(1);
                        if mode == PutMode::Async {
                            return TransferOutcome::Transferred(None);
                        }
                        let raw = published.as_raw();
                        drop(guard);
                        return self.await_fulfill(raw, true, deadline, token);
                    }
                    Err(e) => {
                        synq::contention::note_cas_fail();
                        let owned = e.new;
                        // SAFETY: unpublished; reclaim the item.
                        item = Some(unsafe { owned.slot.reclaim_item() });
                        node = Some(owned);
                        continue;
                    }
                }
            }

            // Reservations at the front: fulfill the oldest.
            // SAFETY: head never null.
            let m = unsafe { h.deref() }.next.load(Ordering::Acquire, &guard);
            if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard))
                || !h.ptr_eq(&self.head.load(Ordering::Acquire, &guard))
                || m.is_null()
            {
                continue;
            }
            // SAFETY: m reachable under our pin.
            let m_ref = unsafe { m.deref() };
            let matched = if m_ref.slot.try_claim() {
                // SAFETY: claim grants slot write access.
                unsafe { m_ref.slot.put_item(item.take().expect("producer has item")) };
                m_ref.slot.complete();
                true
            } else {
                false
            };
            let _ = self.advance_head(h, m, &guard);
            if matched {
                return TransferOutcome::Transferred(None);
            }
        }
    }

    fn consumer(&self, deadline: Deadline, token: Option<&CancelToken>) -> TransferOutcome<T> {
        let mut node: Option<Owned<TNode<T, R>>> = None;
        loop {
            let guard = R::pin();
            self.absorb_cancelled(&guard);

            let h = self.head.load(Ordering::Acquire, &guard);
            let t = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: never null, protected.
            let t_ref = unsafe { t.deref() };

            if h.ptr_eq(&t) || !t_ref.is_data {
                // Queue empty or holds reservations: append ours.
                let n = t_ref.next.load(Ordering::Acquire, &guard);
                if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard)) {
                    continue;
                }
                if !n.is_null() {
                    let _ = self.tail.compare_exchange(
                        t,
                        n,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    continue;
                }
                if deadline.is_now() {
                    return TransferOutcome::Timeout(None);
                }
                if token.is_some_and(|tk| tk.is_cancelled()) {
                    return TransferOutcome::Cancelled(None);
                }
                let owned = match node.take() {
                    Some(n) => n,
                    None => TNode::new(false, false, 2),
                };
                match t_ref.next.compare_exchange(
                    Shared::null(),
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        let _ = self.tail.compare_exchange(
                            t,
                            published,
                            Ordering::Release,
                            Ordering::Relaxed,
                            &guard,
                        );
                        let raw = published.as_raw();
                        drop(guard);
                        return self.await_fulfill(raw, false, deadline, token);
                    }
                    Err(e) => {
                        synq::contention::note_cas_fail();
                        node = Some(e.new);
                        continue;
                    }
                }
            }

            // Data at the front: take the oldest.
            // SAFETY: head never null.
            let m = unsafe { h.deref() }.next.load(Ordering::Acquire, &guard);
            if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard))
                || !h.ptr_eq(&self.head.load(Ordering::Acquire, &guard))
                || m.is_null()
            {
                continue;
            }
            // SAFETY: m reachable under our pin.
            let m_ref = unsafe { m.deref() };
            let mut taken = None;
            if m_ref.slot.try_claim() {
                // SAFETY: claim grants slot read access.
                taken = Some(unsafe { m_ref.slot.take_item() });
                m_ref.slot.complete();
                if m_ref.counted {
                    self.sync_transfers.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let _ = self.advance_head(h, m, &guard);
            if taken.is_some() {
                return TransferOutcome::Transferred(taken);
            }
        }
    }

    fn await_fulfill(
        &self,
        node_raw: *const TNode<T, R>,
        is_data: bool,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        // SAFETY: we hold the waiter reference.
        let node = unsafe { &*node_raw };
        let outcome = match node.slot.await_outcome(deadline, token, &self.spin) {
            WaitOutcome::Matched(_) => {
                let item = if is_data {
                    None
                } else {
                    // SAFETY: producer wrote before MATCHED.
                    Some(unsafe { node.slot.take_item() })
                };
                TransferOutcome::Transferred(item)
            }
            verdict => {
                // We won the cancel CAS.
                if node.counted {
                    self.sync_transfers.fetch_sub(1, Ordering::SeqCst);
                }
                let guard = R::pin();
                self.absorb_cancelled(&guard);
                drop(guard);
                let item = if is_data {
                    // SAFETY: cancellation wins the item back.
                    Some(unsafe { node.slot.take_item() })
                } else {
                    None
                };
                if verdict == WaitOutcome::Cancelled {
                    TransferOutcome::Cancelled(item)
                } else {
                    TransferOutcome::Timeout(item)
                }
            }
        };
        // SAFETY: the waiter reference.
        unsafe { TNode::release(node_raw) };
        outcome
    }
}

/// A `TransferQueue` is itself a synchronous transfer point when driven
/// through [`Transferer`]: the producer side maps to the *synchronous*
/// `transfer` (the paper: "the base synchronous support in TransferQueues
/// mirrors our fair synchronous queue"). This lets a `TransferQueue` slot
/// directly into anything built over the channel traits — including the
/// `ThreadPoolExecutor` — while still offering `put` for asynchronous use.
/// (For *buffered* channel-trait semantics, wrap in [`BufferedChannel`].)
impl<T: Send, R: Reclaimer> Transferer<T> for TransferQueue<T, R> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        match item {
            Some(v) => self.producer(Some(v), PutMode::Sync, deadline, token),
            None => self.take_with(deadline, token),
        }
    }
}

impl_channels_via_transferer!(TransferQueue<R: synq_reclaim::Reclaimer>);

impl<T, R: Reclaimer> Drop for TransferQueue<T, R> {
    fn drop(&mut self) {
        // SAFETY: exclusive access in Drop.
        let guard = unsafe { R::unprotected() };
        let mut p = self.head.load(Ordering::Relaxed, &guard);
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let node = unsafe { p.deref() };
            let next = node.next.load(Ordering::Relaxed, &guard);
            unsafe { TNode::release(p.as_raw()) };
            p = next;
        }
    }
}

impl<T, R: Reclaimer> std::fmt::Debug for TransferQueue<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.ring {
            Some(ring) => write!(f, "TransferQueue {{ capacity: {} }}", ring.capacity()),
            None => f.pad("TransferQueue { unbounded }"),
        }
    }
}

// ===================================================== buffered channel

/// Channel-trait adapter exposing a [`TransferQueue`]'s *buffered*
/// semantics: `put`/`offer` enqueue asynchronously (ride the ring in
/// bounded mode) instead of rendezvousing.
///
/// The raw `TransferQueue` channel impls keep the paper-faithful
/// synchronous mapping (`put` = `transfer`); this wrapper is what you hand
/// to generic drivers — and to `synq-async`, via its [`PollTransferer`]
/// impl — when you want queue semantics.
///
/// # Examples
///
/// ```
/// use synq::{SyncChannel, TimedSyncChannel};
/// use synq_transfer::BufferedChannel;
///
/// let ch = BufferedChannel::bounded(8);
/// ch.put(1); // buffered: returns immediately
/// assert_eq!(ch.offer(2), Ok(()));
/// let mut batch = vec![3, 4, 5];
/// ch.send_batch(&mut batch);
/// assert_eq!(SyncChannel::take(&ch), 1);
/// let mut out = Vec::new();
/// assert_eq!(ch.recv_batch(&mut out, 8), 4);
/// assert_eq!(out, vec![2, 3, 4, 5]);
/// ```
#[derive(Debug)]
pub struct BufferedChannel<T> {
    queue: TransferQueue<T>,
}

impl<T: Send> BufferedChannel<T> {
    /// A bounded buffered channel (see [`TransferQueue::bounded`]).
    pub fn bounded(capacity: usize) -> Self {
        BufferedChannel {
            queue: TransferQueue::bounded(capacity),
        }
    }

    /// An unbounded buffered channel.
    pub fn unbounded() -> Self {
        BufferedChannel {
            queue: TransferQueue::new(),
        }
    }

    /// Wraps an existing queue.
    pub fn from_queue(queue: TransferQueue<T>) -> Self {
        BufferedChannel { queue }
    }

    /// The underlying queue (for `transfer` and introspection).
    pub fn queue(&self) -> &TransferQueue<T> {
        &self.queue
    }
}

impl<T: Send> SyncChannel<T> for BufferedChannel<T> {
    fn put(&self, value: T) {
        self.queue.put(value);
    }

    fn take(&self) -> T {
        self.queue.take()
    }

    fn send_batch(&self, items: &mut Vec<T>) {
        self.queue.put_batch(items);
    }

    fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        self.queue.take_batch(out, max)
    }
}

impl<T: Send> TimedSyncChannel<T> for BufferedChannel<T> {
    fn offer(&self, value: T) -> Result<(), T> {
        self.queue.try_put(value)
    }

    fn poll(&self) -> Option<T> {
        self.queue.poll()
    }

    fn offer_timeout(&self, value: T, patience: Duration) -> Result<(), T> {
        self.queue.put_timeout(value, patience)
    }

    fn poll_timeout(&self, patience: Duration) -> Option<T> {
        self.queue.poll_timeout(patience)
    }

    fn put_with(
        &self,
        value: T,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        self.queue.put_with(value, deadline, token)
    }

    fn take_with(&self, deadline: Deadline, token: Option<&CancelToken>) -> TransferOutcome<T> {
        self.queue.take_with(deadline, token)
    }

    fn try_send_batch(&self, items: &mut Vec<T>) -> usize {
        self.queue.try_put_batch(items)
    }

    fn try_recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        self.queue.try_take_batch(out, max)
    }
}

/// A published-but-unresolved buffered transfer: the poll-mode stand-in
/// for a thread blocked in [`TransferQueue::put`] (ring full) or
/// [`TransferQueue::take`] (ring empty).
///
/// Unlike the dual structures' permits, which stand for a *linked node*,
/// a buffered permit stands for an entry on the queue's space/item wait
/// list; each poll re-attempts the ring operation and (re-)registers as
/// needed. Dropping an unresolved permit retracts the entry; a producer's
/// item is dropped with it.
#[derive(Debug)]
pub struct BufferedPermit<T: Send> {
    channel: Arc<BufferedChannel<T>>,
    entry: Option<Arc<WaitSlot<()>>>,
    /// `Some` while a producer-side permit still owns its unsent item.
    item: Option<T>,
    producer: bool,
    done: bool,
}

// The permit only ever moves its fields by value (no self-referential
// state, no pin projection into `item`), so it is unconditionally Unpin —
// the `PendingTransfer` supertrait the futures layer relies on.
impl<T: Send> Unpin for BufferedPermit<T> {}

impl<T: Send> BufferedPermit<T> {
    fn waiters(&self) -> &WaiterQueue {
        if self.producer {
            &self.channel.queue.space_waiters
        } else {
            &self.channel.queue.item_waiters
        }
    }

    /// Withdraws a still-live wait-list entry (cancel-or-pass-on). Used on
    /// drop: the permit never consumed the awaited condition, so a
    /// notification that landed in its slot is handed to the next waiter.
    fn release_entry(&mut self) {
        if let Some(entry) = self.entry.take() {
            self.waiters().retract(&entry);
        }
    }

    /// Unlinks the entry after the ring operation succeeded. A matched
    /// entry's notification was just converted into that operation, so it
    /// is consumed (plain remove); a still-waiting entry is retracted,
    /// passing on any notification that races in.
    fn finish_entry(&mut self) {
        if let Some(entry) = self.entry.take() {
            if entry.is_waiting() {
                self.waiters().retract(&entry);
            } else {
                self.waiters().remove(&entry);
            }
        }
    }
}

impl<T: Send> PendingTransfer<T> for BufferedPermit<T> {
    fn poll_transfer(
        &mut self,
        waker: &Waker,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> Poll<TransferOutcome<T>> {
        assert!(!self.done, "permit polled after resolving");
        let queue = &self.channel.queue;
        loop {
            // Re-attempt the operation first: a wakeup (or a spurious
            // poll) means the condition may now hold. The `_as_waiter`
            // variants skip the public paths' defer-to-waiters check —
            // this permit is (or is about to become) the registered
            // waiter those paths defer to.
            if self.producer {
                let value = self.item.take().expect("producer permit owns its item");
                match queue.try_put_as_waiter(value) {
                    Ok(()) => {
                        self.finish_entry();
                        self.done = true;
                        return Poll::Ready(TransferOutcome::Transferred(None));
                    }
                    Err(back) => self.item = Some(back),
                }
            } else if let Some(v) = queue.poll_as_waiter() {
                self.finish_entry();
                self.done = true;
                return Poll::Ready(TransferOutcome::Transferred(Some(v)));
            }
            if self.entry.as_ref().is_none_or(|e| !e.is_waiting()) {
                // (Re-)register, then loop to re-check the condition —
                // the Dekker pattern (see `waiters`), with the re-check
                // being the try_put/poll above. A spent (notified) entry
                // is replaced *before* it is removed so the wait-list
                // count never dips to zero mid-handoff (no barge window).
                let fresh = self.waiters().register();
                fence(Ordering::SeqCst);
                if let Some(old) = self.entry.replace(fresh) {
                    self.waiters().remove(&old);
                }
                continue;
            }
            let entry = self.entry.as_ref().expect("registered above");
            match entry.poll_outcome(waker, deadline, token) {
                Poll::Ready(WaitOutcome::Matched(_)) => {
                    // Leave the entry registered while we retry: fresh
                    // arrivals keep deferring until our retry lands (or
                    // the re-arm above replaces the spent entry).
                }
                Poll::Ready(verdict) => {
                    // Our entry is terminally CANCELLED: physical
                    // removal only (retract would pass a wakeup on).
                    let entry = self.entry.take().expect("entry present");
                    self.waiters().remove(&entry);
                    self.done = true;
                    let item = self.item.take();
                    return Poll::Ready(match verdict {
                        WaitOutcome::TimedOut => TransferOutcome::Timeout(item),
                        WaitOutcome::Cancelled => TransferOutcome::Cancelled(item),
                        WaitOutcome::Matched(_) => unreachable!("handled above"),
                    });
                }
                Poll::Pending => return Poll::Pending,
            }
        }
    }
}

impl<T: Send> Drop for BufferedPermit<T> {
    fn drop(&mut self) {
        if !self.done {
            self.release_entry();
        }
    }
}

/// Poll-mode transfers over the buffered semantics: `Some(v)` buffers the
/// item (pending only when a bounded ring is full), `None` receives
/// (pending when nothing is buffered). This is what `synq-async` builds
/// its bounded channel futures from.
impl<T: Send> PollTransferer<T> for BufferedChannel<T> {
    type Permit = BufferedPermit<T>;

    fn start_transfer(this: &Arc<Self>, item: Option<T>) -> StartTransfer<T, Self::Permit> {
        match item {
            Some(value) => match this.queue.try_put(value) {
                Ok(()) => StartTransfer::Complete(TransferOutcome::Transferred(None)),
                Err(back) => StartTransfer::Pending(BufferedPermit {
                    channel: Arc::clone(this),
                    entry: None,
                    item: Some(back),
                    producer: true,
                    done: false,
                }),
            },
            None => match this.queue.poll() {
                Some(v) => StartTransfer::Complete(TransferOutcome::Transferred(Some(v))),
                None => StartTransfer::Pending(BufferedPermit {
                    channel: Arc::clone(this),
                    entry: None,
                    item: None,
                    producer: false,
                    done: false,
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn async_put_buffers_fifo() {
        let q = TransferQueue::new();
        assert!(q.is_empty());
        q.put(1);
        q.put(2);
        q.put(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.take(), 1);
        assert_eq!(q.take(), 2);
        assert_eq!(q.take(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn poll_on_empty_fails() {
        let q: TransferQueue<u8> = TransferQueue::new();
        assert_eq!(q.poll(), None);
    }

    #[test]
    fn transfer_blocks_until_taken() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = Arc::new(TransferQueue::new());
        let returned = Arc::new(AtomicBool::new(false));
        let q2 = Arc::clone(&q);
        let r2 = Arc::clone(&returned);
        let t = thread::spawn(move || {
            q2.transfer(9u32);
            r2.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!returned.load(Ordering::SeqCst), "transfer returned early");
        assert_eq!(q.take(), 9);
        t.join().unwrap();
        assert!(returned.load(Ordering::SeqCst));
    }

    #[test]
    fn put_does_not_block() {
        let q: TransferQueue<u32> = TransferQueue::new();
        // No consumer exists; put must return.
        for i in 0..100 {
            q.put(i);
        }
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn try_transfer_needs_waiting_consumer() {
        let q = Arc::new(TransferQueue::new());
        assert_eq!(q.try_transfer(1), Err(1));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        let mut v = 5u32;
        loop {
            match q.try_transfer(v) {
                Ok(()) => break,
                Err(back) => {
                    v = back;
                    thread::yield_now();
                }
            }
        }
        assert_eq!(t.join().unwrap(), 5);
    }

    #[test]
    fn transfer_timeout_returns_item() {
        let q: TransferQueue<String> = TransferQueue::new();
        let back = q
            .transfer_timeout("x".into(), Duration::from_millis(15))
            .unwrap_err();
        assert_eq!(back, "x");
        // The cancelled sync node must not count as buffered data.
        assert_eq!(q.poll(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn consumers_wake_for_async_puts() {
        let q = Arc::new(TransferQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        thread::sleep(Duration::from_millis(20));
        q.put(77u32);
        assert_eq!(t.join().unwrap(), 77);
    }

    #[test]
    fn mixed_sync_async_ordering() {
        let q = Arc::new(TransferQueue::new());
        q.put(1); // buffered
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.transfer(2)); // waits behind it
        while q.len() < 2 {
            thread::yield_now();
        }
        assert_eq!(q.take(), 1);
        assert_eq!(q.take(), 2);
        t.join().unwrap();
    }

    #[test]
    fn cancellation_of_waiting_transfer() {
        let q: Arc<TransferQueue<u32>> = Arc::new(TransferQueue::new());
        let token = CancelToken::new();
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.transfer_with(4, Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(Some(4)) => {}
            other => panic!("expected Cancelled(4), got {other:?}"),
        }
    }

    #[test]
    fn values_conserved_mixed_stress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        const PRODUCERS: usize = 4;
        const PER: usize = 400;
        let q = Arc::new(TransferQueue::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    let v = p * PER + i;
                    if i % 2 == 0 {
                        q.put(v);
                    } else {
                        q.transfer(v);
                    }
                }
            }));
        }
        let sum = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                thread::spawn(move || {
                    for _ in 0..PER {
                        sum.fetch_add(q.take(), Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (0..PRODUCERS * PER).sum());
        assert!(q.is_empty());
    }

    #[test]
    fn waiting_consumer_introspection() {
        let q: Arc<TransferQueue<u32>> = Arc::new(TransferQueue::new());
        assert!(!q.has_waiting_consumer());
        assert_eq!(q.waiting_consumer_count(), 0);
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        while !q.has_waiting_consumer() {
            thread::yield_now();
        }
        assert_eq!(q.waiting_consumer_count(), 1);
        q.put(5);
        assert_eq!(t.join().unwrap(), 5);
        assert!(!q.has_waiting_consumer());
    }

    #[test]
    fn transferer_impl_mirrors_fair_synchronous_queue() {
        use synq::{SyncChannel, TimedSyncChannel};
        let q: Arc<TransferQueue<u32>> = Arc::new(TransferQueue::new());
        // Channel-trait view: offer fails with nobody waiting (synchronous
        // semantics), even though `put` (async) would succeed.
        assert_eq!(q.offer(1), Err(1));
        assert_eq!(TimedSyncChannel::poll(&*q), None);
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || SyncChannel::take(&*q2));
        SyncChannel::put(&*q, 9); // trait put == synchronous transfer
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn works_as_executor_channel() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use synq_executor::ThreadPool;
        let pool = ThreadPool::cached(Arc::new(TransferQueue::new()));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn drop_frees_buffered_items() {
        static DROPS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        {
            let q = TransferQueue::new();
            for _ in 0..7 {
                q.put(D);
            }
            drop(q.take());
        }
        assert_eq!(DROPS.load(std::sync::atomic::Ordering::SeqCst), 7);
    }

    // ------------------------------------------------------ bounded mode

    #[test]
    fn bounded_put_poll_fifo() {
        let q = TransferQueue::bounded(4);
        assert_eq!(q.capacity(), Some(4));
        for i in 0..4 {
            assert_eq!(q.try_put(i), Ok(()));
        }
        assert_eq!(q.try_put(99), Err(99));
        for i in 0..4 {
            assert_eq!(q.poll(), Some(i));
        }
        assert_eq!(q.poll(), None);
    }

    #[test]
    fn bounded_put_blocks_until_space() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = Arc::new(TransferQueue::bounded(2));
        q.put(1u32);
        q.put(2);
        let entered = Arc::new(AtomicBool::new(false));
        let q2 = Arc::clone(&q);
        let e2 = Arc::clone(&entered);
        let t = thread::spawn(move || {
            e2.store(true, Ordering::SeqCst);
            q2.put(3); // ring full: must wait
        });
        while !entered.load(Ordering::SeqCst) {
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 2, "third put must not have landed");
        assert_eq!(q.take(), 1); // frees a slot; wakes the producer
        t.join().unwrap();
        assert_eq!(q.take(), 2);
        assert_eq!(q.take(), 3);
    }

    #[test]
    fn bounded_take_blocks_until_put() {
        let q: Arc<TransferQueue<u32>> = Arc::new(TransferQueue::bounded(4));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        thread::sleep(Duration::from_millis(20));
        q.put(42);
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn bounded_put_timeout_returns_item() {
        let q = TransferQueue::bounded(2);
        q.put("a".to_string());
        q.put("b".to_string());
        let back = q
            .put_timeout("c".to_string(), Duration::from_millis(15))
            .unwrap_err();
        assert_eq!(back, "c");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn try_put_defers_to_registered_space_waiter() {
        // White-box no-barge check: while any producer is registered on
        // the space list (as a woken waiter is, mid-handoff), a fresh
        // try_put must fail even though the ring has room.
        let q: TransferQueue<u32> = TransferQueue::bounded(4);
        q.put(1);
        let w = q.space_waiters.register();
        assert_eq!(q.try_put(2), Err(2), "fresh arrival must defer");
        q.space_waiters.retract(&w);
        assert_eq!(q.try_put(2), Ok(()));
        assert_eq!(q.poll(), Some(1));
        assert_eq!(q.poll(), Some(2));
    }

    #[test]
    fn poll_defers_to_registered_item_waiter() {
        // Symmetric consumer-side check: a buffered item already spoken
        // for by a registered consumer is not stolen by a fresh poll.
        let q: TransferQueue<u32> = TransferQueue::bounded(4);
        q.put(7);
        let w = q.item_waiters.register();
        assert_eq!(q.poll(), None, "item is spoken for");
        q.item_waiters.retract(&w);
        assert_eq!(q.poll(), Some(7));
    }

    #[test]
    fn woken_producer_is_not_barged_and_wakes_promptly() {
        // Regression for the ~1 s buffered-mode wakeup tails (PR 9's
        // histograms): try_put thieves hammering a full ring while a
        // blocked producer is woken must never steal the freed slot,
        // and the handoff must complete well under the old tail.
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let q = Arc::new(TransferQueue::bounded(2));
        q.put(0u32); // bounded(2) is the true minimum ring size
        q.put(5);
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.put(1)); // full: registers + parks
        while q.space_waiters.hint() == 0 {
            thread::yield_now();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stolen = Arc::new(AtomicUsize::new(0));
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                let stolen = Arc::clone(&stolen);
                thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        if q.try_put(99).is_ok() {
                            stolen.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(10)); // let the storm build
        let start = Instant::now();
        assert_eq!(q.take(), 0); // frees a slot; wakes the waiter
        waiter.join().unwrap();
        let wake = start.elapsed();
        stop.store(true, Ordering::SeqCst);
        for t in thieves {
            t.join().unwrap();
        }
        assert_eq!(
            stolen.load(Ordering::SeqCst),
            0,
            "try_put barged past a registered waiter"
        );
        assert!(
            wake < Duration::from_millis(500),
            "buffered wakeup took {wake:?}, exceeding the regression bound"
        );
        assert_eq!(q.take(), 5);
        assert_eq!(q.take(), 1);
    }

    #[test]
    fn bounded_transfer_rendezvouses_and_take_prefers_ring() {
        // Regression for the len/ordering contract: len counts ring items
        // AND waiting sync transfers; take drains the ring first.
        let q = Arc::new(TransferQueue::bounded(4));
        q.put(10u32);
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.transfer(20));
        while q.len() < 2 {
            thread::yield_now();
        }
        assert_eq!(q.len(), 2, "one ring item + one waiting transfer");
        assert_eq!(q.take(), 10, "ring items drain before sync transfers");
        assert_eq!(q.take(), 20);
        t.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_try_transfer_always_fails() {
        let q = Arc::new(TransferQueue::bounded(4));
        assert_eq!(q.try_transfer(1u32), Err(1));
        // Even with a waiting consumer: bounded consumers wait on the item
        // list, never as linked reservations.
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        while q.waiting_consumer_count() == 0 {
            thread::yield_now();
        }
        assert_eq!(q.try_transfer(2u32), Err(2));
        q.put(3);
        assert_eq!(t.join().unwrap(), 3);
    }

    #[test]
    fn bounded_transfer_timeout_cleans_counter() {
        let q: TransferQueue<u32> = TransferQueue::bounded(2);
        assert!(q.transfer_timeout(7, Duration::from_millis(10)).is_err());
        assert_eq!(q.len(), 0, "cancelled transfer must not count");
        assert_eq!(q.poll(), None);
    }

    #[test]
    fn bounded_batch_partial_progress() {
        let q = TransferQueue::bounded(4);
        let mut items: Vec<u32> = (0..6).collect();
        assert_eq!(q.try_put_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5], "overflow stays in the vector");
        let mut out = Vec::new();
        assert_eq!(q.try_take_batch(&mut out, 10), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.try_take_batch(&mut out, 10), 0);
    }

    #[test]
    fn bounded_take_batch_blocks_for_first_item() {
        let q: Arc<TransferQueue<u32>> = Arc::new(TransferQueue::bounded(8));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || {
            let mut out = Vec::new();
            let n = q2.take_batch(&mut out, 4);
            (n, out)
        });
        thread::sleep(Duration::from_millis(20));
        let mut items = vec![1, 2, 3];
        q.put_batch(&mut items);
        let (n, out) = t.join().unwrap();
        assert!(n >= 1, "take_batch must deliver at least one item");
        assert_eq!(out[0], 1);
    }

    #[test]
    fn bounded_batch_drains_sync_transfers_too() {
        let q = Arc::new(TransferQueue::bounded(4));
        q.put(1u32);
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.transfer(2));
        while q.len() < 2 {
            thread::yield_now();
        }
        let mut out = Vec::new();
        assert_eq!(q.try_take_batch(&mut out, 8), 2);
        assert_eq!(out, vec![1, 2]);
        t.join().unwrap();
    }

    #[test]
    fn buffered_channel_trait_semantics() {
        use synq::{SyncChannel, TimedSyncChannel};
        let ch = BufferedChannel::bounded(4);
        // offer succeeds with no consumer: buffered, not synchronous.
        assert_eq!(ch.offer(1u32), Ok(()));
        ch.put(2);
        assert_eq!(TimedSyncChannel::poll(&ch), Some(1));
        assert_eq!(SyncChannel::take(&ch), 2);
        let mut batch = vec![3, 4, 5, 6];
        assert_eq!(ch.try_send_batch(&mut batch), 4);
        let mut out = Vec::new();
        assert_eq!(ch.recv_batch(&mut out, 2), 2);
        assert_eq!(out, vec![3, 4]);
        assert_eq!(ch.try_recv_batch(&mut out, 8), 2);
        assert_eq!(out, vec![3, 4, 5, 6]);
    }

    fn counting_waker() -> (Waker, Arc<AtomicUsize>) {
        struct W(Arc<AtomicUsize>);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let hits = Arc::new(AtomicUsize::new(0));
        (Waker::from(Arc::new(W(Arc::clone(&hits)))), hits)
    }

    #[test]
    fn buffered_permit_recv_wakes_on_put() {
        let ch: Arc<BufferedChannel<u32>> = Arc::new(BufferedChannel::bounded(4));
        let StartTransfer::Pending(mut permit) = BufferedChannel::start_transfer(&ch, None) else {
            panic!("empty channel must pend the receiver");
        };
        let (waker, hits) = counting_waker();
        assert!(permit
            .poll_transfer(&waker, Deadline::Never, None)
            .is_pending());
        ch.queue().put(5);
        assert!(hits.load(Ordering::SeqCst) >= 1, "put must wake the task");
        match permit.poll_transfer(&waker, Deadline::Never, None) {
            Poll::Ready(TransferOutcome::Transferred(Some(5))) => {}
            other => panic!("expected the item, got {other:?}"),
        }
    }

    #[test]
    fn buffered_permit_send_wakes_on_space() {
        let ch: Arc<BufferedChannel<u32>> = Arc::new(BufferedChannel::bounded(2));
        ch.queue().put(1);
        ch.queue().put(2);
        let StartTransfer::Pending(mut permit) = BufferedChannel::start_transfer(&ch, Some(3))
        else {
            panic!("full ring must pend the sender");
        };
        let (waker, hits) = counting_waker();
        assert!(permit
            .poll_transfer(&waker, Deadline::Never, None)
            .is_pending());
        assert_eq!(ch.queue().take(), 1);
        assert!(hits.load(Ordering::SeqCst) >= 1, "take must wake the task");
        match permit.poll_transfer(&waker, Deadline::Never, None) {
            Poll::Ready(TransferOutcome::Transferred(None)) => {}
            other => panic!("expected the send to land, got {other:?}"),
        }
        assert_eq!(ch.queue().take(), 2);
        assert_eq!(ch.queue().take(), 3);
    }

    #[test]
    fn buffered_permit_timeout_returns_item() {
        let ch: Arc<BufferedChannel<String>> = Arc::new(BufferedChannel::bounded(2));
        ch.queue().put("a".into());
        ch.queue().put("b".into());
        let StartTransfer::Pending(mut permit) =
            BufferedChannel::start_transfer(&ch, Some("c".to_string()))
        else {
            panic!("full ring must pend the sender");
        };
        let (waker, _) = counting_waker();
        match permit.poll_transfer(&waker, Deadline::Now, None) {
            Poll::Ready(TransferOutcome::Timeout(Some(s))) => assert_eq!(s, "c"),
            other => panic!("expected Timeout with the item back, got {other:?}"),
        }
        assert_eq!(ch.queue().len(), 2);
    }

    #[test]
    fn buffered_permit_drop_retracts_entry() {
        let ch: Arc<BufferedChannel<u32>> = Arc::new(BufferedChannel::bounded(4));
        let StartTransfer::Pending(mut permit) = BufferedChannel::start_transfer(&ch, None) else {
            panic!("empty channel must pend the receiver");
        };
        let (waker, _) = counting_waker();
        assert!(permit
            .poll_transfer(&waker, Deadline::Never, None)
            .is_pending());
        assert_eq!(ch.queue().waiting_consumer_count(), 1);
        drop(permit);
        assert_eq!(ch.queue().waiting_consumer_count(), 0);
    }

    #[test]
    fn bounded_values_conserved_mixed_stress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        const PRODUCERS: usize = 4;
        const PER: usize = 400;
        let q = Arc::new(TransferQueue::bounded(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    let v = p * PER + i;
                    if i % 4 == 0 {
                        q.transfer(v); // rendezvous path
                    } else {
                        q.put(v); // ring path (blocking on full)
                    }
                }
            }));
        }
        let sum = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                thread::spawn(move || {
                    for _ in 0..PER {
                        sum.fetch_add(q.take(), Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (0..PRODUCERS * PER).sum());
        assert!(q.is_empty());
    }

    #[test]
    fn hazard_backend_async_fifo() {
        use synq_reclaim::Hazard;
        let q: TransferQueue<u32, Hazard> = TransferQueue::new_in();
        q.put(1);
        q.put(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.take(), 1);
        assert_eq!(q.take(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn hazard_backend_sync_rendezvous() {
        use synq_reclaim::Hazard;
        let q: Arc<TransferQueue<u32, Hazard>> = Arc::new(TransferQueue::new_in());
        let p = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.transfer(42))
        };
        assert_eq!(q.take(), 42);
        p.join().unwrap();
    }

    #[test]
    fn hazard_backend_values_conserved_under_stress() {
        use synq_reclaim::Hazard;
        const PRODUCERS: usize = 4;
        const PER: usize = 250;
        let q: Arc<TransferQueue<usize, Hazard>> = Arc::new(TransferQueue::new_in());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    let v = p * PER + i;
                    if i % 3 == 0 {
                        q.transfer(v);
                    } else {
                        q.put(v);
                    }
                }
            }));
        }
        let sum = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                thread::spawn(move || {
                    for _ in 0..PER {
                        sum.fetch_add(q.take(), Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (0..PRODUCERS * PER).sum());
        assert!(q.is_empty());
    }

    #[test]
    fn hazard_backend_timeout_storm_absorbs_cancelled() {
        use std::time::Duration;
        use synq_reclaim::Hazard;
        let q: TransferQueue<u32, Hazard> = TransferQueue::new_in();
        for _ in 0..64 {
            assert!(q.poll_timeout(Duration::from_micros(1)).is_none());
        }
        // Cancelled reservations must not wedge the queue.
        q.put(9);
        assert_eq!(q.take(), 9);
        assert!(q.is_empty());
    }
}
