//! A bounded MPMC ring buffer with cycle-versioned slots.
//!
//! This is the array-backed fast path in front of the rendezvous machinery
//! (DESIGN §4.11): SCQ-style sequence numbers (Nikolaev 2019, after
//! Vyukov's bounded MPMC queue) give each slot a *cycle* version so the
//! ABA problem is handled arithmetically — no epochs, no node allocation,
//! no reclamation. A slot at index `i & mask` carries a sequence word that
//! encodes both its cycle and its occupancy:
//!
//! ```text
//! seq == pos            slot free for the push at position `pos`
//! seq == pos + 1        slot holds the item pushed at position `pos`
//! seq == pos + capacity slot recycled: free for the *next* cycle's push
//! ```
//!
//! Push claims a position with one tail CAS, writes the item, then
//! publishes `seq = pos + 1`; pop claims with one head CAS, reads, then
//! releases the slot to the next cycle with `seq = pos + capacity`.
//! Because positions grow monotonically and `capacity` is a power of two,
//! a stale thread can never mistake an old cycle's slot state for the
//! current one (the classic ABA hazard of array queues).
//!
//! The batch variants reserve `k` contiguous positions with a *single*
//! head/tail CAS and then publish the `k` slots individually, amortizing
//! the contended-word update over the whole batch — the effect the
//! `ring.tail_updates` / `ring.push_items` probe ratio makes visible.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use synq_obs::probe;
use synq_primitives::CachePadded;

struct Slot<T> {
    /// Cycle/occupancy word (see the module docs).
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC FIFO with per-slot cycle versioning.
///
/// Capacity is rounded up to a power of two (minimum 2). All operations
/// are non-blocking (`try_*`); the blocking bounded mode of
/// [`TransferQueue`](crate::TransferQueue) layers waiters on top.
///
/// # Examples
///
/// ```
/// use synq_transfer::RingBuffer;
///
/// let r = RingBuffer::new(4);
/// assert_eq!(r.capacity(), 4);
/// assert_eq!(r.try_push(1), Ok(()));
/// assert_eq!(r.try_push(2), Ok(()));
/// assert_eq!(r.try_pop(), Some(1));
/// assert_eq!(r.try_pop(), Some(2));
/// assert_eq!(r.try_pop(), None);
/// ```
pub struct RingBuffer<T> {
    /// Next position to pop. Padded: producers never write it.
    head: CachePadded<AtomicUsize>,
    /// Next position to push. Padded: consumers never write it.
    tail: CachePadded<AtomicUsize>,
    mask: usize,
    slots: Box<[Slot<T>]>,
}

// SAFETY: the seq protocol hands each slot's cell to exactly one thread at
// a time (the claiming pusher, then the claiming popper), so only `T: Send`
// is required.
unsafe impl<T: Send> Send for RingBuffer<T> {}
unsafe impl<T: Send> Sync for RingBuffer<T> {}

impl<T> RingBuffer<T> {
    /// Creates a ring with at least `capacity` slots, rounded up to a
    /// power of two (minimum 2 — the seq scheme needs one bit of cycle
    /// distance between "pushed this cycle" and "free next cycle").
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingBuffer {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            mask: capacity - 1,
            slots,
        }
    }

    /// Number of slots (always a power of two ≥ 2).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Occupancy estimate. Exact when quiesced; racy loads otherwise, but
    /// always within `0..=capacity`.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::SeqCst);
        let head = self.head.load(Ordering::SeqCst);
        tail.wrapping_sub(head).min(self.capacity())
    }

    /// True when no item is buffered (same caveats as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when every slot is occupied (same caveats as [`Self::len`]).
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }
}

impl<T: Send> RingBuffer<T> {
    /// Pushes `value` unless the ring is full, in which case it is handed
    /// back. Lock-free; one tail CAS per success.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(tail) as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the tail CAS gave us exclusive ownership
                        // of this slot for position `tail`.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        probe!(RingTailUpdates);
                        probe!(RingPushItems);
                        return Ok(());
                    }
                    Err(current) => {
                        probe!(RingCasFails);
                        tail = current;
                    }
                }
            } else if dif < 0 {
                // The slot still holds an item from `capacity` positions
                // ago: the ring is full.
                return Err(value);
            } else {
                // Another producer claimed this position; chase the tail.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest item, or `None` when the ring is empty (or the
    /// front slot's producer has claimed but not yet published — the
    /// transient Vyukov "stalled producer" case, reported as empty).
    pub fn try_pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(head.wrapping_add(1)) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the head CAS gave us exclusive ownership
                        // of the published item at position `head`.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(head.wrapping_add(self.capacity()), Ordering::Release);
                        probe!(RingHeadUpdates);
                        probe!(RingPopItems);
                        return Some(value);
                    }
                    Err(current) => {
                        probe!(RingCasFails);
                        head = current;
                    }
                }
            } else if dif < 0 {
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Pushes the longest possible prefix of `items` (bounded by the
    /// contiguous free slots observed), removing pushed items from the
    /// front of the vector. Returns how many were pushed. The whole
    /// prefix is reserved with a **single** tail CAS; the per-slot
    /// sequence words are then published in order, so consumers can start
    /// draining the batch before the producer finishes writing it.
    pub fn try_push_batch(&self, items: &mut Vec<T>) -> usize {
        let want = items.len().min(self.capacity());
        if want == 0 {
            return 0;
        }
        loop {
            let tail = self.tail.load(Ordering::Relaxed);
            // Longest run of free slots at [tail, tail + want).
            let mut k = 0;
            let mut stale = false;
            while k < want {
                let pos = tail.wrapping_add(k);
                let seq = self.slots[pos & self.mask].seq.load(Ordering::Acquire);
                let dif = seq.wrapping_sub(pos) as isize;
                if dif == 0 {
                    k += 1;
                } else if dif < 0 {
                    break; // occupied: ring full past here
                } else {
                    stale = true; // another producer moved the tail
                    break;
                }
            }
            if stale {
                continue;
            }
            if k == 0 {
                return 0; // full
            }
            match self.tail.compare_exchange(
                tail,
                tail.wrapping_add(k),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // SAFETY: the k-slot reservation is exclusively ours —
                    // producers claim positions only through the tail CAS
                    // we just won, and a consumer touches a slot only once
                    // its seq says "pushed", which we publish below.
                    for (offset, value) in items.drain(..k).enumerate() {
                        let pos = tail.wrapping_add(offset);
                        let slot = &self.slots[pos & self.mask];
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                    }
                    probe!(RingTailUpdates);
                    probe!(RingPushItems, k);
                    return k;
                }
                Err(_) => {
                    probe!(RingCasFails);
                    continue;
                }
            }
        }
    }

    /// Pops up to `max` items into `out` (bounded by the contiguous
    /// published items observed), returning how many arrived. The whole
    /// run is claimed with a **single** head CAS.
    pub fn try_pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let want = max.min(self.capacity());
        if want == 0 {
            return 0;
        }
        loop {
            let head = self.head.load(Ordering::Relaxed);
            let mut k = 0;
            let mut stale = false;
            while k < want {
                let pos = head.wrapping_add(k);
                let seq = self.slots[pos & self.mask].seq.load(Ordering::Acquire);
                let dif = seq.wrapping_sub(pos.wrapping_add(1)) as isize;
                if dif == 0 {
                    k += 1;
                } else if dif < 0 {
                    break; // not yet published: empty past here
                } else {
                    stale = true; // another consumer moved the head
                    break;
                }
            }
            if stale {
                continue;
            }
            if k == 0 {
                return 0; // empty
            }
            match self.head.compare_exchange(
                head,
                head.wrapping_add(k),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    out.reserve(k);
                    for offset in 0..k {
                        let pos = head.wrapping_add(offset);
                        let slot = &self.slots[pos & self.mask];
                        // SAFETY: the head CAS claimed these k published
                        // items exclusively.
                        out.push(unsafe { (*slot.value.get()).assume_init_read() });
                        slot.seq
                            .store(pos.wrapping_add(self.capacity()), Ordering::Release);
                    }
                    probe!(RingHeadUpdates);
                    probe!(RingPopItems, k);
                    return k;
                }
                Err(_) => {
                    probe!(RingCasFails);
                    continue;
                }
            }
        }
    }
}

impl<T> Drop for RingBuffer<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the occupied positions and drop in place.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut pos = head;
        while pos != tail {
            let slot = &mut self.slots[pos & self.mask];
            if *slot.seq.get_mut() == pos.wrapping_add(1) {
                // SAFETY: seq says "pushed, not popped"; we are the only
                // thread left.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
            pos = pos.wrapping_add(1);
        }
    }
}

impl<T> std::fmt::Debug for RingBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingBuffer")
            .field("capacity", &(self.mask + 1))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(RingBuffer::<u8>::new(0).capacity(), 2);
        assert_eq!(RingBuffer::<u8>::new(1).capacity(), 2);
        assert_eq!(RingBuffer::<u8>::new(3).capacity(), 4);
        assert_eq!(RingBuffer::<u8>::new(64).capacity(), 64);
        assert_eq!(RingBuffer::<u8>::new(65).capacity(), 128);
    }

    #[test]
    fn fifo_and_full_empty_edges() {
        let r = RingBuffer::new(4);
        assert!(r.is_empty() && !r.is_full());
        for i in 0..4 {
            assert_eq!(r.try_push(i), Ok(()));
        }
        assert!(r.is_full());
        assert_eq!(r.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(r.try_pop(), Some(i));
        }
        assert_eq!(r.try_pop(), None);
    }

    #[test]
    fn sequence_reuse_across_many_cycles() {
        // Capacity 2 forces a cycle rollover every other push: position
        // arithmetic must keep slot states unambiguous across reuse.
        let r = RingBuffer::new(2);
        for round in 0..1_000u64 {
            assert_eq!(r.try_push(round), Ok(()));
            assert_eq!(r.try_push(round + 1_000_000), Ok(()));
            assert_eq!(r.try_push(round), Err(round), "round {round} not full");
            assert_eq!(r.try_pop(), Some(round));
            assert_eq!(r.try_pop(), Some(round + 1_000_000));
            assert_eq!(r.try_pop(), None, "round {round} not empty");
        }
    }

    #[test]
    fn batch_push_pop_roundtrip() {
        let r = RingBuffer::new(8);
        let mut items: Vec<u32> = (0..5).collect();
        assert_eq!(r.try_push_batch(&mut items), 5);
        assert!(items.is_empty());
        // Partial: only 3 slots left.
        let mut more: Vec<u32> = (5..11).collect();
        assert_eq!(r.try_push_batch(&mut more), 3);
        assert_eq!(more, vec![8, 9, 10]);
        let mut out = Vec::new();
        assert_eq!(r.try_pop_batch(&mut out, 6), 6);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.try_pop_batch(&mut out, 100), 2);
        assert_eq!(r.try_pop_batch(&mut out, 100), 0);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn drop_releases_buffered_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let r = RingBuffer::new(4);
            // Wrap once so head/tail are mid-cycle, then leave two behind.
            for _ in 0..3 {
                r.try_push(D).ok();
            }
            drop(r.try_pop());
            drop(r.try_pop());
            r.try_push(D).ok();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn concurrent_mpmc_conserves_sum() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let iters = if cfg!(miri) { 200u64 } else { 20_000 };
        let r = Arc::new(RingBuffer::new(16));
        let sum = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..2u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..iters {
                    let mut v = p * iters + i;
                    loop {
                        match r.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        for _ in 0..2 {
            let r = Arc::clone(&r);
            let sum = Arc::clone(&sum);
            let popped = Arc::clone(&popped);
            handles.push(std::thread::spawn(move || loop {
                if popped.load(Ordering::SeqCst) >= 2 * iters {
                    break;
                }
                if let Some(v) = r.try_pop() {
                    sum.fetch_add(v, Ordering::SeqCst);
                    popped.fetch_add(1, Ordering::SeqCst);
                } else {
                    std::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expect: u64 = (0..2 * iters).sum();
        assert_eq!(sum.load(Ordering::SeqCst), expect);
    }
}
