//! Integration tests for the bounded ring fast path: batch
//! drop-conservation under arbitrary shapes (proptest), cycle wraparound
//! at minimal capacity, the ring-full → rendezvous-fallback mix, and a
//! miri-sized concurrent stress. This file is also the `synq-transfer`
//! leg of the CI miri job.

use proptest::prelude::*;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use synq::{SyncChannel, TimedSyncChannel};
use synq_transfer::{BufferedChannel, RingBuffer, TransferQueue};

/// A payload that tracks its own liveness: exactly one decrement per
/// construction, however many times it is moved between threads.
struct Payload {
    id: usize,
    live: Arc<AtomicIsize>,
}

impl Payload {
    fn new(id: usize, live: &Arc<AtomicIsize>) -> Self {
        live.fetch_add(1, Ordering::Relaxed);
        Payload {
            id,
            live: Arc::clone(live),
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Batch conservation: producers push batches with `try_send_batch`
/// (partial progress — refused items stay in the vector and are retried
/// or abandoned), consumers drain with `try_recv_batch`. Every id must be
/// delivered exactly once or still owned by its producer when it gives
/// up, and every payload must drop exactly once.
fn check_batch_conservation(
    channel: Arc<BufferedChannel<Payload>>,
    producers: usize,
    consumers: usize,
    per: usize,
    batch: usize,
) -> Result<(), TestCaseError> {
    let live = Arc::new(AtomicIsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));
    let received = Arc::new(Mutex::new(Vec::new()));
    let abandoned = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for p in 0..producers {
        let channel = Arc::clone(&channel);
        let live = Arc::clone(&live);
        let abandoned = Arc::clone(&abandoned);
        handles.push(thread::spawn(move || {
            let mut pending: Vec<Payload> = Vec::new();
            let mut next = 0;
            let mut stalls = 0;
            while next < per || !pending.is_empty() {
                while next < per && pending.len() < batch {
                    pending.push(Payload::new(p * per + next, &live));
                    next += 1;
                }
                let sent = channel.try_send_batch(&mut pending);
                if sent == 0 {
                    stalls += 1;
                    if stalls > 500 {
                        // Give up: the leftovers stay ours.
                        let mut ab = abandoned.lock().unwrap();
                        ab.extend(pending.drain(..).map(|pl| pl.id));
                        break;
                    }
                    thread::yield_now();
                } else {
                    stalls = 0;
                }
            }
        }));
    }
    let mut takers = Vec::new();
    for _ in 0..consumers {
        let channel = Arc::clone(&channel);
        let stop = Arc::clone(&stop);
        let received = Arc::clone(&received);
        takers.push(thread::spawn(move || {
            let mut out = Vec::new();
            loop {
                let got = channel.try_recv_batch(&mut out, batch);
                if got == 0 {
                    if stop.load(Ordering::Relaxed) == 1 {
                        break;
                    }
                    thread::yield_now();
                }
            }
            received
                .lock()
                .unwrap()
                .extend(out.drain(..).map(|pl| pl.id));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    for t in takers {
        t.join().unwrap();
    }
    // Consumers may all have exited between a producer's last publish and
    // the stop flag: drain the tail.
    let mut out = Vec::new();
    while channel.try_recv_batch(&mut out, batch) > 0 {}
    received
        .lock()
        .unwrap()
        .extend(out.drain(..).map(|pl| pl.id));

    let mut seen: Vec<usize> = received.lock().unwrap().clone();
    seen.extend(abandoned.lock().unwrap().iter().copied());
    seen.sort_unstable();
    seen.dedup();
    let expected: Vec<usize> = (0..producers * per).collect();
    prop_assert_eq!(
        seen,
        expected,
        "every item must be delivered once xor abandoned once"
    );
    prop_assert_eq!(live.load(Ordering::Relaxed), 0, "payload drop conservation");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(miri) { 4 } else { 12 }
    ))]

    /// Bounded channel: batch sends/receives conserve every payload
    /// across capacities, shapes, and batch sizes.
    #[test]
    fn bounded_batches_conserve_payloads(
        capacity in 2usize..=16,
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
        batch in 1usize..=9,
    ) {
        let ch = Arc::new(BufferedChannel::bounded(capacity));
        check_batch_conservation(ch, producers, consumers, per, batch)?;
    }

    /// The unbounded default impls satisfy the same contract (everything
    /// is accepted, so nothing is ever abandoned).
    #[test]
    fn unbounded_batches_conserve_payloads(
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
        batch in 1usize..=9,
    ) {
        let ch = Arc::new(BufferedChannel::unbounded());
        check_batch_conservation(ch, producers, consumers, per, batch)?;
    }
}

/// Sequence-version reuse: capacity 2 rolls the cycle over every other
/// operation, so thousands of operations cross thousands of cycle
/// boundaries — any confusion between "filled this cycle" and "free next
/// cycle" shows up as a lost or duplicated item.
#[test]
fn cycle_wraparound_at_minimal_capacity() {
    let q = TransferQueue::bounded(2);
    assert_eq!(q.capacity(), Some(2));
    let rounds = if cfg!(miri) { 200u64 } else { 5_000 };
    for round in 0..rounds {
        assert_eq!(q.try_put(round), Ok(()));
        assert_eq!(q.try_put(round + 1), Ok(()));
        assert_eq!(q.try_put(round + 2), Err(round + 2), "round {round}: full");
        assert_eq!(q.poll(), Some(round));
        assert_eq!(q.poll(), Some(round + 1));
        assert_eq!(q.poll(), None, "round {round}: empty");
    }
    // Same reuse pressure through the batch entry points.
    for round in 0..rounds {
        let mut items = vec![round, round + 1, round + 2];
        assert_eq!(q.try_put_batch(&mut items), 2);
        assert_eq!(items, vec![round + 2]);
        let mut out = Vec::new();
        assert_eq!(q.try_take_batch(&mut out, 4), 2);
        assert_eq!(out, vec![round, round + 1]);
    }
}

/// Ring-full → rendezvous fallback: a mixed workload where buffered puts
/// overflow a tiny ring (producers block on space) while synchronous
/// transfers rendezvous through the linked path, and everything is
/// conserved.
#[test]
fn ring_full_fallback_mixed_with_rendezvous() {
    const PRODUCERS: usize = 3;
    let per: usize = if cfg!(miri) { 40 } else { 400 };
    let q = Arc::new(TransferQueue::bounded(2));
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let q = Arc::clone(&q);
        handles.push(thread::spawn(move || {
            for i in 0..per {
                let v = p * per + i;
                if i % 3 == 0 {
                    q.transfer(v); // linked rendezvous
                } else {
                    q.put(v); // ring, blocking when full
                }
            }
        }));
    }
    let sum = Arc::new(AtomicUsize::new(0));
    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            thread::spawn(move || {
                for _ in 0..per {
                    sum.fetch_add(q.take(), Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for c in consumers {
        c.join().unwrap();
    }
    assert_eq!(sum.load(Ordering::Relaxed), (0..PRODUCERS * per).sum());
    assert!(q.is_empty());
    assert_eq!(q.len(), 0);
}

/// Regression (issue 6 satellite): `len`/`is_empty` must reflect ring
/// occupancy *and* waiting synchronous transfers, in both modes.
#[test]
fn len_counts_ring_and_waiting_transfers() {
    let q = Arc::new(TransferQueue::bounded(4));
    assert!(q.is_empty());
    q.put(1u32);
    q.put(2);
    assert_eq!(q.len(), 2, "ring occupancy");
    let q2 = Arc::clone(&q);
    let t = thread::spawn(move || q2.transfer(3));
    while q.len() < 3 {
        thread::yield_now();
    }
    assert_eq!(q.len(), 3, "ring + waiting sync transfer");
    assert!(!q.is_empty());
    assert_eq!(q.take(), 1);
    assert_eq!(q.take(), 2);
    assert_eq!(q.take(), 3);
    t.join().unwrap();
    assert!(q.is_empty());

    // A timed-out transfer must not linger in the count.
    assert!(q.transfer_timeout(9, Duration::from_millis(5)).is_err());
    assert_eq!(q.len(), 0);
}

/// Raw ring under concurrent mixed single/batch traffic (miri-sized).
#[test]
fn raw_ring_concurrent_batch_stress() {
    let iters: u64 = if cfg!(miri) { 100 } else { 10_000 };
    let ring = Arc::new(RingBuffer::new(8));
    let popped = Arc::new(AtomicUsize::new(0));
    let sum = Arc::new(AtomicUsize::new(0));
    let total = 2 * iters as usize;
    let mut handles = Vec::new();
    for p in 0..2u64 {
        let ring = Arc::clone(&ring);
        handles.push(thread::spawn(move || {
            let mut batch = Vec::new();
            let mut i = 0;
            while i < iters || !batch.is_empty() {
                while i < iters && batch.len() < 4 {
                    batch.push(p * iters + i);
                    i += 1;
                }
                if ring.try_push_batch(&mut batch) == 0 {
                    thread::yield_now();
                }
            }
        }));
    }
    for _ in 0..2 {
        let ring = Arc::clone(&ring);
        let popped = Arc::clone(&popped);
        let sum = Arc::clone(&sum);
        handles.push(thread::spawn(move || {
            let mut out = Vec::new();
            while popped.load(Ordering::SeqCst) < total {
                let got = ring.try_pop_batch(&mut out, 4);
                if got == 0 {
                    thread::yield_now();
                    continue;
                }
                popped.fetch_add(got, Ordering::SeqCst);
                for v in out.drain(..) {
                    sum.fetch_add(v as usize, Ordering::SeqCst);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        sum.load(Ordering::SeqCst),
        (0..2 * iters).sum::<u64>() as usize
    );
}

/// The trait-default batch impls on a purely synchronous structure:
/// send_batch delivers one rendezvous per item.
#[test]
fn default_batch_impls_on_synchronous_queue() {
    let q: Arc<synq::SyncDualQueue<u32>> = Arc::new(synq::SyncDualQueue::new());
    let q2 = Arc::clone(&q);
    let t = thread::spawn(move || {
        let mut out = Vec::new();
        let mut got = 0;
        while got < 3 {
            got += q2.recv_batch(&mut out, 3 - got);
        }
        out
    });
    let mut items = vec![1, 2, 3];
    q.send_batch(&mut items);
    assert!(items.is_empty());
    assert_eq!(t.join().unwrap(), vec![1, 2, 3]);
    // Non-blocking batch on an empty synchronous queue: nothing moves.
    let mut items = vec![9];
    assert_eq!(q.try_send_batch(&mut items), 0);
    assert_eq!(items, vec![9]);
    let mut out: Vec<u32> = Vec::new();
    assert_eq!(q.try_recv_batch(&mut out, 4), 0);
}
