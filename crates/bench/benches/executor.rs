//! Criterion version of Figure 6: per-task cost of a cached thread pool
//! whose core is the synchronous queue under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use synq_bench::{executor_ns_per_task, make_timed_job, TIMED_ALGOS};

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure6_executor");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &algo in TIMED_ALGOS {
        for submitters in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), submitters),
                &submitters,
                |b, &s| {
                    b.iter_custom(|iters| {
                        let tasks = (iters as usize).max(200);
                        let ch = make_timed_job(algo).expect("timed algo");
                        let ns = executor_ns_per_task(ch, s, tasks);
                        Duration::from_nanos((ns * iters as f64) as u64)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(executor, benches);
criterion_main!(executor);
