//! Criterion version of Figures 3–5: per-transfer cost of the synchronous
//! handoff for every algorithm at a small set of shapes. The full sweep
//! lives in the `figure3`–`figure5` binaries; this bench gives
//! statistically tracked numbers for regression detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use synq_bench::{handoff_ns_per_transfer, make_blocking, HandoffShape, BLOCKING_ALGOS};

fn bench_shape(c: &mut Criterion, group: &str, shape_of: fn(usize) -> HandoffShape, level: usize) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &algo in BLOCKING_ALGOS {
        g.bench_with_input(BenchmarkId::new(algo.name(), level), &level, |b, &l| {
            b.iter_custom(|iters| {
                let transfers = (iters as usize).max(200);
                let ns = handoff_ns_per_transfer(make_blocking(algo), shape_of(l), transfers);
                Duration::from_nanos((ns * iters as f64) as u64)
            })
        });
    }
    g.finish();
}

fn benches(c: &mut Criterion) {
    // Figure 3 (N:N) at 1 and 4 pairs; Figures 4/5 (1:N, N:1) at 4.
    bench_shape(c, "figure3_pairs", HandoffShape::pairs, 1);
    bench_shape(c, "figure3_pairs", HandoffShape::pairs, 4);
    bench_shape(c, "figure4_fan_out", HandoffShape::fan_out, 4);
    bench_shape(c, "figure5_fan_in", HandoffShape::fan_in, 4);
}

criterion_group!(handoff, benches);
criterion_main!(handoff);
