//! Criterion versions of the design-choice ablations (A1–A3):
//! spin budget, Java5 entry-lock fairness, and elimination arena size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use synq_bench::{handoff_ns_per_transfer, make_blocking, Algo, HandoffShape};

fn run(c: &mut Criterion, group: &str, algos: &[Algo], pairs: usize) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &algo in algos {
        g.bench_with_input(BenchmarkId::new(algo.name(), pairs), &pairs, |b, &p| {
            b.iter_custom(|iters| {
                let transfers = (iters as usize).max(200);
                let ns =
                    handoff_ns_per_transfer(make_blocking(algo), HandoffShape::pairs(p), transfers);
                Duration::from_nanos((ns * iters as f64) as u64)
            })
        });
    }
    g.finish();
}

fn benches(c: &mut Criterion) {
    run(
        c,
        "a1_spin",
        &[
            Algo::NewUnfairSpin(0),
            Algo::NewUnfair,
            Algo::NewUnfairSpin(320),
        ],
        4,
    );
    run(
        c,
        "a2_fair_lock",
        &[
            Algo::Java5Fair,
            Algo::Java5FairListsUnfairLock,
            Algo::Java5Unfair,
        ],
        4,
    );
    run(
        c,
        "a3_elimination",
        &[Algo::NewUnfair, Algo::NewElim(1), Algo::NewElim(4)],
        4,
    );
}

criterion_group!(ablation, benches);
criterion_main!(ablation);
