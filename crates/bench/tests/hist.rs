//! Integration tests for the tail-latency histogram: a sorted-reference
//! percentile oracle (property-based), a concurrent record + merge check,
//! and the empty/single-sample edge cases. The whole file is miri-clean —
//! the CI miri leg runs it with scaled-down case counts.

use proptest::prelude::*;
use std::sync::Arc;
use synq_bench::{Histogram, LatencySummary};

/// Exact percentile over a sorted sample set: the value at rank
/// `ceil(pct/100 * n)` (1-based), the same nearest-rank definition the
/// histogram approximates bucket-wise.
fn oracle_percentile(sorted: &[u64], pct: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The histogram reports a bucket's *upper* edge (clamped to the observed
/// min/max), so its percentile sits at or above the oracle, and — with
/// 7 precision bits — at most `oracle / 128 + 1` above it (`+1` absorbs
/// the floor in the bucket-width division).
fn assert_within_hdr_error(hist_p: u64, oracle_p: u64, pct_label: &str) {
    assert!(
        hist_p >= oracle_p,
        "{pct_label}: histogram {hist_p} below oracle {oracle_p}"
    );
    let bound = oracle_p / 128 + 1;
    assert!(
        hist_p - oracle_p <= bound,
        "{pct_label}: histogram {hist_p} exceeds oracle {oracle_p} by more \
         than {bound}"
    );
}

const PCTS: [(f64, &str); 5] = [
    (50.0, "p50"),
    (90.0, "p90"),
    (99.0, "p99"),
    (99.9, "p999"),
    (100.0, "max"),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 8 } else { 256 }))]

    /// Every percentile the histogram reports must sit within the HDR
    /// error envelope of the exact sorted-reference answer, across samples
    /// spanning the sub-bucket (exact) range and six decades above it.
    #[test]
    fn percentiles_match_sorted_reference_oracle(
        samples in proptest::collection::vec(
            prop_oneof![0u64..128, 128u64..10_000, 10_000u64..100_000_000],
            1..if cfg!(miri) { 64 } else { 512 },
        ),
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for (pct, label) in PCTS {
            let got = hist.value_at_percentile(pct).expect("non-empty");
            assert_within_hdr_error(got, oracle_percentile(&sorted, pct), label);
        }
        prop_assert_eq!(hist.count(), sorted.len() as u64);
        prop_assert_eq!(hist.max(), Some(*sorted.last().unwrap()));
        let summary = hist.summary().expect("non-empty");
        prop_assert!(summary.is_monotone(), "summary {summary:?}");
    }

    /// Values below 128 land in unit-width buckets: the histogram is exact
    /// there, not merely within the error envelope.
    #[test]
    fn sub_bucket_percentiles_are_exact(
        samples in proptest::collection::vec(0u64..128, 1..64),
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for (pct, label) in PCTS {
            let got = hist.value_at_percentile(pct).expect("non-empty");
            prop_assert_eq!(got, oracle_percentile(&sorted, pct), "{}", label);
        }
    }
}

/// Threads recording into private histograms merged afterwards must agree
/// exactly — bucket counts, extrema, and summary — with the same values
/// recorded concurrently into one shared histogram.
#[test]
fn concurrent_record_and_merge_agree_with_shared() {
    const THREADS: u64 = if cfg!(miri) { 3 } else { 8 };
    const PER_THREAD: u64 = if cfg!(miri) { 200 } else { 20_000 };
    let shared = Arc::new(Histogram::new());
    let merged = Histogram::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let private = Histogram::new();
                // Deterministic per-thread values spread across decades.
                let mut v = t * 2_654_435_761 + 1;
                for _ in 0..PER_THREAD {
                    v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(t);
                    let sample = v % 50_000_000;
                    shared.record(sample);
                    private.record(sample);
                }
                private
            })
        })
        .collect();
    for h in handles {
        merged.merge(&h.join().unwrap());
    }
    assert_eq!(merged.count(), THREADS * PER_THREAD);
    assert_eq!(merged.count(), shared.count());
    assert_eq!(merged.max(), shared.max());
    assert_eq!(merged.min(), shared.min());
    assert_eq!(merged.nonzero_buckets(), shared.nonzero_buckets());
    assert_eq!(merged.summary(), shared.summary());
}

#[test]
fn empty_histogram_has_no_percentiles_or_summary() {
    let hist = Histogram::new();
    assert_eq!(hist.count(), 0);
    assert_eq!(hist.value_at_percentile(50.0), None);
    assert_eq!(hist.value_at_percentile(100.0), None);
    assert_eq!(hist.summary(), None);
    assert!(hist.nonzero_buckets().is_empty());
}

#[test]
fn single_sample_is_every_percentile() {
    for value in [0, 1, 127, 128, 999_999, u64::MAX] {
        let hist = Histogram::new();
        hist.record(value);
        for (pct, label) in PCTS {
            assert_eq!(
                hist.value_at_percentile(pct),
                Some(value),
                "{label} of single sample {value}"
            );
        }
        let summary = hist.summary().unwrap();
        assert_eq!(
            summary,
            LatencySummary {
                count: 1,
                p50: value,
                p90: value,
                p99: value,
                p999: value,
                max: value,
                buckets: hist.nonzero_buckets(),
            }
        );
        assert!(summary.is_monotone());
    }
}
