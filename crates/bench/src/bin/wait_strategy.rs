//! Wait-strategy sweep: every `WaitSlot`-backed structure × every named
//! spin policy, under the F3 pairwise-handoff workload.
//!
//! Since PR 2 all five synchronous structures (dual queue, dual stack,
//! transfer queue, elimination stack, and the Java 5 baseline) share one
//! `WaitSlot::await_outcome` loop parameterized by `WaitStrategy`, so a
//! policy value means the same thing to each of them and the sweep is
//! apples-to-apples. Emits `BENCH_wait_strategy.json` at the repo root
//! alongside `BENCH_headline.json`.

use synq_bench::algos::{make_policy_channel, POLICY_STRUCTURES, WAIT_STRATEGIES};
use synq_bench::report::{counter_deltas_since, write_bench_wait_strategy, FigureReport};
use synq_bench::workload::{handoff_ns_per_transfer, HandoffShape};
use synq_bench::{quick_mode, sweep, transfers_for};

/// A narrower ladder than the figures: enough to see the spin/park
/// crossover (undersubscribed, saturated, oversubscribed) without a
/// full-figure run per combination.
const LEVELS: &[usize] = &[1, 2, 4, 8, 16, 32];

fn main() {
    let quick = quick_mode();
    let levels = sweep(LEVELS, quick);
    let mut report = FigureReport::new(
        "wait_strategy",
        "Wait-strategy sweep over the shared WaitSlot loop",
        "pairs",
        "ns/transfer",
        levels.clone(),
    );
    for &structure in POLICY_STRUCTURES {
        for &(strategy, policy) in WAIT_STRATEGIES {
            let label = format!("{}/{}", structure.name(), strategy);
            let before = synq_obs::StatsSnapshot::take();
            let mut values = Vec::with_capacity(levels.len());
            for &level in &levels {
                let s = HandoffShape::pairs(level);
                let transfers = transfers_for(s.producers + s.consumers, quick);
                let ns =
                    handoff_ns_per_transfer(make_policy_channel(structure, policy()), s, transfers);
                eprintln!(
                    "  wait_strategy {label:>24} pairs={level:<3} -> {ns:>12.0} ns/transfer ({transfers} transfers)"
                );
                values.push(ns);
            }
            report.push_series_with_counters(label, values, counter_deltas_since(&before));
        }
    }
    println!("{}", report.to_table());
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
    match write_bench_wait_strategy(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_wait_strategy.json: {e}"),
    }
}
