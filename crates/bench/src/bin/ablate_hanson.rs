//! A5 — Hanson's queue: ordinary semaphores vs fast-path (benaphore)
//! semaphores (paper: "It is possible to streamline some of these
//! synchronization points … by using a fast-path acquire sequence \[11\]").
//!
//! Isolates how much of Hanson's cost is semaphore lock overhead versus
//! the design's six inherent blocking events per transfer — the paper's
//! point being that no semaphore implementation can remove the latter.

use synq_bench::algos::Algo;
use synq_bench::runner::{finish, run_handoff_figure};
use synq_bench::workload::HandoffShape;
use synq_bench::PAIR_LEVELS;

fn main() {
    let algos = [Algo::Hanson, Algo::HansonFast, Algo::NewUnfair];
    let report = run_handoff_figure(
        "ablate_hanson",
        "A5: Hanson semaphore fast-path ablation",
        "pairs",
        PAIR_LEVELS,
        &algos,
        HandoffShape::pairs,
    );
    finish(report);
}
