//! Figure 3 — synchronous handoff: N producers, N consumers.
//!
//! Regenerates the paper's Figure 3 series (ns/transfer vs. number of
//! producer/consumer pairs) for all six algorithms. `SYNQ_BENCH_QUICK=1`
//! shrinks the sweep.

use synq_bench::runner::{finish, run_handoff_figure};
use synq_bench::workload::HandoffShape;
use synq_bench::{BLOCKING_ALGOS, PAIR_LEVELS};

fn main() {
    let report = run_handoff_figure(
        "figure3",
        "synchronous handoff: N producers, N consumers",
        "pairs",
        PAIR_LEVELS,
        BLOCKING_ALGOS,
        HandoffShape::pairs,
    );
    finish(report);
}
