//! Reclamation-backend sweep under **stalled-thread injection**: for each
//! backend (epoch, hazard) run producer/consumer pairs through a
//! `SyncDualQueue<usize, R>` while one extra reader is parked
//! *mid-critical-section* — guard pinned, one live hazard published — for
//! the whole measured window. Records transfers/sec per pair count and,
//! in each series' `counters` section, the backend's peak and end-of-run
//! unreclaimed-garbage population (`reclaim.peak_pending` /
//! `reclaim.end_pending`, from the process-wide garbage ledger).
//!
//! This is the experiment behind DESIGN §4.12's trade-off table: a single
//! stalled epoch pin freezes the global grace period, so epoch garbage
//! grows with the transfer count, while the hazard backend keeps freeing
//! everything except the handful of slot-protected nodes — its peak stays
//! bounded by a per-thread constant independent of how long the stall
//! lasts.
//!
//! Emits `target/figures/reclaim.json` and the repo-root
//! `BENCH_reclaim.json` (overridable with `SYNQ_RECLAIM_PATH`).
//!
//! With `SYNQ_RECLAIM_ASSERT=1` the binary exits nonzero unless the
//! hazard peak stayed under its slot-derived bound **and** the epoch peak
//! actually exceeded that bound (i.e. the stall demonstrably mattered).
//! The ledger is always compiled in, so the assertions need no
//! `--features stats` build; stats builds additionally record the
//! `reclaim.*` probe deltas per series.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use synq::{SyncChannel, SyncDualQueue};
use synq_bench::report::{counter_deltas_since, write_bench_reclaim, FigureReport};
use synq_bench::{quick_mode, transfers_for};
use synq_reclaim::{Epoch, Hazard, Reclaimer, Shield, SCAN_THRESHOLD};

/// One backend's sweep outcome.
struct BackendRun {
    /// transfers/sec at each pair level.
    throughput: Vec<f64>,
    /// Ledger high-water mark across the whole sweep.
    peak_pending: usize,
    /// Ledger population after the stall released and collection ran.
    end_pending: usize,
    /// Probe-counter deltas over the sweep (stats builds; else empty).
    counters: Vec<(String, u64)>,
}

/// Upper bound on the hazard backend's garbage population with `threads`
/// retiring threads: each thread's retire batch flushes at
/// [`SCAN_THRESHOLD`], a scan can miss at most the slot-protected handful,
/// and the stalled reader protects exactly one allocation. Doubled for
/// scheduling slack (a preempted thread mid-scan re-retires its batch).
fn hazard_bound(threads: usize) -> usize {
    2 * (threads + 1) * SCAN_THRESHOLD
}

/// Runs one pair level under backend `R` with the stalled reader parked.
fn stalled_level<R: Reclaimer>(pairs: usize, transfers_per_pair: usize) -> f64 {
    let q: Arc<SyncDualQueue<usize, R>> = Arc::new(SyncDualQueue::new_in());
    let stop = Arc::new(AtomicBool::new(false));

    // The injected stall: pin a guard and publish one live hazard, then
    // park until the measured window closes. Under epoch this freezes the
    // global grace period; under hazard it protects exactly one address.
    let stalled = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let target = Box::into_raw(Box::new(0u64)) as usize;
            let src = AtomicUsize::new(target);
            let guard = R::pin();
            let _ = guard.protect::<u64>(&src, Ordering::Acquire);
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(guard);
            // SAFETY: the leaked target was never shared with anyone.
            drop(unsafe { Box::from_raw(target as *mut u64) });
        })
    };

    let start = Instant::now();
    let mut producers = Vec::with_capacity(pairs);
    let mut consumers = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let qp = Arc::clone(&q);
        producers.push(std::thread::spawn(move || {
            for i in 0..transfers_per_pair {
                qp.put(i);
            }
        }));
        let q = Arc::clone(&q);
        consumers.push(std::thread::spawn(move || {
            for _ in 0..transfers_per_pair {
                let _ = q.take();
            }
        }));
    }
    for h in producers.into_iter().chain(consumers) {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    stalled.join().unwrap();

    (pairs * transfers_per_pair) as f64 / elapsed.max(1e-9)
}

/// Sweeps every level under backend `R`, stalled reader injected at each.
fn run_backend<R: Reclaimer>(levels: &[usize], quick: bool) -> BackendRun {
    // Drain garbage left behind by earlier series, then zero the watermark
    // so the peak is attributable to this sweep alone.
    for _ in 0..4 {
        R::collect();
    }
    R::reset_peak();
    let before = synq_obs::StatsSnapshot::take();

    let mut throughput = Vec::with_capacity(levels.len());
    for &pairs in levels {
        let per = transfers_for(pairs * 2, quick);
        let tps = stalled_level::<R>(pairs, per);
        eprintln!(
            "  reclaim {:>6} pairs={pairs:<2} -> {tps:>12.0} transfers/sec \
             (pending {} peak {})",
            R::NAME,
            R::pending(),
            R::peak_pending(),
        );
        throughput.push(tps);
    }

    let peak_pending = R::peak_pending();
    // The stall is over everywhere: reclamation must be able to catch up.
    for _ in 0..8 {
        R::collect();
    }
    let mut counters = counter_deltas_since(&before);
    counters.push(("reclaim.peak_pending".into(), peak_pending as u64));
    counters.push(("reclaim.end_pending".into(), R::pending() as u64));
    counters.sort();
    BackendRun {
        throughput,
        peak_pending,
        end_pending: R::pending(),
        counters,
    }
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let levels: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let mut report = FigureReport::new(
        "reclaim",
        "Reclamation backends under stalled-thread injection",
        "pairs",
        "transfers/sec",
        levels.clone(),
    );

    let epoch = run_backend::<Epoch>(&levels, quick);
    let hazard = run_backend::<Hazard>(&levels, quick);
    report.push_series_with_counters("epoch".into(), epoch.throughput.clone(), epoch.counters);
    report.push_series_with_counters("hazard".into(), hazard.throughput.clone(), hazard.counters);

    println!("{}", report.to_table());
    eprintln!(
        "peak unreclaimed garbage: epoch={} hazard={} (end: epoch={} hazard={})",
        epoch.peak_pending, hazard.peak_pending, epoch.end_pending, hazard.end_pending
    );
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
    match write_bench_reclaim(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_reclaim.json: {e}"),
    }

    let assert_reclaim = std::env::var("SYNQ_RECLAIM_ASSERT").map(|v| v != "0") == Ok(true);
    if assert_reclaim {
        let max_threads = 2 * levels.iter().copied().max().unwrap_or(1) + 1;
        let bound = hazard_bound(max_threads);
        let mut failed = false;
        if hazard.peak_pending > bound {
            eprintln!(
                "error: hazard peak garbage {} exceeded its slot-derived bound {} \
                 ({max_threads} threads x SCAN_THRESHOLD {SCAN_THRESHOLD})",
                hazard.peak_pending, bound
            );
            failed = true;
        }
        if epoch.peak_pending <= bound {
            eprintln!(
                "error: epoch peak garbage {} never exceeded the hazard bound {} — \
                 the stalled pin did not accumulate garbage, so the run proves nothing",
                epoch.peak_pending, bound
            );
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "reclaim self-checks passed: hazard peak {} <= bound {}, epoch peak {} > bound \
             (stall demonstrably unbounded under epoch, bounded under hazard)",
            hazard.peak_pending, bound, epoch.peak_pending
        );
    }
    ExitCode::SUCCESS
}
