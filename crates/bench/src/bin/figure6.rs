//! Figure 6 — `ThreadPoolExecutor` (CachedThreadPool) benchmark.
//!
//! Tasks are produced by N submitter threads and run by a cached pool
//! whose core is the synchronous queue under test; Hanson's queue and the
//! naive monitor queue cannot support the executor's `offer`/timed `poll`
//! and are absent, as in the paper.

use synq_bench::runner::{finish, run_executor_figure};
use synq_bench::{PAIR_LEVELS, TIMED_ALGOS};

fn main() {
    let report = run_executor_figure(
        "figure6",
        "CachedThreadPool: ns per task",
        PAIR_LEVELS,
        TIMED_ALGOS,
    );
    finish(report);
}
