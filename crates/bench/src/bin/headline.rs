//! T1 — the paper's headline claims, derived from the F3/F6 workloads at
//! the highest concurrency level:
//!
//! * new vs. Java 5, unfair mode: ≈ 3× (microbenchmark)
//! * new vs. Java 5, fair mode: up to 14× (SPARC) / 6× (Opteron)
//! * ThreadPoolExecutor: ≈ 3× unfair / 14× (SPARC), 6× (Opteron) fair

use synq_bench::algos::Algo;
use synq_bench::runner::{run_executor_figure, run_handoff_figure};
use synq_bench::workload::HandoffShape;
use synq_bench::PAIR_LEVELS;

fn main() {
    let algos = [
        Algo::Java5Fair,
        Algo::Java5Unfair,
        Algo::NewFair,
        Algo::NewUnfair,
    ];
    let handoff = run_handoff_figure(
        "headline-handoff",
        "handoff at max concurrency",
        "pairs",
        PAIR_LEVELS,
        &algos,
        HandoffShape::pairs,
    );
    let pool = run_executor_figure(
        "headline-pool",
        "executor at max concurrency",
        PAIR_LEVELS,
        &algos,
    );

    println!("# T1 — headline speedups (java5 time / new time, at max level)");
    println!("{:<28}{:>10}{:>12}", "comparison", "measured", "paper");
    let rows = [
        ("handoff fair", &handoff, "java5-fair", "new-fair", "8-14x"),
        (
            "handoff unfair",
            &handoff,
            "java5-unfair",
            "new-unfair",
            "~2-3x",
        ),
        ("executor fair", &pool, "java5-fair", "new-fair", "6-14x"),
        (
            "executor unfair",
            &pool,
            "java5-unfair",
            "new-unfair",
            "~3x",
        ),
    ];
    for (label, rep, num, den, paper) in rows {
        match rep.ratio_at_max(num, den) {
            Some(r) => println!("{label:<28}{r:>9.2}x{paper:>12}"),
            None => println!("{label:<28}{:>10}{paper:>12}", "n/a"),
        }
    }
    let _ = handoff.write_json();
    let _ = pool.write_json();
    // Repo-root perf-trajectory file for cross-PR regression comparison.
    match synq_bench::report::write_bench_headline(&handoff, Some(&pool)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_headline.json: {e}"),
    }
}
