//! Async front-end overhead sweep: the `synq-async` waker-based wait mode
//! against the blocking (`Unparker`-based) API on the same two structures,
//! under the F3 pairwise-handoff workload.
//!
//! Three wait modes per structure:
//!
//! * `blocking` — N producer + N consumer threads calling `put`/`take`
//!   (the existing [`handoff_ns_per_transfer`] loop; the baseline).
//! * `async` — the same 2N threads, but each drives its loop through
//!   `send(..).await`/`recv().await` under the bundled `block_on`. Same
//!   parallelism; measures the per-transfer cost of the future protocol
//!   (publish on first poll, waker registration, wake-then-repoll).
//! * `async-1t` — all 2N tasks multiplexed on a *single* thread via
//!   `block_on_all`: the cooperative limit, where every rendezvous is a
//!   task switch instead of a thread switch.
//!
//! Emits `BENCH_async.json` at the repo root alongside
//! `BENCH_headline.json`.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use synq_async::{block_on, block_on_all, AsyncSyncQueue, AsyncSyncStack};
use synq_bench::algos::{make_blocking, Algo};
use synq_bench::report::{counter_deltas_since, write_bench_async, FigureReport};
use synq_bench::workload::{handoff_ns_per_transfer, HandoffShape};
use synq_bench::{quick_mode, sweep, transfers_for};

/// A narrower ladder than the figures: the async driver adds a constant
/// per-transfer cost, so the interesting region is the low/saturated end.
const LEVELS: &[usize] = &[1, 2, 4, 8, 16];

/// The two async wrappers are distinct macro-generated types; this local
/// trait gives the measurement loops one name for "send"/"recv".
trait AsyncHandoff: Clone + Send + Sync + 'static {
    fn send(&self, v: u64) -> impl Future<Output = ()> + '_;
    fn recv(&self) -> impl Future<Output = u64> + '_;
}

impl AsyncHandoff for AsyncSyncQueue<u64> {
    fn send(&self, v: u64) -> impl Future<Output = ()> + '_ {
        AsyncSyncQueue::send(self, v)
    }
    fn recv(&self) -> impl Future<Output = u64> + '_ {
        AsyncSyncQueue::recv(self)
    }
}

impl AsyncHandoff for AsyncSyncStack<u64> {
    fn send(&self, v: u64) -> impl Future<Output = ()> + '_ {
        AsyncSyncStack::send(self, v)
    }
    fn recv(&self) -> impl Future<Output = u64> + '_ {
        AsyncSyncStack::recv(self)
    }
}

/// Mirror of [`handoff_ns_per_transfer`]: each worker thread runs its
/// ticket loop as a future under `block_on`.
fn async_ns_per_transfer<C: AsyncHandoff>(chan: C, shape: HandoffShape, transfers: usize) -> f64 {
    let put_tickets = Arc::new(AtomicUsize::new(0));
    let take_tickets = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(shape.producers + shape.consumers + 1));

    let mut handles = Vec::with_capacity(shape.producers + shape.consumers);
    for _ in 0..shape.producers {
        let chan = chan.clone();
        let tickets = Arc::clone(&put_tickets);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            block_on(async move {
                loop {
                    let i = tickets.fetch_add(1, Ordering::Relaxed);
                    if i >= transfers {
                        break;
                    }
                    chan.send(i as u64).await;
                }
            });
        }));
    }
    for _ in 0..shape.consumers {
        let chan = chan.clone();
        let tickets = Arc::clone(&take_tickets);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            block_on(async move {
                let mut check: u64 = 0;
                loop {
                    let i = tickets.fetch_add(1, Ordering::Relaxed);
                    if i >= transfers {
                        break;
                    }
                    check = check.wrapping_add(chan.recv().await);
                }
                std::hint::black_box(check);
            });
        }));
    }

    let start = Instant::now();
    barrier.wait();
    for h in handles {
        h.join().expect("benchmark thread panicked");
    }
    start.elapsed().as_nanos() as f64 / transfers as f64
}

/// Cooperative limit: all `pairs`×2 ticket loops run as tasks on one
/// thread under `block_on_all`, so every rendezvous is a task switch.
fn async_single_thread_ns<C: AsyncHandoff>(chan: C, pairs: usize, transfers: usize) -> f64 {
    type BoxFut = Pin<Box<dyn Future<Output = ()>>>;
    let put_tickets = Arc::new(AtomicUsize::new(0));
    let take_tickets = Arc::new(AtomicUsize::new(0));
    let mut tasks: Vec<BoxFut> = Vec::with_capacity(pairs * 2);
    for _ in 0..pairs {
        let producer = chan.clone();
        let tickets = Arc::clone(&put_tickets);
        tasks.push(Box::pin(async move {
            loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= transfers {
                    break;
                }
                producer.send(i as u64).await;
            }
        }));
        let chan = chan.clone();
        let tickets = Arc::clone(&take_tickets);
        tasks.push(Box::pin(async move {
            let mut check: u64 = 0;
            loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= transfers {
                    break;
                }
                check = check.wrapping_add(chan.recv().await);
            }
            std::hint::black_box(check);
        }));
    }
    let start = Instant::now();
    block_on_all(tasks);
    start.elapsed().as_nanos() as f64 / transfers as f64
}

fn main() {
    let quick = quick_mode();
    let levels = sweep(LEVELS, quick);
    let mut report = FigureReport::new(
        "async_handoff",
        "Async front-end vs. blocking API, pairwise handoff",
        "pairs",
        "ns/transfer",
        levels.clone(),
    );

    type Mode = (&'static str, fn(usize, usize) -> f64);
    let modes: &[Mode] = &[
        ("queue/blocking", |level, transfers| {
            handoff_ns_per_transfer(
                make_blocking(Algo::NewFair),
                HandoffShape::pairs(level),
                transfers,
            )
        }),
        ("queue/async", |level, transfers| {
            async_ns_per_transfer(
                AsyncSyncQueue::<u64>::new(),
                HandoffShape::pairs(level),
                transfers,
            )
        }),
        ("queue/async-1t", |level, transfers| {
            async_single_thread_ns(AsyncSyncQueue::<u64>::new(), level, transfers)
        }),
        ("stack/blocking", |level, transfers| {
            handoff_ns_per_transfer(
                make_blocking(Algo::NewUnfair),
                HandoffShape::pairs(level),
                transfers,
            )
        }),
        ("stack/async", |level, transfers| {
            async_ns_per_transfer(
                AsyncSyncStack::<u64>::new(),
                HandoffShape::pairs(level),
                transfers,
            )
        }),
        ("stack/async-1t", |level, transfers| {
            async_single_thread_ns(AsyncSyncStack::<u64>::new(), level, transfers)
        }),
    ];

    for &(label, run) in modes {
        let before = synq_obs::StatsSnapshot::take();
        let mut values = Vec::with_capacity(levels.len());
        for &level in &levels {
            let transfers = transfers_for(level * 2, quick);
            let ns = run(level, transfers);
            eprintln!(
                "  async_handoff {label:>16} pairs={level:<3} -> {ns:>12.0} ns/transfer ({transfers} transfers)"
            );
            values.push(ns);
        }
        report.push_series_with_counters(label.to_string(), values, counter_deltas_since(&before));
    }

    println!("{}", report.to_table());
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
    match write_bench_async(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_async.json: {e}"),
    }
}
