//! Striped-lane scalability sweep: lanes × threads under the **contended**
//! preset (threads ≫ cores), the workload the striped structures exist
//! for. Runs the unstriped dual queue/stack as baselines, then the striped
//! variants across a ladder of lane counts, and records the schema rev 2
//! per-series `counters` section (`striped.*` routing probes plus the
//! CAS-failure counters) that backs the scalability claims — the headline
//! comparison is CAS failures *per transfer* for `new-fair-striped1`
//! versus the multi-lane variants.
//!
//! Emits `target/figures/scalability-striped.json` and the repo-root
//! `BENCH_striped.json` (overridable with `SYNQ_STRIPED_PATH`).
//!
//! With `SYNQ_STRIPED_ASSERT=1` the binary exits nonzero unless every
//! multi-lane series actually spread its transfers across at least two
//! lanes — the CI guard that striping is exercised, not silently routed
//! to lane 0.

use std::process::ExitCode;
use std::sync::Arc;
use synq::{Striped, StripedLane, SyncChannel, SyncDualQueue, SyncDualStack};
use synq_bench::algos::{make_blocking, Algo};
use synq_bench::report::{counter_deltas_since, write_bench_striped, FigureReport};
use synq_bench::workload::{handoff_ns_per_transfer, HandoffShape};
use synq_bench::{contended_pairs, quick_mode, transfers_for};

/// Lane ladder for the fair (queue) family — the full sweep, since the
/// acceptance comparisons (lanes=1 vs `DualQueue`, multi-lane vs
/// single-lane CAS failures) read from it.
const QUEUE_LANES: &[usize] = &[1, 2, 4, 8];

/// Lane ladder for the unfair (stack) family — endpoints only; the stack
/// rides along for coverage rather than headline claims.
const STACK_LANES: &[usize] = &[1, 4];

/// Runs one striped series across `levels`, pushing values + counter
/// deltas into `report`. Returns the maximum number of lanes any level's
/// fresh structure actually routed transfers onto.
fn striped_series<S: StripedLane<u64> + 'static>(
    label: String,
    lanes: usize,
    levels: &[usize],
    quick: bool,
    report: &mut FigureReport,
) -> usize {
    let before = synq_obs::StatsSnapshot::take();
    let mut values = Vec::with_capacity(levels.len());
    let mut max_exercised = 0;
    for &level in levels {
        let shape = HandoffShape::pairs(level);
        let striped: Arc<Striped<u64, S>> = Arc::new(Striped::with_lanes(lanes));
        let channel: Arc<dyn SyncChannel<u64>> = Arc::clone(&striped) as _;
        let transfers = transfers_for(shape.producers + shape.consumers, quick);
        let ns = handoff_ns_per_transfer(channel, shape, transfers);
        max_exercised = max_exercised.max(striped.lanes_exercised());
        eprintln!(
            "  scalability {label:>20} pairs={level:<3} -> {ns:>12.0} ns/transfer \
             ({transfers} transfers, {}/{lanes} lanes exercised)",
            striped.lanes_exercised()
        );
        values.push(ns);
    }
    report.push_series_with_counters(label, values, counter_deltas_since(&before));
    max_exercised
}

/// Runs one unstriped baseline series across `levels`.
fn baseline_series(algo: Algo, levels: &[usize], quick: bool, report: &mut FigureReport) {
    let before = synq_obs::StatsSnapshot::take();
    let mut values = Vec::with_capacity(levels.len());
    for &level in levels {
        let shape = HandoffShape::pairs(level);
        let transfers = transfers_for(shape.producers + shape.consumers, quick);
        let ns = handoff_ns_per_transfer(make_blocking(algo), shape, transfers);
        eprintln!(
            "  scalability {:>20} pairs={level:<3} -> {ns:>12.0} ns/transfer ({transfers} transfers)",
            algo.name()
        );
        values.push(ns);
    }
    report.push_series_with_counters(algo.name(), values, counter_deltas_since(&before));
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let levels = contended_pairs(quick);
    let mut report = FigureReport::new(
        "scalability-striped",
        "Striped lanes under the contended (threads >> cores) preset",
        "pairs",
        "ns/transfer",
        levels.clone(),
    );

    baseline_series(Algo::NewFair, &levels, quick, &mut report);
    let mut multi_lane_ok = true;
    for &lanes in QUEUE_LANES {
        let hit = striped_series::<SyncDualQueue<u64>>(
            Algo::NewFairStriped(lanes).name(),
            lanes,
            &levels,
            quick,
            &mut report,
        );
        if lanes > 1 && hit < 2 {
            multi_lane_ok = false;
        }
    }
    baseline_series(Algo::NewUnfair, &levels, quick, &mut report);
    for &lanes in STACK_LANES {
        let hit = striped_series::<SyncDualStack<u64>>(
            Algo::NewUnfairStriped(lanes).name(),
            lanes,
            &levels,
            quick,
            &mut report,
        );
        if lanes > 1 && hit < 2 {
            multi_lane_ok = false;
        }
    }

    println!("{}", report.to_table());
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
    match write_bench_striped(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_striped.json: {e}"),
    }

    let assert_lanes = std::env::var("SYNQ_STRIPED_ASSERT").map(|v| v != "0") == Ok(true);
    if assert_lanes && !multi_lane_ok {
        eprintln!(
            "error: a multi-lane striped series exercised fewer than two lanes \
             under the contended preset (SYNQ_STRIPED_ASSERT=1)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
