//! Bounded-ring fast-path sweep: capacity × batch size × pair count under
//! the **contended** preset (threads ≫ cores). Runs the unbounded linked
//! `TransferQueue` as the baseline, then the bounded ring at a ladder of
//! capacities and batch sizes, plus one mixed buffered+synchronous series
//! that overflows a tiny ring so the ring-full → rendezvous-fallback path
//! executes under load.
//!
//! The schema rev 2 per-series `counters` section carries the `ring.*`
//! probe deltas plus explicitly recorded `epoch.pins` / `node_cache.*`
//! values. For the pure buffered series those are **zero** — the proof
//! that buffered `put`/`poll` never pins an epoch or touches the linked
//! node cache — and `nonzero()` would drop them, so this binary writes the
//! zeros back in before recording the series.
//!
//! Emits `target/figures/ring.json` and the repo-root `BENCH_ring.json`
//! (overridable with `SYNQ_RING_PATH`).
//!
//! With `SYNQ_RING_ASSERT=1` (requires a `--features stats` build) the
//! binary exits nonzero unless every pure buffered series recorded zero
//! `epoch.pins` and zero `node_cache.*` traffic, every batch ≥ 8 series
//! amortized its tail/head updates to at most one per two items, and the
//! mixed series exercised both the ring and the linked rendezvous path.

use std::process::ExitCode;
use std::sync::Arc;
use synq::SyncChannel;
use synq_bench::report::{counter_deltas_since, write_bench_ring, FigureReport};
use synq_bench::workload::{
    batched_handoff_ns_per_transfer, handoff_ns_per_transfer, mixed_handoff_ns_per_transfer,
    HandoffShape,
};
use synq_bench::{contended_pairs, quick_mode, transfers_for};
use synq_transfer::{BufferedChannel, TransferQueue};

/// Counters whose *zero* value is the acceptance evidence for the pure
/// buffered series. `StatsSnapshot::nonzero()` filters zeros out, so they
/// are appended explicitly (stats builds only).
const PROOF_COUNTERS: &[&str] = &["epoch.pins", "node_cache.hits", "node_cache.misses"];

/// One sweep series: how each level's transfers move through the queue.
#[derive(Clone, Copy)]
enum Mode {
    /// Unbounded linked queue, single-item `put`/`take`.
    UnboundedSingle,
    /// Bounded ring, single-item `put`/`take`.
    RingSingle { capacity: usize },
    /// Bounded ring, `send_batch`/`recv_batch` in chunks of `batch`.
    RingBatch { capacity: usize, batch: usize },
    /// Bounded ring, every third item rendezvouses via `transfer`.
    RingMixed { capacity: usize, sync_every: usize },
}

impl Mode {
    /// Pure buffered series never touch the linked path, so their
    /// `epoch.pins` / `node_cache.*` deltas must be exactly zero.
    fn pure_buffered(self) -> bool {
        matches!(self, Mode::RingSingle { .. } | Mode::RingBatch { .. })
    }

    fn batch(self) -> usize {
        match self {
            Mode::RingBatch { batch, .. } => batch,
            _ => 1,
        }
    }
}

/// Runs one series across `levels`, recording values plus counter deltas
/// (with the zero-valued proof counters written back in for the pure
/// buffered modes). Returns the recorded counters for the self-checks.
fn run_series(
    label: &str,
    mode: Mode,
    levels: &[usize],
    quick: bool,
    report: &mut FigureReport,
) -> Vec<(String, u64)> {
    let before = synq_obs::StatsSnapshot::take();
    let mut values = Vec::with_capacity(levels.len());
    for &level in levels {
        let shape = HandoffShape::pairs(level);
        let transfers = transfers_for(shape.producers + shape.consumers, quick);
        let ns = match mode {
            Mode::UnboundedSingle => {
                // `BufferedChannel`, not the raw `TransferQueue` channel
                // impl (whose `put` is a synchronous rendezvous): the
                // baseline is the *buffered* linked path — async nodes,
                // epoch pins, node-cache traffic — that the ring replaces.
                let channel: Arc<dyn SyncChannel<u64>> = Arc::new(BufferedChannel::unbounded());
                handoff_ns_per_transfer(channel, shape, transfers)
            }
            Mode::RingSingle { capacity } => {
                let channel: Arc<dyn SyncChannel<u64>> =
                    Arc::new(BufferedChannel::bounded(capacity));
                handoff_ns_per_transfer(channel, shape, transfers)
            }
            Mode::RingBatch { capacity, batch } => {
                let channel: Arc<dyn SyncChannel<u64>> =
                    Arc::new(BufferedChannel::bounded(capacity));
                batched_handoff_ns_per_transfer(channel, shape, transfers, batch)
            }
            Mode::RingMixed {
                capacity,
                sync_every,
            } => {
                let queue = Arc::new(TransferQueue::bounded(capacity));
                mixed_handoff_ns_per_transfer(queue, shape, transfers, sync_every)
            }
        };
        eprintln!(
            "  ring {label:>20} pairs={level:<3} -> {ns:>12.0} ns/transfer ({transfers} transfers)"
        );
        values.push(ns);
    }
    let mut counters = counter_deltas_since(&before);
    if synq_obs::ENABLED && mode.pure_buffered() {
        for &name in PROOF_COUNTERS {
            if !counters.iter().any(|(k, _)| k == name) {
                counters.push((name.to_owned(), 0));
            }
        }
        counters.sort();
    }
    report.push_series_with_counters(label.to_owned(), values, counters.clone());
    counters
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

/// Self-checks one series' counters; pushes a message per violation.
fn check_series(label: &str, mode: Mode, counters: &[(String, u64)], errors: &mut Vec<String>) {
    let pushed = counter(counters, "ring.push_items");
    match mode {
        Mode::UnboundedSingle => return, // baseline: no ring involvement
        Mode::RingMixed { .. } => {
            if pushed == 0 {
                errors.push(format!("{label}: mixed series never used the ring"));
            }
            if counter(counters, "epoch.pins") == 0 {
                errors.push(format!(
                    "{label}: mixed series never exercised the linked rendezvous path"
                ));
            }
            return;
        }
        Mode::RingSingle { .. } | Mode::RingBatch { .. } => {}
    }
    if pushed == 0 {
        errors.push(format!("{label}: buffered series never pushed to the ring"));
    }
    for &name in PROOF_COUNTERS {
        let v = counter(counters, name);
        if v != 0 {
            errors.push(format!(
                "{label}: pure buffered series recorded {name}={v} (expected 0 — \
                 the buffered path must be epoch-free and allocation-free)"
            ));
        }
    }
    // Batch ≥ 8 must amortize the contended index updates: at least two
    // items moved per tail/head CAS on average.
    if mode.batch() >= 8 {
        let tail = counter(counters, "ring.tail_updates");
        let head = counter(counters, "ring.head_updates");
        let popped = counter(counters, "ring.pop_items");
        if tail * 2 > pushed {
            errors.push(format!(
                "{label}: batch={} but {tail} tail updates for {pushed} pushed items \
                 (wanted ≤ 1 update per 2 items)",
                mode.batch()
            ));
        }
        if head * 2 > popped {
            errors.push(format!(
                "{label}: batch={} but {head} head updates for {popped} popped items \
                 (wanted ≤ 1 update per 2 items)",
                mode.batch()
            ));
        }
    }
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let levels = contended_pairs(quick);
    let mut report = FigureReport::new(
        "ring",
        "Bounded ring fast path: capacity x batch under the contended preset",
        "pairs",
        "ns/transfer",
        levels.clone(),
    );

    let series: &[(&str, Mode)] = &[
        ("unbounded-linked", Mode::UnboundedSingle),
        ("ring-cap256-batch1", Mode::RingSingle { capacity: 256 }),
        (
            "ring-cap256-batch8",
            Mode::RingBatch {
                capacity: 256,
                batch: 8,
            },
        ),
        (
            "ring-cap256-batch32",
            Mode::RingBatch {
                capacity: 256,
                batch: 32,
            },
        ),
        (
            "ring-cap64-batch8",
            Mode::RingBatch {
                capacity: 64,
                batch: 8,
            },
        ),
        (
            "ring-cap1024-batch8",
            Mode::RingBatch {
                capacity: 1024,
                batch: 8,
            },
        ),
        (
            "ring-cap64-mixed",
            Mode::RingMixed {
                capacity: 64,
                sync_every: 3,
            },
        ),
    ];

    let mut errors = Vec::new();
    for &(label, mode) in series {
        let counters = run_series(label, mode, &levels, quick, &mut report);
        if synq_obs::ENABLED {
            check_series(label, mode, &counters, &mut errors);
        }
    }

    println!("{}", report.to_table());
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
    match write_bench_ring(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_ring.json: {e}"),
    }

    let assert_ring = std::env::var("SYNQ_RING_ASSERT").map(|v| v != "0") == Ok(true);
    if assert_ring {
        if !synq_obs::ENABLED {
            eprintln!(
                "error: SYNQ_RING_ASSERT=1 requires a `--features stats` build \
                 (counters are compiled out, nothing can be proven)"
            );
            return ExitCode::FAILURE;
        }
        if !errors.is_empty() {
            for e in &errors {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "ring self-checks passed: buffered series epoch-free/cache-free, \
             batch >= 8 amortized index updates, mixed series hit both paths"
        );
    }
    ExitCode::SUCCESS
}
