//! The dispatch-server scenario: thousands of async connections
//! (`synq-async`) dispatching jobs through a rendezvous channel into a
//! prestarted executor pool (`synq-executor`) — the "millions of users"
//! shape the ROADMAP aims at, where service claims live in the tail, not
//! the mean. Four phases run per queue variant:
//!
//! 1. **steady** — every connection issues timed sends with generous
//!    patience; the baseline distribution.
//! 2. **burst** — back-to-back `try_send`s; a request that finds no worker
//!    parked in `poll` (or no ring space, for the buffered variant) is
//!    *dropped*, not queued — `server.burst_drops` counts the loss.
//! 3. **timeout storm** — timed sends with patience far below the drain
//!    rate, so most dispatches lapse; `server.timeouts` counts them.
//! 4. **cancellation wave** — sends wrapped in a [`CancelGate`]; mid-phase
//!    the gate fires and every in-flight dispatch is dropped, exercising
//!    the PR 3 cancel-safety retraction at scale; `server.cancels`.
//!
//! Variants: the global-FIFO dual queue (`new-fair`), the per-lane striped
//! queue (`new-fair-striped4`), the flat-combining queue (`new-combiner`),
//! and the bounded buffered channel (`transfer-bounded64`). The fairness
//! comparison is the point: striping trades global FIFO for throughput, a
//! trade *only* visible as a latency distribution — so every series
//! carries a schema rev 3 `latency` block (client-side dispatch spans:
//! from issuing the send to a worker taking the job) and **p999 is the
//! headline number**. Per-phase values are mean ns/request; awaited
//! dispatches (steady/storm/wave completions) feed the histogram, while
//! burst `try_send`s are counted but not timed — an offer's latency is
//! clock noise either way.
//!
//! Emits `target/figures/server.json` and the repo-root
//! `BENCH_server.json` (overridable with `SYNQ_SERVER_PATH`).
//!
//! With `SYNQ_SERVER_ASSERT=1` the binary exits nonzero unless the
//! timeout storm recorded at least one `server.timeouts` event — the CI
//! guard that the storm actually stormed. The counters are bin-local and
//! always on, so the guard holds in stats and non-stats builds alike.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synq::{
    CombinerSyncQueue, Deadline, PollTransferer, StripedSyncQueue, SyncDualQueue, TimedSyncChannel,
};
use synq_async::{block_on_all, cancel::CancelGate, future};
use synq_bench::hist::Histogram;
use synq_bench::report::{counter_deltas_since, write_bench_server, FigureReport};
use synq_bench::{bench_cores, quick_mode};
use synq_executor::{Job, PoolConfig, ThreadPool};
use synq_obs::probe;
use synq_transfer::BufferedChannel;

/// Lane count for the striped variant (matches the combiner bench).
const STRIPED_LANES: usize = 4;
/// Ring capacity for the buffered variant: small enough that bursts
/// overflow it, large enough to absorb more than the rendezvous variants.
const BUFFER_CAP: usize = 64;

/// Scenario scale, derived from quick mode.
struct Config {
    connections: usize,
    drivers: usize,
    workers: usize,
    steady_reqs: usize,
    burst_reqs: usize,
    storm_reqs: usize,
    wave_reqs: usize,
    steady_patience: Duration,
    storm_patience: Duration,
    wave_delay: Duration,
    /// `spin_loop` iterations per job: keeps service time well above the
    /// storm patience so the storm is a storm on any host.
    job_spin: u32,
}

impl Config {
    fn from_env() -> Config {
        if quick_mode() {
            Config {
                connections: 120,
                drivers: 2,
                workers: 2,
                steady_reqs: 6,
                burst_reqs: 12,
                storm_reqs: 4,
                wave_reqs: 4,
                steady_patience: Duration::from_secs(5),
                storm_patience: Duration::from_micros(50),
                wave_delay: Duration::from_millis(5),
                job_spin: 4_000,
            }
        } else {
            Config {
                connections: 2_000,
                drivers: 4,
                workers: bench_cores().max(4),
                steady_reqs: 10,
                burst_reqs: 16,
                storm_reqs: 6,
                wave_reqs: 6,
                steady_patience: Duration::from_secs(10),
                storm_patience: Duration::from_micros(50),
                wave_delay: Duration::from_millis(30),
                job_spin: 4_000,
            }
        }
    }
}

/// The four phases, in sweep order. The report's x-axis levels are the
/// 1-based phase numbers.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Steady,
    Burst,
    Storm,
    Wave,
}

impl Phase {
    const ALL: [Phase; 4] = [Phase::Steady, Phase::Burst, Phase::Storm, Phase::Wave];

    fn name(self) -> &'static str {
        match self {
            Phase::Steady => "steady",
            Phase::Burst => "burst",
            Phase::Storm => "storm",
            Phase::Wave => "wave",
        }
    }

    fn requests_per_connection(self, cfg: &Config) -> usize {
        match self {
            Phase::Steady => cfg.steady_reqs,
            Phase::Burst => cfg.burst_reqs,
            Phase::Storm => cfg.storm_reqs,
            Phase::Wave => cfg.wave_reqs,
        }
    }
}

/// Per-variant shared state: the latency histogram plus the always-on
/// scenario counters (bin-local so the CI assert works without stats).
struct Shared {
    hist: Histogram,
    /// Storm-phase spans only, *including* lapsed dispatches — its tail is
    /// how late past the 50 µs patience the timeout path actually fired,
    /// the wakeup-lateness figure the timer wheel is accountable for.
    /// Exported as `server.storm_*` counters (the all-phase `latency`
    /// block keeps its PR 9 meaning).
    storm_hist: Histogram,
    requests: AtomicU64,
    timeouts: AtomicU64,
    cancels: AtomicU64,
    burst_drops: AtomicU64,
    processed: AtomicU64,
    steady_patience: Duration,
    storm_patience: Duration,
    job_spin: u32,
}

impl Shared {
    fn new(cfg: &Config) -> Shared {
        Shared {
            hist: Histogram::new(),
            storm_hist: Histogram::new(),
            requests: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
            burst_drops: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            steady_patience: cfg.steady_patience,
            storm_patience: cfg.storm_patience,
            job_spin: cfg.job_spin,
        }
    }

    /// A fresh job: fixed spin work plus the processed tally.
    fn make_job(self: &Arc<Shared>) -> Job {
        let shared = Arc::clone(self);
        Box::new(move || {
            for _ in 0..shared.job_spin {
                std::hint::spin_loop();
            }
            shared.processed.fetch_add(1, Ordering::Relaxed);
        })
    }
}

/// One connection's life within one phase: `reqs` sequential requests.
async fn connection_n<Q>(
    phase: Phase,
    queue: Arc<Q>,
    shared: Arc<Shared>,
    gate: CancelGate,
    reqs: usize,
) where
    Q: PollTransferer<Job> + TimedSyncChannel<Job> + Send + Sync + 'static,
{
    for i in 0..reqs {
        match phase {
            Phase::Steady => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                probe!(ServerRequests);
                let t0 = Instant::now();
                let send = future::send_timed(
                    &queue,
                    shared.make_job(),
                    Deadline::after(shared.steady_patience),
                );
                match send.await {
                    Ok(()) => shared.hist.record(t0.elapsed().as_nanos() as u64),
                    Err(_) => {
                        shared.timeouts.fetch_add(1, Ordering::Relaxed);
                        probe!(ServerTimeouts);
                    }
                }
            }
            Phase::Burst => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                probe!(ServerRequests);
                if queue.offer(shared.make_job()).is_err() {
                    shared.burst_drops.fetch_add(1, Ordering::Relaxed);
                    probe!(ServerBurstDrops);
                }
                // One scheduler tick per *connection*, after its burst:
                // the offers within a burst land back-to-back (that is
                // what makes it a burst), but without any tick a host with
                // fewer cores than driver threads starves the pool workers
                // for the whole phase and every variant drops 100 % — the
                // phase would measure the scheduler, not the queue.
                if i + 1 == reqs {
                    std::thread::yield_now();
                }
            }
            Phase::Storm => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                probe!(ServerRequests);
                let t0 = Instant::now();
                let send = future::send_timed(
                    &queue,
                    shared.make_job(),
                    Deadline::after(shared.storm_patience),
                );
                let outcome = send.await;
                shared.storm_hist.record(t0.elapsed().as_nanos() as u64);
                match outcome {
                    Ok(()) => shared.hist.record(t0.elapsed().as_nanos() as u64),
                    Err(_) => {
                        shared.timeouts.fetch_add(1, Ordering::Relaxed);
                        probe!(ServerTimeouts);
                    }
                }
            }
            Phase::Wave => {
                // A fired wave ends the connection; requests it never
                // issued are neither requests nor cancels.
                if gate.is_fired() {
                    break;
                }
                shared.requests.fetch_add(1, Ordering::Relaxed);
                probe!(ServerRequests);
                let t0 = Instant::now();
                let send = future::send_timed(
                    &queue,
                    shared.make_job(),
                    Deadline::after(shared.steady_patience),
                );
                match gate.wrap(send).await {
                    Some(Ok(())) => shared.hist.record(t0.elapsed().as_nanos() as u64),
                    Some(Err(_)) => {
                        shared.timeouts.fetch_add(1, Ordering::Relaxed);
                        probe!(ServerTimeouts);
                    }
                    None => {
                        shared.cancels.fetch_add(1, Ordering::Relaxed);
                        probe!(ServerCancels);
                    }
                }
            }
        }
    }
}

/// Runs one phase for every connection, split across the driver threads.
/// Returns mean ns/request over the requests the phase actually issued.
fn drive_phase<Q>(phase: Phase, queue: &Arc<Q>, cfg: &Config, shared: &Arc<Shared>) -> f64
where
    Q: PollTransferer<Job> + TimedSyncChannel<Job> + Send + Sync + 'static,
{
    let gate = CancelGate::new();
    let reqs = phase.requests_per_connection(cfg);
    let per_driver = cfg.connections.div_ceil(cfg.drivers);
    let issued_before = shared.requests.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut drivers = Vec::with_capacity(cfg.drivers);
    for d in 0..cfg.drivers {
        let conns = per_driver.min(cfg.connections.saturating_sub(d * per_driver));
        if conns == 0 {
            break;
        }
        let queue = Arc::clone(queue);
        let shared = Arc::clone(shared);
        let gate = gate.clone();
        drivers.push(std::thread::spawn(move || {
            let futures: Vec<_> = (0..conns)
                .map(|_| {
                    connection_n(
                        phase,
                        Arc::clone(&queue),
                        Arc::clone(&shared),
                        gate.clone(),
                        reqs,
                    )
                })
                .collect();
            block_on_all(futures);
        }));
    }
    if phase == Phase::Wave {
        std::thread::sleep(cfg.wave_delay);
        gate.fire();
    }
    for d in drivers {
        d.join().expect("driver thread panicked");
    }
    let elapsed = start.elapsed();
    let issued = (shared.requests.load(Ordering::Relaxed) - issued_before).max(1);
    elapsed.as_nanos() as f64 / issued as f64
}

/// Whole-run scenario totals for one variant.
struct Totals {
    requests: u64,
    timeouts: u64,
    cancels: u64,
    burst_drops: u64,
}

/// Runs the four-phase scenario over one queue variant: a worker pool
/// consuming from `queue`, connections dispatching into it.
fn run_variant<Q>(name: &str, queue: Arc<Q>, cfg: &Config, report: &mut FigureReport) -> Totals
where
    Q: PollTransferer<Job> + TimedSyncChannel<Job> + Send + Sync + 'static,
{
    let before = synq_obs::StatsSnapshot::take();
    let shared = Arc::new(Shared::new(cfg));
    let pool = ThreadPool::new(
        Arc::clone(&queue) as Arc<dyn TimedSyncChannel<Job>>,
        PoolConfig {
            core_pool_size: cfg.workers,
            max_pool_size: cfg.workers,
            keep_alive: Duration::from_secs(60),
        },
    );
    // Jobs arrive through the channel, never through `execute` — the pool
    // must have its takers parked before the first dispatch.
    assert_eq!(pool.prestart_core_workers(), cfg.workers);

    let mut values = Vec::with_capacity(Phase::ALL.len());
    for phase in Phase::ALL {
        let ns = drive_phase(phase, &queue, cfg, &shared);
        eprintln!(
            "  server {name:>20} {:>6} -> {ns:>12.0} ns/request",
            phase.name()
        );
        values.push(ns);
    }
    pool.shutdown();
    pool.join();

    let totals = Totals {
        requests: shared.requests.load(Ordering::Relaxed),
        timeouts: shared.timeouts.load(Ordering::Relaxed),
        cancels: shared.cancels.load(Ordering::Relaxed),
        burst_drops: shared.burst_drops.load(Ordering::Relaxed),
    };
    // The always-on totals go in explicitly; drop same-named probe deltas
    // from a stats build so each key appears once (combiner-bench rule).
    let mut counters = counter_deltas_since(&before);
    counters.retain(|(k, _)| !k.starts_with("server."));
    counters.push(("server.requests".into(), totals.requests));
    counters.push(("server.timeouts".into(), totals.timeouts));
    counters.push(("server.cancels".into(), totals.cancels));
    counters.push(("server.burst_drops".into(), totals.burst_drops));
    // The storm-phase distribution rides along as counters: every storm
    // dispatch (lapsed or not) is in it, so `storm_p999_ns` is the phase's
    // tail with timeout lateness included — the number the acceptance gate
    // compares across PRs.
    if let Some(storm) = shared.storm_hist.summary() {
        eprintln!(
            "  server {name:>20} storm  -> p50={} p99={} p999={} max={} ns ({} spans)",
            storm.p50, storm.p99, storm.p999, storm.max, storm.count
        );
        counters.push(("server.storm_spans".into(), storm.count));
        counters.push(("server.storm_p50_ns".into(), storm.p50));
        counters.push(("server.storm_p99_ns".into(), storm.p99));
        counters.push(("server.storm_p999_ns".into(), storm.p999));
        counters.push(("server.storm_max_ns".into(), storm.max));
    }
    let latency = shared.hist.summary();
    if let Some(lat) = &latency {
        eprintln!(
            "  server {name:>20} tails  -> p50={} p99={} p999={} max={} ns \
             ({} spans; {} timeouts, {} cancels, {} drops)",
            lat.p50,
            lat.p99,
            lat.p999,
            lat.max,
            lat.count,
            totals.timeouts,
            totals.cancels,
            totals.burst_drops
        );
    }
    report.push_series_full(name.to_string(), values, counters, latency);
    totals
}

fn main() -> ExitCode {
    let cfg = Config::from_env();
    eprintln!(
        "server bench: {} connections on {} drivers -> {} workers ({} cores); \
         phases: steady/burst/storm/wave",
        cfg.connections,
        cfg.drivers,
        cfg.workers,
        bench_cores()
    );
    let mut report = FigureReport::new(
        "server",
        "Dispatch server: async connections through a rendezvous channel into the pool",
        "phase",
        "ns/request",
        vec![1, 2, 3, 4],
    );

    let mut storm_timeouts = 0u64;
    let fair: Arc<SyncDualQueue<Job>> = Arc::new(SyncDualQueue::new());
    storm_timeouts += run_variant("new-fair", fair, &cfg, &mut report).timeouts;
    let striped: Arc<StripedSyncQueue<Job>> = Arc::new(StripedSyncQueue::with_lanes(STRIPED_LANES));
    storm_timeouts += run_variant(
        &format!("new-fair-striped{STRIPED_LANES}"),
        striped,
        &cfg,
        &mut report,
    )
    .timeouts;
    let combiner: Arc<CombinerSyncQueue<Job>> = Arc::new(CombinerSyncQueue::new());
    storm_timeouts += run_variant("new-combiner", combiner, &cfg, &mut report).timeouts;
    let buffered: Arc<BufferedChannel<Job>> = Arc::new(BufferedChannel::bounded(BUFFER_CAP));
    storm_timeouts += run_variant(
        &format!("transfer-bounded{BUFFER_CAP}"),
        buffered,
        &cfg,
        &mut report,
    )
    .timeouts;

    println!("{}", report.to_table());
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
    match write_bench_server(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_server.json: {e}"),
    }

    let assert_storm = std::env::var("SYNQ_SERVER_ASSERT").map(|v| v != "0") == Ok(true);
    if assert_storm && storm_timeouts == 0 {
        eprintln!(
            "error: the timeout storm recorded zero server.timeouts across every \
             variant (SYNQ_SERVER_ASSERT=1) — the storm patience no longer \
             undershoots the drain rate"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
