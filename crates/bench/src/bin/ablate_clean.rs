//! A4 — cancelled-node cleaning under the paper's buildup scenario:
//! "items are offered at a very high rate, but with a very low time-out
//! patience" and no consumers. Reports the *live-node watermark* (nodes
//! still linked) after each burst, which head-absorption must keep small.

use std::time::Duration;
use synq::{SyncDualQueue, SyncDualStack, TimedSyncChannel};
use synq_bench::report::FigureReport;

fn main() {
    let quick = synq_bench::quick_mode();
    let bursts: Vec<usize> = if quick {
        vec![100, 1_000]
    } else {
        vec![100, 1_000, 10_000, 50_000]
    };
    let mut report = FigureReport::new(
        "ablate_clean",
        "A4: cancelled-node watermark after an offer storm (lower is better)",
        "offers",
        "linked nodes",
        bursts.clone(),
    );

    let mut q_water = Vec::new();
    let mut s_water = Vec::new();
    for &n in &bursts {
        let q: SyncDualQueue<u64> = SyncDualQueue::new();
        for i in 0..n {
            let _ = q.offer_timeout(i as u64, Duration::from_nanos(1));
        }
        let _ = q.poll(); // one arrival absorbs the cancelled prefix
        q_water.push(q.linked_nodes() as f64);

        let s: SyncDualStack<u64> = SyncDualStack::new();
        for i in 0..n {
            let _ = s.offer_timeout(i as u64, Duration::from_nanos(1));
        }
        let _ = s.poll();
        s_water.push(s.linked_nodes() as f64);
        eprintln!(
            "  ablate_clean offers={n:<6} queue-watermark={} stack-watermark={}",
            q_water.last().unwrap(),
            s_water.last().unwrap()
        );
    }
    report.push_series("dual-queue".into(), q_water);
    report.push_series("dual-stack".into(), s_water);
    println!("{}", report.to_table());
    let _ = report.write_json();
}
