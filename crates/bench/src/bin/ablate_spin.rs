//! A1 — spin-then-park vs. park-immediately (paper "Pragmatics"):
//! sweeps the spin budget on both new algorithms under the F3 workload.
//!
//! Expected shape: on a multiprocessor, a moderate spin budget wins under
//! saturation (it catches the producer/consumer "flyby"); spinning is
//! useless on a uniprocessor.

use synq_bench::algos::Algo;
use synq_bench::runner::{finish, run_handoff_figure};
use synq_bench::workload::HandoffShape;
use synq_bench::PAIR_LEVELS;

fn main() {
    let algos = [
        Algo::NewFairSpin(0),
        Algo::NewFair, // adaptive default
        Algo::NewFairSpin(320),
        Algo::NewUnfairSpin(0),
        Algo::NewUnfair,
        Algo::NewUnfairSpin(320),
    ];
    let report = run_handoff_figure(
        "ablate_spin",
        "A1: spin budget ablation (0 = park immediately)",
        "pairs",
        PAIR_LEVELS,
        &algos,
        HandoffShape::pairs,
    );
    finish(report);
}
