//! Figure 4 — synchronous handoff: 1 producer, N consumers.

use synq_bench::runner::{finish, run_handoff_figure};
use synq_bench::workload::HandoffShape;
use synq_bench::{BLOCKING_ALGOS, FAN_LEVELS};

fn main() {
    let report = run_handoff_figure(
        "figure4",
        "synchronous handoff: 1 producer, N consumers",
        "consumers",
        FAN_LEVELS,
        BLOCKING_ALGOS,
        HandoffShape::fan_out,
    );
    finish(report);
}
