//! Figure 5 — synchronous handoff: N producers, 1 consumer.

use synq_bench::runner::{finish, run_handoff_figure};
use synq_bench::workload::HandoffShape;
use synq_bench::{BLOCKING_ALGOS, FAN_LEVELS};

fn main() {
    let report = run_handoff_figure(
        "figure5",
        "synchronous handoff: N producers, 1 consumer",
        "producers",
        FAN_LEVELS,
        BLOCKING_ALGOS,
        HandoffShape::fan_in,
    );
    finish(report);
}
