//! A3 — elimination arena size sweep on the dual stack (paper §5).
//!
//! The paper's finding: elimination pays only under "artificially extreme
//! contention"; otherwise the arena visit is pure overhead.

use synq_bench::algos::Algo;
use synq_bench::runner::{finish, run_handoff_figure};
use synq_bench::workload::HandoffShape;
use synq_bench::PAIR_LEVELS;

fn main() {
    let algos = [
        Algo::NewUnfair,
        Algo::NewElim(0),
        Algo::NewElim(1),
        Algo::NewElim(4),
        Algo::NewElim(16),
    ];
    let report = run_handoff_figure(
        "ablate_elim",
        "A3: elimination arena size (0 = arena disabled)",
        "pairs",
        PAIR_LEVELS,
        &algos,
        HandoffShape::pairs,
    );
    finish(report);
}
