//! Prints markdown tables for every figure JSON found under
//! `target/figures/` (or `SYNQ_FIGURE_DIR`) — the source material for
//! EXPERIMENTS.md. Run the figure binaries first. Also refreshes the
//! repo-root `BENCH_headline.json` from the freshest handoff figure.
//!
//! With `--check`, instead validates the repo-root `BENCH_*.json` files
//! (presence + schema revision) and exits nonzero with a clear message on
//! the first problem — the guard CI and the perf-regression driver run
//! before trusting the recorded baselines.
//!
//! Every failure path prints a one-line diagnosis and exits with status 1;
//! nothing in this binary panics on bad input.

use std::process::ExitCode;
use synq_bench::json::Json;
use synq_bench::report::{
    async_path, check_bench_schema, combiner_path, headline_path, park_path, read_bench_file,
    reclaim_path, ring_path, server_path, striped_path, wait_strategy_path, write_bench_async,
    write_bench_combiner, write_bench_headline, write_bench_park, write_bench_reclaim,
    write_bench_ring, write_bench_server, write_bench_striped, write_bench_wait_strategy,
    FigureReport,
};

/// The repo-root perf-trajectory files: (resolved path, schema family).
fn bench_files() -> [(std::path::PathBuf, &'static str); 9] {
    [
        (headline_path(), "headline"),
        (wait_strategy_path(), "wait-strategy"),
        (async_path(), "async"),
        (striped_path(), "striped"),
        (ring_path(), "ring"),
        (reclaim_path(), "reclaim"),
        (combiner_path(), "combiner"),
        (server_path(), "server"),
        (park_path(), "park"),
    ]
}

/// Keys under which a BENCH file may embed a figure report.
const FIGURE_KEYS: [&str; 3] = ["sweep", "handoff", "executor"];

/// Validates every schema rev 3 `latency` block embedded in `doc`: the
/// percentiles of each must be monotone (p50 ≤ p90 ≤ p99 ≤ p999 ≤ max) —
/// the invariant a histogram walk cannot violate, so a violation means a
/// corrupt or hand-edited file. Returns how many series carried a block.
fn check_latency_blocks(doc: &Json, path: &std::path::Path) -> Result<usize, String> {
    let mut with_latency = 0;
    for key in FIGURE_KEYS {
        let Some(fig) = doc.get(key) else { continue };
        let report = FigureReport::from_json(fig)
            .map_err(|e| format!("{}: `{key}` figure: {e}", path.display()))?;
        for s in &report.series {
            let Some(lat) = &s.latency else { continue };
            if !lat.is_monotone() {
                return Err(format!(
                    "{}: `{key}` series `{}`: latency percentiles not monotone \
                     (p50={} p90={} p99={} p999={} max={})",
                    path.display(),
                    s.name,
                    lat.p50,
                    lat.p90,
                    lat.p99,
                    lat.p999,
                    lat.max
                ));
            }
            with_latency += 1;
        }
    }
    Ok(with_latency)
}

/// `--check`: every BENCH file must exist, parse, and carry a known schema;
/// any recorded latency block must have monotone percentiles; and the
/// server file — whose whole point is the tail — must carry distributions
/// for at least three queue variants.
fn check_bench() -> ExitCode {
    let mut ok = true;
    for (path, family) in bench_files() {
        let verdict = read_bench_file(&path, family).and_then(|doc| {
            let n = check_latency_blocks(&doc, &path)?;
            if family == "server" && n < 3 {
                return Err(format!(
                    "{}: server file has {n} latency series, need ≥ 3 queue variants",
                    path.display()
                ));
            }
            Ok(n)
        });
        match verdict {
            Ok(0) => eprintln!("ok: {}", path.display()),
            Ok(n) => eprintln!("ok: {} ({n} latency series)", path.display()),
            Err(e) => {
                eprintln!("error: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Refuses to clobber an existing BENCH file whose schema this binary does
/// not understand (a newer revision, or not a synq-bench file at all).
fn guard_overwrite(path: &std::path::Path, family: &str) -> Result<(), String> {
    let Ok(data) = std::fs::read_to_string(path) else {
        return Ok(()); // absent: we are creating it
    };
    let doc = Json::parse(&data).map_err(|e| {
        format!(
            "{}: invalid JSON: {e} — refusing to overwrite",
            path.display()
        )
    })?;
    check_bench_schema(&doc, family)
        .map(|_| ())
        .map_err(|e| format!("{}: {e} — refusing to overwrite", path.display()))
}

fn print_markdown(report: &FigureReport) {
    println!("## {} — {} ({})\n", report.id, report.title, report.unit);
    print!("| {} |", report.x_label);
    for s in &report.series {
        print!(" {} |", s.name);
    }
    println!();
    print!("|---:|");
    for _ in &report.series {
        print!("---:|");
    }
    println!();
    for (row, level) in report.levels.iter().enumerate() {
        print!("| {level} |");
        for s in &report.series {
            print!(" {:.0} |", s.values[row]);
        }
        println!();
    }
    println!();
    // Probe-counter deltas (stats builds only): one row per algorithm,
    // whole-sweep totals.
    if report.series.iter().any(|s| !s.counters.is_empty()) {
        println!("### {} — probe counters (whole sweep)\n", report.id);
        for s in &report.series {
            if s.counters.is_empty() {
                continue;
            }
            let cells: Vec<String> = s.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("- **{}**: {}", s.name, cells.join(", "));
        }
        println!();
    }
}

fn run() -> Result<(), String> {
    let dir = std::env::var("SYNQ_FIGURE_DIR").unwrap_or_else(|_| "target/figures".into());
    let entries = std::fs::read_dir(&dir).map_err(|e| {
        format!("cannot read figure directory {dir}: {e}; run the figure binaries first")
    })?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no figure JSON in {dir}; run the figure binaries first");
        return Ok(());
    }
    let mut reports = Vec::new();
    for path in paths {
        let data = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let report = match Json::parse(&data).and_then(|j| FigureReport::from_json(&j)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        print_markdown(&report);
        reports.push(report);
    }
    // Refresh the repo-root perf-trajectory file from the best available
    // handoff/executor figures (headline-* preferred, figure3/6 fallback).
    let pick = |ids: [&str; 2]| {
        ids.iter()
            .find_map(|id| reports.iter().find(|r| r.id == *id))
    };
    if let Some(handoff) = pick(["headline-handoff", "figure3"]) {
        let pool = pick(["headline-pool", "figure6"]);
        guard_overwrite(&headline_path(), "headline")?;
        let path = write_bench_headline(handoff, pool)
            .map_err(|e| format!("failed to write BENCH_headline.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    // The sweep files follow the same refresh-if-present rule.
    if let Some(sweep) = reports.iter().find(|r| r.id == "wait_strategy") {
        guard_overwrite(&wait_strategy_path(), "wait-strategy")?;
        let path = write_bench_wait_strategy(sweep)
            .map_err(|e| format!("failed to write BENCH_wait_strategy.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(sweep) = reports.iter().find(|r| r.id == "async_handoff") {
        guard_overwrite(&async_path(), "async")?;
        let path = write_bench_async(sweep)
            .map_err(|e| format!("failed to write BENCH_async.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(sweep) = reports.iter().find(|r| r.id == "scalability-striped") {
        guard_overwrite(&striped_path(), "striped")?;
        let path = write_bench_striped(sweep)
            .map_err(|e| format!("failed to write BENCH_striped.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(sweep) = reports.iter().find(|r| r.id == "ring") {
        guard_overwrite(&ring_path(), "ring")?;
        let path =
            write_bench_ring(sweep).map_err(|e| format!("failed to write BENCH_ring.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(sweep) = reports.iter().find(|r| r.id == "reclaim") {
        guard_overwrite(&reclaim_path(), "reclaim")?;
        let path = write_bench_reclaim(sweep)
            .map_err(|e| format!("failed to write BENCH_reclaim.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(sweep) = reports.iter().find(|r| r.id == "combiner") {
        guard_overwrite(&combiner_path(), "combiner")?;
        let path = write_bench_combiner(sweep)
            .map_err(|e| format!("failed to write BENCH_combiner.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(sweep) = reports.iter().find(|r| r.id == "server") {
        guard_overwrite(&server_path(), "server")?;
        let path = write_bench_server(sweep)
            .map_err(|e| format!("failed to write BENCH_server.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(sweep) = reports.iter().find(|r| r.id == "park") {
        guard_overwrite(&park_path(), "park")?;
        let path =
            write_bench_park(sweep).map_err(|e| format!("failed to write BENCH_park.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check_bench();
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
