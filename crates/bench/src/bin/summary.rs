//! Prints markdown tables for every figure JSON found under
//! `target/figures/` (or `SYNQ_FIGURE_DIR`) — the source material for
//! EXPERIMENTS.md. Run the figure binaries first.

use synq_bench::report::FigureReport;

fn main() -> std::io::Result<()> {
    let dir = std::env::var("SYNQ_FIGURE_DIR").unwrap_or_else(|_| "target/figures".into());
    let mut paths: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no figure JSON in {dir}; run the figure binaries first");
        return Ok(());
    }
    for path in paths {
        let data = std::fs::read_to_string(&path)?;
        let report: FigureReport = match serde_json::from_str(&data) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        println!("## {} — {} ({})\n", report.id, report.title, report.unit);
        // Header.
        print!("| {} |", report.x_label);
        for s in &report.series {
            print!(" {} |", s.name);
        }
        println!();
        print!("|---:|");
        for _ in &report.series {
            print!("---:|");
        }
        println!();
        for (row, level) in report.levels.iter().enumerate() {
            print!("| {level} |");
            for s in &report.series {
                print!(" {:.0} |", s.values[row]);
            }
            println!();
        }
        println!();
    }
    Ok(())
}
