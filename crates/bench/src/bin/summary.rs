//! Prints markdown tables for every figure JSON found under
//! `target/figures/` (or `SYNQ_FIGURE_DIR`) — the source material for
//! EXPERIMENTS.md. Run the figure binaries first. Also refreshes the
//! repo-root `BENCH_headline.json` from the freshest handoff figure.

use synq_bench::json::Json;
use synq_bench::report::{
    write_bench_async, write_bench_headline, write_bench_wait_strategy, FigureReport,
};

fn main() -> std::io::Result<()> {
    let dir = std::env::var("SYNQ_FIGURE_DIR").unwrap_or_else(|_| "target/figures".into());
    let mut paths: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no figure JSON in {dir}; run the figure binaries first");
        return Ok(());
    }
    let mut reports = Vec::new();
    for path in paths {
        let data = std::fs::read_to_string(&path)?;
        let report = match Json::parse(&data).and_then(|j| FigureReport::from_json(&j)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        println!("## {} — {} ({})\n", report.id, report.title, report.unit);
        // Header.
        print!("| {} |", report.x_label);
        for s in &report.series {
            print!(" {} |", s.name);
        }
        println!();
        print!("|---:|");
        for _ in &report.series {
            print!("---:|");
        }
        println!();
        for (row, level) in report.levels.iter().enumerate() {
            print!("| {level} |");
            for s in &report.series {
                print!(" {:.0} |", s.values[row]);
            }
            println!();
        }
        println!();
        reports.push(report);
    }
    // Refresh the repo-root perf-trajectory file from the best available
    // handoff/executor figures (headline-* preferred, figure3/6 fallback).
    let pick = |ids: [&str; 2]| {
        ids.iter()
            .find_map(|id| reports.iter().find(|r| r.id == *id))
    };
    if let Some(handoff) = pick(["headline-handoff", "figure3"]) {
        let pool = pick(["headline-pool", "figure6"]);
        match write_bench_headline(handoff, pool) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write BENCH_headline.json: {e}"),
        }
    }
    // The sweep files follow the same refresh-if-present rule.
    if let Some(sweep) = reports.iter().find(|r| r.id == "wait_strategy") {
        match write_bench_wait_strategy(sweep) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write BENCH_wait_strategy.json: {e}"),
        }
    }
    if let Some(sweep) = reports.iter().find(|r| r.id == "async_handoff") {
        match write_bench_async(sweep) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write BENCH_async.json: {e}"),
        }
    }
    Ok(())
}
