//! Flat-combining rendezvous under **scheduler subversion**: the contended
//! preset (threads ≫ cores, so most waiters are asleep at any instant) run
//! over the four rendezvous families — the delegation-based combiner, the
//! classic dual queue, the striped dual queue, and the java5-fair lock
//! baseline. This is the scenario combining exists for: one running thread
//! batch-pairs on behalf of the parked majority instead of every handoff
//! paying its own wakeup chain and CAS storm.
//!
//! The combiner series records the structure's always-on sweep counters —
//! `combiner.sweeps`, `combiner.requests` (requests claimed across all
//! sweeps) and the derived `combiner.requests_per_sweep` (floored mean
//! batch size) — in the schema rev 2 per-series `counters` section, so the
//! batching claim is checkable from the JSON without a stats build.
//!
//! Emits `target/figures/combiner.json` and the repo-root
//! `BENCH_combiner.json` (overridable with `SYNQ_COMBINER_PATH`).
//!
//! With `SYNQ_COMBINER_ASSERT=1` the binary exits nonzero unless the
//! combiner actually combined: at least one sweep ran and the mean batch
//! exceeded one request per sweep under the contended preset — the CI
//! guard that delegation is exercised, not silently degenerated into
//! self-service-only operation.

use std::process::ExitCode;
use std::sync::Arc;
use synq::{CombinerSyncQueue, CombinerSyncStack, SyncChannel};
use synq_bench::algos::{make_blocking, Algo};
use synq_bench::report::{counter_deltas_since, write_bench_combiner, FigureReport};
use synq_bench::workload::{handoff_ns_per_transfer, HandoffShape};
use synq_bench::{contended_pairs, oversub_factors, quick_mode, transfers_for};

/// Lane count for the striped comparator: enough lanes to matter on a
/// multicore host without drowning the sweep in series.
const STRIPED_LANES: usize = 4;

/// Totals of the combiner's always-on counters across one series.
struct SweepTotals {
    sweeps: u64,
    requests: u64,
}

impl SweepTotals {
    fn requests_per_sweep(&self) -> u64 {
        self.requests.checked_div(self.sweeps).unwrap_or(0)
    }
}

/// Runs the flat-combining series (queue or stack) across `levels`,
/// pushing values plus the sweep-batch counters into `report`.
fn combiner_series(
    label: &str,
    lifo: bool,
    levels: &[usize],
    quick: bool,
    report: &mut FigureReport,
) -> SweepTotals {
    let before = synq_obs::StatsSnapshot::take();
    let mut values = Vec::with_capacity(levels.len());
    let mut totals = SweepTotals {
        sweeps: 0,
        requests: 0,
    };
    for &level in levels {
        let shape = HandoffShape::pairs(level);
        let transfers = transfers_for(shape.producers + shape.consumers, quick);
        // Keep the concrete handle: the always-on counters live on it.
        let (ns, sweeps, requests) = if lifo {
            let s: Arc<CombinerSyncStack<u64>> = Arc::new(CombinerSyncStack::new());
            let channel: Arc<dyn SyncChannel<u64>> = Arc::clone(&s) as _;
            let ns = handoff_ns_per_transfer(channel, shape, transfers);
            (ns, s.sweeps(), s.swept_requests())
        } else {
            let q: Arc<CombinerSyncQueue<u64>> = Arc::new(CombinerSyncQueue::new());
            let channel: Arc<dyn SyncChannel<u64>> = Arc::clone(&q) as _;
            let ns = handoff_ns_per_transfer(channel, shape, transfers);
            (ns, q.sweeps(), q.swept_requests())
        };
        totals.sweeps += sweeps;
        totals.requests += requests;
        let batch = requests.checked_div(sweeps).unwrap_or(0);
        eprintln!(
            "  combiner {label:>20} pairs={level:<3} -> {ns:>12.0} ns/transfer \
             ({transfers} transfers, {sweeps} sweeps, ~{batch} requests/sweep)"
        );
        values.push(ns);
    }
    // The always-on totals go in explicitly; drop any same-named probe
    // deltas from a stats build so each key appears once.
    let mut counters = counter_deltas_since(&before);
    counters.retain(|(k, _)| k != "combiner.sweeps" && k != "combiner.requests");
    counters.push(("combiner.sweeps".into(), totals.sweeps));
    counters.push(("combiner.requests".into(), totals.requests));
    counters.push((
        "combiner.requests_per_sweep".into(),
        totals.requests_per_sweep(),
    ));
    report.push_series_with_counters(label.to_string(), values, counters);
    totals
}

/// Runs one comparator series (classic / striped / java5) across `levels`.
fn comparator_series(algo: Algo, levels: &[usize], quick: bool, report: &mut FigureReport) {
    let before = synq_obs::StatsSnapshot::take();
    let mut values = Vec::with_capacity(levels.len());
    for &level in levels {
        let shape = HandoffShape::pairs(level);
        let transfers = transfers_for(shape.producers + shape.consumers, quick);
        let ns = handoff_ns_per_transfer(make_blocking(algo), shape, transfers);
        eprintln!(
            "  combiner {:>20} pairs={level:<3} -> {ns:>12.0} ns/transfer ({transfers} transfers)",
            algo.name()
        );
        values.push(ns);
    }
    report.push_series_with_counters(algo.name(), values, counter_deltas_since(&before));
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let levels = contended_pairs(quick);
    eprintln!(
        "combiner bench: contended preset, oversubscription factors {:?} ({} cores)",
        oversub_factors(quick),
        synq_bench::bench_cores()
    );
    let mut report = FigureReport::new(
        "combiner",
        "Flat combining under scheduler subversion (threads >> cores)",
        "pairs",
        "ns/transfer",
        levels.clone(),
    );

    let totals = combiner_series("new-combiner", false, &levels, quick, &mut report);
    combiner_series("new-combiner-stack", true, &levels, quick, &mut report);
    comparator_series(Algo::NewFair, &levels, quick, &mut report);
    comparator_series(
        Algo::NewFairStriped(STRIPED_LANES),
        &levels,
        quick,
        &mut report,
    );
    comparator_series(Algo::Java5Fair, &levels, quick, &mut report);

    println!("{}", report.to_table());
    eprintln!(
        "combiner totals: {} sweeps, {} requests claimed, ~{} requests/sweep",
        totals.sweeps,
        totals.requests,
        totals.requests_per_sweep()
    );
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
    match write_bench_combiner(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_combiner.json: {e}"),
    }

    let assert_batching = std::env::var("SYNQ_COMBINER_ASSERT").map(|v| v != "0") == Ok(true);
    if assert_batching && (totals.sweeps == 0 || totals.requests <= totals.sweeps) {
        eprintln!(
            "error: the combiner queue averaged <= 1 request per sweep under the \
             contended preset ({} requests / {} sweeps; SYNQ_COMBINER_ASSERT=1)",
            totals.requests, totals.sweeps
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
