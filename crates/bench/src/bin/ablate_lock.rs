//! A2 — is the Java 5 fair-mode penalty the FIFO *pairing* or the fair
//! *entry lock*? Runs the Java 5 structure with (a) fair lists + fair
//! lock (the real fair mode), (b) fair lists + barging lock, and (c) the
//! unfair baseline.
//!
//! The paper attributes the penalty to the lock: "the fair-mode version
//! uses a fair-mode entry lock … This causes pileups that block the
//! threads that will fulfill waiting threads."

use synq_bench::algos::Algo;
use synq_bench::runner::{finish, run_handoff_figure};
use synq_bench::workload::HandoffShape;
use synq_bench::PAIR_LEVELS;

fn main() {
    let algos = [
        Algo::Java5Fair,
        Algo::Java5FairListsUnfairLock,
        Algo::Java5Unfair,
    ];
    let report = run_handoff_figure(
        "ablate_lock",
        "A2: Java5 fair-lock vs fair-lists ablation",
        "pairs",
        PAIR_LEVELS,
        &algos,
        HandoffShape::pairs,
    );
    finish(report);
}
