//! Wait-path microbenchmarks: the futex parker against the portable
//! condvar baseline, plus the calibrated adaptive spin policy against
//! fixed budgets (PR 10).
//!
//! Three groups of series, one value each (levels axis is the single
//! point `1` — these are not sweeps; each value is the fastest of a few
//! repetitions, see [`run_series`]):
//!
//! * `roundtrip/*` — cross-thread park/unpark ping-pong, ns per round
//!   trip (two parks + two unparks). `default` is [`synq_primitives::Parker`]
//!   (raw futex on Linux x86_64/aarch64, condvar elsewhere); `condvar` is
//!   the portable backend via [`synq_primitives::CondvarParker`]. On Linux
//!   the gap is the futex win; off Linux the two coincide.
//! * `timeout/*` — uncontended `park_timeout(50µs)` churn, ns per expired
//!   wait: the timed-wait path the timer wheel drives.
//! * `spin/*` — pairwise rendezvous handoff through the fair dual queue
//!   under `adaptive` / `park-now` / `spin32` / `spin320` policies,
//!   ns/transfer. `adaptive` must track the best fixed policy without
//!   hand-tuning.
//!
//! Emits `target/figures/park.json` and the repo-root `BENCH_park.json`
//! (overridable with `SYNQ_PARK_PATH`).
//!
//! With `SYNQ_PARK_ASSERT=1` the binary exits nonzero unless the default
//! parker's round trip is no slower than the condvar baseline (within
//! [`SLACK`] for scheduler noise) and the adaptive spin policy lands
//! within [`SLACK`] of the best fixed policy.

use std::process::ExitCode;
use std::time::{Duration, Instant};
use synq_bench::algos::{make_policy_channel, Structure, WAIT_STRATEGIES};
use synq_bench::report::{counter_deltas_since, write_bench_park, FigureReport};
use synq_bench::workload::{handoff_ns_per_transfer, HandoffShape};
use synq_bench::{quick_mode, transfers_for};
use synq_primitives::{CondvarParker, Parker};

/// Multiplicative tolerance for the self-check inequalities. Both sides of
/// each comparison are medians-of-one-run on a shared CI box; equality
/// plus jitter must not fail the build.
const SLACK: f64 = 1.25;

/// Cross-thread ping-pong: the echo thread parks until poked, then pokes
/// back. One round trip = two unparks + two parks, the exact pattern of a
/// synchronous queue handoff (fulfiller wakes waiter, waiter's next
/// operation wakes the fulfiller's side).
///
/// The parker types have no common trait (that indirection is what the
/// futex backend removes), so the drive loop is a macro over the concrete
/// pair.
macro_rules! pingpong_ns {
    ($parker:ty, $rounds:expr) => {{
        let rounds: usize = $rounds;
        let home = <$parker>::new();
        let home_up = home.unparker();
        let echo = <$parker>::new();
        let echo_up = echo.unparker();
        let t = std::thread::spawn(move || {
            for _ in 0..rounds {
                echo.park();
                home_up.unpark();
            }
        });
        let start = Instant::now();
        for _ in 0..rounds {
            echo_up.unpark();
            home.park();
        }
        let elapsed = start.elapsed();
        t.join().unwrap();
        elapsed.as_nanos() as f64 / rounds as f64
    }};
}

/// Uncontended timed-wait churn: every wait expires (nobody unparks), so
/// this measures the timeout arm — publish, sleep, retract — in isolation.
macro_rules! timeout_ns {
    ($parker:ty, $rounds:expr) => {{
        let rounds: usize = $rounds;
        let p = <$parker>::new();
        let start = Instant::now();
        for _ in 0..rounds {
            let woke = p.park_timeout(Duration::from_micros(50));
            assert!(!woke, "nobody unparks in the timeout series");
        }
        start.elapsed().as_nanos() as f64 / rounds as f64
    }};
}

/// Runs `measure` `reps` times with a probe-counter snapshot around the
/// whole batch and records the *fastest* repetition as a single-point
/// series. On a shared (and on CI, often single-core) host any one timing
/// is hostage to scheduler placement; the minimum is the reproducible
/// floor of the operation itself, which is what the futex-vs-condvar and
/// adaptive-vs-fixed comparisons are about. The `park.*` deltas cover all
/// repetitions — they are evidence of which backend path ran, not a rate.
fn run_series(
    report: &mut FigureReport,
    label: &str,
    reps: usize,
    mut measure: impl FnMut() -> f64,
) {
    let before = synq_obs::StatsSnapshot::take();
    let ns = (0..reps).map(|_| measure()).fold(f64::INFINITY, f64::min);
    eprintln!("  park {label:>22} -> {ns:>12.0} ns/op (min of {reps})");
    report.push_series_with_counters(label.to_owned(), vec![ns], counter_deltas_since(&before));
}

fn value_of(report: &FigureReport, name: &str) -> Option<f64> {
    report
        .series
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.values[0])
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let park_rounds = if quick { 2_000 } else { 50_000 };
    let timeout_rounds = if quick { 200 } else { 2_000 };

    let mut report = FigureReport::new(
        "park",
        "Futex parking vs condvar baseline; calibrated adaptive spin vs fixed",
        "point",
        "ns/op",
        vec![1],
    );

    // Warm both backends once (thread spawn, first futex/condvar syscalls)
    // so neither series pays first-use costs.
    let _ = pingpong_ns!(Parker, 64);
    let _ = pingpong_ns!(CondvarParker, 64);

    let reps = if quick { 2 } else { 5 };
    run_series(&mut report, "roundtrip/default", reps, || {
        pingpong_ns!(Parker, park_rounds)
    });
    run_series(&mut report, "roundtrip/condvar", reps, || {
        pingpong_ns!(CondvarParker, park_rounds)
    });
    run_series(&mut report, "timeout/default", reps, || {
        timeout_ns!(Parker, timeout_rounds)
    });
    run_series(&mut report, "timeout/condvar", reps, || {
        timeout_ns!(CondvarParker, timeout_rounds)
    });

    // Adaptive-vs-fixed handoff through one structure (the fair dual
    // queue); the full structure × strategy grid lives in the
    // `wait_strategy` binary — this is the focused check that the online
    // calibrator matches hand-tuning.
    let shape = HandoffShape::pairs(1);
    let transfers = transfers_for(shape.producers + shape.consumers, quick);
    let spin_reps = if quick { 1 } else { 3 };
    for &(name, policy) in WAIT_STRATEGIES {
        run_series(&mut report, &format!("spin/{name}"), spin_reps, || {
            handoff_ns_per_transfer(
                make_policy_channel(Structure::Fair, policy()),
                shape,
                transfers,
            )
        });
    }

    println!("{}", report.to_table());
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
    match write_bench_park(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_park.json: {e}"),
    }

    let assert_park = std::env::var("SYNQ_PARK_ASSERT").map(|v| v != "0") == Ok(true);
    if assert_park {
        let mut errors = Vec::new();
        let default_rt = value_of(&report, "roundtrip/default").unwrap();
        let condvar_rt = value_of(&report, "roundtrip/condvar").unwrap();
        if default_rt > condvar_rt * SLACK {
            errors.push(format!(
                "default parker round trip {default_rt:.0} ns exceeds condvar \
                 baseline {condvar_rt:.0} ns x{SLACK}"
            ));
        }
        let adaptive = value_of(&report, "spin/adaptive").unwrap();
        let best_fixed = WAIT_STRATEGIES
            .iter()
            .filter(|&&(name, _)| name != "adaptive")
            .filter_map(|&(name, _)| value_of(&report, &format!("spin/{name}")))
            .fold(f64::INFINITY, f64::min);
        if adaptive > best_fixed * SLACK {
            errors.push(format!(
                "adaptive spin {adaptive:.0} ns/transfer exceeds best fixed \
                 policy {best_fixed:.0} ns x{SLACK}"
            ));
        }
        if !errors.is_empty() {
            for e in &errors {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "park self-checks passed: default round trip within x{SLACK} of condvar \
             ({default_rt:.0} vs {condvar_rt:.0} ns), adaptive within x{SLACK} of best \
             fixed ({adaptive:.0} vs {best_fixed:.0} ns)"
        );
    }
    ExitCode::SUCCESS
}
