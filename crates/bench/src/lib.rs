//! Benchmark harness regenerating every figure of the PPoPP 2006
//! evaluation (§4).
//!
//! The paper's microbenchmarks "employ threads that produce and consume as
//! fast as they can; this represents the limiting case of
//! producer-consumer applications as the cost to process elements
//! approaches zero", at producer:consumer ratios N:N (Figure 3), 1:N
//! (Figure 4) and N:1 (Figure 5); the "real-world" scenario (Figure 6)
//! runs trivial tasks through a cached `ThreadPoolExecutor` whose core is
//! the synchronous queue under test.
//!
//! One binary per figure/ablation (see `src/bin/`); each prints the
//! figure's table and writes machine-readable JSON under
//! `target/figures/` for EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod algos;
pub mod hist;
pub mod json;
pub mod report;
pub mod runner;
pub mod workload;

pub use algos::{make_blocking, make_timed_job, Algo, BLOCKING_ALGOS, TIMED_ALGOS};
pub use hist::{Histogram, LatencySummary};
pub use report::{FigureReport, Series};
pub use workload::{
    batched_handoff_ns_per_transfer, executor_ns_per_task, handoff_ns_per_transfer,
    handoff_ns_per_transfer_recording, mixed_handoff_ns_per_transfer, HandoffShape,
};

/// Concurrency levels of Figures 3 and 6 (pairs / threads).
pub const PAIR_LEVELS: &[usize] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];

/// Concurrency levels of Figures 4 and 5 (consumers / producers).
pub const FAN_LEVELS: &[usize] = &[1, 2, 3, 5, 8, 12, 18, 27, 41, 62];

/// Core count the oversubscription presets are computed against.
pub fn bench_cores() -> usize {
    synq_primitives::backoff::ncpus().max(1)
}

/// Explicit oversubscription factors `k` for the contended preset: each
/// level fields `k × cores` *pairs* (so `2k × cores` threads). Recorded in
/// every BENCH JSON's `config` block so a reader can reconstruct the
/// thread counts from the host's core count instead of guessing.
///
/// Overridable with `SYNQ_BENCH_OVERSUB` (comma-separated factors, e.g.
/// `SYNQ_BENCH_OVERSUB=4,32`); factors below 2 are dropped — the preset's
/// contract is that every level oversubscribes — and the list is sorted
/// and deduplicated. An override that leaves nothing falls back to the
/// defaults.
pub fn oversub_factors(quick: bool) -> Vec<usize> {
    if let Ok(raw) = std::env::var("SYNQ_BENCH_OVERSUB") {
        let mut ks: Vec<usize> = raw
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&k| k >= 2)
            .collect();
        ks.sort_unstable();
        ks.dedup();
        if !ks.is_empty() {
            return ks;
        }
        eprintln!("SYNQ_BENCH_OVERSUB={raw:?} has no usable factors >= 2; using defaults");
    }
    if quick {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 16]
    }
}

/// The **contended** preset: pair counts chosen to oversubscribe the host
/// (threads ≫ cores), so transfers pile onto the structures faster than
/// they drain and the CAS-retry paths actually execute. The plain
/// [`PAIR_LEVELS`] sweep starts at one pair, where quick-mode runs on
/// small machines never fail a CAS and the stats counters read zero
/// (EXPERIMENTS.md P4's blind spot); every level here is already past the
/// core count, even in quick mode. Levels are `k × cores` for each
/// [`oversub_factors`] entry `k`.
pub fn contended_pairs(quick: bool) -> Vec<usize> {
    let cores = bench_cores();
    oversub_factors(quick).iter().map(|&k| cores * k).collect()
}

/// Reads the harness scale from the environment: `SYNQ_BENCH_QUICK=1`
/// shrinks transfer counts and sweeps so `cargo bench`/CI stay fast.
pub fn quick_mode() -> bool {
    std::env::var("SYNQ_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// `SYNQ_BENCH_LATENCY=1` makes the figure runners record a per-operation
/// latency [`Histogram`] for each series and emit the schema rev 3
/// `latency` block (two extra `Instant::now` calls per transfer — under
/// 3 % of the cheapest handoff; see DESIGN §4.14). Off by default so the
/// headline means stay directly comparable with earlier revisions. The
/// `server` bin records distributions unconditionally — tails are its
/// entire point.
pub fn latency_enabled() -> bool {
    std::env::var("SYNQ_BENCH_LATENCY")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Transfer count for a concurrency level: enough work to dominate thread
/// startup, scaled down as oversubscription grows.
pub fn transfers_for(threads: usize, quick: bool) -> usize {
    let base = if quick { 4_000 } else { 40_000 };
    (base / threads.max(1)).clamp(if quick { 400 } else { 2_000 }, base)
}

/// Concurrency sweep, truncated in quick mode.
pub fn sweep(levels: &[usize], quick: bool) -> Vec<usize> {
    if quick {
        levels.iter().copied().filter(|&l| l <= 8).collect()
    } else {
        levels.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_counts_scale_down_with_threads() {
        assert_eq!(transfers_for(1, false), 40_000);
        assert!(transfers_for(64, false) >= 2_000);
        assert!(transfers_for(64, false) <= transfers_for(8, false));
        assert_eq!(transfers_for(1, true), 4_000);
        assert!(transfers_for(128, true) >= 400);
    }

    #[test]
    fn quick_sweep_truncates_levels() {
        let full = sweep(PAIR_LEVELS, false);
        assert_eq!(full, PAIR_LEVELS.to_vec());
        let quick = sweep(PAIR_LEVELS, true);
        assert!(quick.iter().all(|&l| l <= 8));
        assert!(!quick.is_empty());
    }

    #[test]
    fn oversub_factors_all_oversubscribe() {
        for quick in [false, true] {
            let ks = oversub_factors(quick);
            assert!(!ks.is_empty());
            assert!(ks.iter().all(|&k| k >= 2), "factors {ks:?}");
            assert!(ks.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(oversub_factors(true).len() <= oversub_factors(false).len());
    }

    #[test]
    fn contended_levels_are_factor_times_cores() {
        let cores = bench_cores();
        for quick in [false, true] {
            assert_eq!(
                contended_pairs(quick),
                oversub_factors(quick)
                    .iter()
                    .map(|&k| k * cores)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn contended_levels_oversubscribe_the_host() {
        let cores = bench_cores();
        for quick in [false, true] {
            let levels = contended_pairs(quick);
            assert!(!levels.is_empty());
            // Every level fields at least twice as many pairs as cores —
            // each pair is two threads, so the CAS paths stay hot.
            assert!(
                levels.iter().all(|&l| l >= 2 * cores),
                "levels {levels:?} vs {cores} cores"
            );
            assert!(levels.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(contended_pairs(true).len() <= contended_pairs(false).len());
    }

    #[test]
    fn levels_match_the_paper() {
        // Figures 3/6 x-axis ticks.
        assert_eq!(PAIR_LEVELS, &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64]);
        // Figures 4/5 x-axis ticks.
        assert_eq!(FAN_LEVELS, &[1, 2, 3, 5, 8, 12, 18, 27, 41, 62]);
    }
}
