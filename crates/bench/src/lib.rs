//! Benchmark harness regenerating every figure of the PPoPP 2006
//! evaluation (§4).
//!
//! The paper's microbenchmarks "employ threads that produce and consume as
//! fast as they can; this represents the limiting case of
//! producer-consumer applications as the cost to process elements
//! approaches zero", at producer:consumer ratios N:N (Figure 3), 1:N
//! (Figure 4) and N:1 (Figure 5); the "real-world" scenario (Figure 6)
//! runs trivial tasks through a cached `ThreadPoolExecutor` whose core is
//! the synchronous queue under test.
//!
//! One binary per figure/ablation (see `src/bin/`); each prints the
//! figure's table and writes machine-readable JSON under
//! `target/figures/` for EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod algos;
pub mod json;
pub mod report;
pub mod runner;
pub mod workload;

pub use algos::{make_blocking, make_timed_job, Algo, BLOCKING_ALGOS, TIMED_ALGOS};
pub use report::{FigureReport, Series};
pub use workload::{
    batched_handoff_ns_per_transfer, executor_ns_per_task, handoff_ns_per_transfer,
    mixed_handoff_ns_per_transfer, HandoffShape,
};

/// Concurrency levels of Figures 3 and 6 (pairs / threads).
pub const PAIR_LEVELS: &[usize] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];

/// Concurrency levels of Figures 4 and 5 (consumers / producers).
pub const FAN_LEVELS: &[usize] = &[1, 2, 3, 5, 8, 12, 18, 27, 41, 62];

/// The **contended** preset: pair counts chosen to oversubscribe the host
/// (threads ≫ cores), so transfers pile onto the structures faster than
/// they drain and the CAS-retry paths actually execute. The plain
/// [`PAIR_LEVELS`] sweep starts at one pair, where quick-mode runs on
/// small machines never fail a CAS and the stats counters read zero
/// (EXPERIMENTS.md P4's blind spot); every level here is already past the
/// core count, even in quick mode.
pub fn contended_pairs(quick: bool) -> Vec<usize> {
    // Oversubscription multipliers relative to whatever the host has.
    let cores = synq_primitives::backoff::ncpus().max(1);
    let full: &[usize] = &[2, 4, 8, 16];
    let quick_levels: &[usize] = &[2, 4, 8];
    let mult = if quick { quick_levels } else { full };
    mult.iter().map(|&m| (cores * m).max(m)).collect()
}

/// Reads the harness scale from the environment: `SYNQ_BENCH_QUICK=1`
/// shrinks transfer counts and sweeps so `cargo bench`/CI stay fast.
pub fn quick_mode() -> bool {
    std::env::var("SYNQ_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Transfer count for a concurrency level: enough work to dominate thread
/// startup, scaled down as oversubscription grows.
pub fn transfers_for(threads: usize, quick: bool) -> usize {
    let base = if quick { 4_000 } else { 40_000 };
    (base / threads.max(1)).clamp(if quick { 400 } else { 2_000 }, base)
}

/// Concurrency sweep, truncated in quick mode.
pub fn sweep(levels: &[usize], quick: bool) -> Vec<usize> {
    if quick {
        levels.iter().copied().filter(|&l| l <= 8).collect()
    } else {
        levels.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_counts_scale_down_with_threads() {
        assert_eq!(transfers_for(1, false), 40_000);
        assert!(transfers_for(64, false) >= 2_000);
        assert!(transfers_for(64, false) <= transfers_for(8, false));
        assert_eq!(transfers_for(1, true), 4_000);
        assert!(transfers_for(128, true) >= 400);
    }

    #[test]
    fn quick_sweep_truncates_levels() {
        let full = sweep(PAIR_LEVELS, false);
        assert_eq!(full, PAIR_LEVELS.to_vec());
        let quick = sweep(PAIR_LEVELS, true);
        assert!(quick.iter().all(|&l| l <= 8));
        assert!(!quick.is_empty());
    }

    #[test]
    fn contended_levels_oversubscribe_the_host() {
        let cores = synq_primitives::backoff::ncpus().max(1);
        for quick in [false, true] {
            let levels = contended_pairs(quick);
            assert!(!levels.is_empty());
            // Every level fields at least twice as many pairs as cores —
            // each pair is two threads, so the CAS paths stay hot.
            assert!(
                levels.iter().all(|&l| l >= 2 * cores),
                "levels {levels:?} vs {cores} cores"
            );
            assert!(levels.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(contended_pairs(true).len() <= contended_pairs(false).len());
    }

    #[test]
    fn levels_match_the_paper() {
        // Figures 3/6 x-axis ticks.
        assert_eq!(PAIR_LEVELS, &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64]);
        // Figures 4/5 x-axis ticks.
        assert_eq!(FAN_LEVELS, &[1, 2, 3, 5, 8, 12, 18, 27, 41, 62]);
    }
}
