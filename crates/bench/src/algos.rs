//! The algorithm registry: one factory per curve in the paper's figures.

use std::sync::Arc;
use synq::{
    CombinerSyncQueue, CombinerSyncStack, SpinPolicy, StripedSyncQueue, StripedSyncStack,
    SyncChannel, SyncDualQueue, SyncDualStack, TimedSyncChannel,
};
use synq_baselines::{HansonFastSQ, HansonSQ, Java5SQ, NaiveSQ};
use synq_exchanger::EliminationSyncStack;
use synq_executor::Job;
use synq_transfer::TransferQueue;

/// The six curves of Figures 3–5 (the paper plots five; we add the naive
/// monitor queue as an extra reference point).
pub const BLOCKING_ALGOS: &[Algo] = &[
    Algo::Hanson,
    Algo::Naive,
    Algo::Java5Fair,
    Algo::Java5Unfair,
    Algo::NewFair,
    Algo::NewUnfair,
];

/// The four curves of Figure 6 (Hanson and naive cannot support the
/// executor's `offer`/timed `poll`, exactly as in the paper).
pub const TIMED_ALGOS: &[Algo] = &[
    Algo::Java5Fair,
    Algo::Java5Unfair,
    Algo::NewFair,
    Algo::NewUnfair,
];

/// Algorithm identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Hanson's three-semaphore queue (Listing 1).
    Hanson,
    /// Hanson's queue over fast-path (benaphore) semaphores (A5).
    HansonFast,
    /// The naive monitor queue (Listing 3).
    Naive,
    /// Java SE 5.0 `SynchronousQueue`, fair mode (Listing 4).
    Java5Fair,
    /// Java SE 5.0 `SynchronousQueue`, unfair mode.
    Java5Unfair,
    /// Java SE 5.0 structure with FIFO lists but a barging lock (A2).
    Java5FairListsUnfairLock,
    /// This paper: synchronous dual queue (fair).
    NewFair,
    /// This paper: synchronous dual stack (unfair).
    NewUnfair,
    /// Dual queue with a custom spin budget (A1).
    NewFairSpin(u32),
    /// Dual stack with a custom spin budget (A1).
    NewUnfairSpin(u32),
    /// Dual stack fronted by an elimination arena of the given size (A3).
    NewElim(usize),
    /// Striped dual queue with the given lane count (scalability sweep).
    NewFairStriped(usize),
    /// Striped dual stack with the given lane count (scalability sweep).
    NewUnfairStriped(usize),
    /// Flat-combining queue (delegation; FIFO within each sweep).
    NewCombiner,
    /// Flat-combining stack (delegation; LIFO within each sweep).
    NewCombinerStack,
}

impl Algo {
    /// Column label used in tables and JSON.
    pub fn name(&self) -> String {
        match self {
            Algo::Hanson => "hanson".into(),
            Algo::HansonFast => "hanson-fast".into(),
            Algo::Naive => "naive".into(),
            Algo::Java5Fair => "java5-fair".into(),
            Algo::Java5Unfair => "java5-unfair".into(),
            Algo::Java5FairListsUnfairLock => "java5-fair-lists-unfair-lock".into(),
            Algo::NewFair => "new-fair".into(),
            Algo::NewUnfair => "new-unfair".into(),
            Algo::NewFairSpin(n) => format!("new-fair-spin{n}"),
            Algo::NewUnfairSpin(n) => format!("new-unfair-spin{n}"),
            Algo::NewElim(n) => format!("new-unfair-elim{n}"),
            Algo::NewFairStriped(n) => format!("new-fair-striped{n}"),
            Algo::NewUnfairStriped(n) => format!("new-unfair-striped{n}"),
            Algo::NewCombiner => "new-combiner".into(),
            Algo::NewCombinerStack => "new-combiner-stack".into(),
        }
    }
}

/// Builds a fresh blocking channel carrying `u64` payloads.
pub fn make_blocking(algo: Algo) -> Arc<dyn SyncChannel<u64>> {
    match algo {
        Algo::Hanson => Arc::new(HansonSQ::new()),
        Algo::HansonFast => Arc::new(HansonFastSQ::new()),
        Algo::Naive => Arc::new(NaiveSQ::new()),
        Algo::Java5Fair => Arc::new(Java5SQ::fair()),
        Algo::Java5Unfair => Arc::new(Java5SQ::unfair()),
        Algo::Java5FairListsUnfairLock => Arc::new(Java5SQ::fair_lists_unfair_lock()),
        Algo::NewFair => Arc::new(SyncDualQueue::new()),
        Algo::NewUnfair => Arc::new(SyncDualStack::new()),
        Algo::NewFairSpin(n) => Arc::new(SyncDualQueue::with_spin(SpinPolicy::fixed(n))),
        Algo::NewUnfairSpin(n) => Arc::new(SyncDualStack::with_spin(SpinPolicy::fixed(n))),
        Algo::NewElim(slots) => Arc::new(EliminationSyncStack::new(slots)),
        Algo::NewFairStriped(lanes) => Arc::new(StripedSyncQueue::with_lanes(lanes)),
        Algo::NewUnfairStriped(lanes) => Arc::new(StripedSyncStack::with_lanes(lanes)),
        Algo::NewCombiner => Arc::new(CombinerSyncQueue::new()),
        Algo::NewCombinerStack => Arc::new(CombinerSyncStack::new()),
    }
}

/// Builds a fresh channel for the executor benchmark (Figure 6), if the
/// algorithm supports the rich interface.
pub fn make_timed_job(algo: Algo) -> Option<Arc<dyn TimedSyncChannel<Job>>> {
    Some(match algo {
        Algo::Hanson | Algo::HansonFast | Algo::Naive => return None,
        Algo::Java5Fair => Arc::new(Java5SQ::fair()),
        Algo::Java5Unfair => Arc::new(Java5SQ::unfair()),
        Algo::Java5FairListsUnfairLock => Arc::new(Java5SQ::fair_lists_unfair_lock()),
        Algo::NewFair => Arc::new(SyncDualQueue::new()),
        Algo::NewUnfair => Arc::new(SyncDualStack::new()),
        Algo::NewFairSpin(n) => Arc::new(SyncDualQueue::with_spin(SpinPolicy::fixed(n))),
        Algo::NewUnfairSpin(n) => Arc::new(SyncDualStack::with_spin(SpinPolicy::fixed(n))),
        Algo::NewElim(slots) => Arc::new(EliminationSyncStack::new(slots)),
        Algo::NewFairStriped(lanes) => Arc::new(StripedSyncQueue::with_lanes(lanes)),
        Algo::NewUnfairStriped(lanes) => Arc::new(StripedSyncStack::with_lanes(lanes)),
        Algo::NewCombiner => Arc::new(CombinerSyncQueue::new()),
        Algo::NewCombinerStack => Arc::new(CombinerSyncStack::new()),
    })
}

/// Every structure that routes its wait loop through the shared `WaitSlot`
/// engine and therefore accepts a [`SpinPolicy`] — the sweep axis of the
/// `wait_strategy` binary.
pub const POLICY_STRUCTURES: &[Structure] = &[
    Structure::Fair,
    Structure::Unfair,
    Structure::Transfer,
    Structure::Elim,
    Structure::Java5Unfair,
];

/// A row of [`WAIT_STRATEGIES`]: strategy name plus policy factory.
pub type NamedStrategy = (&'static str, fn() -> SpinPolicy);

/// The named wait strategies swept by the `wait_strategy` binary: the
/// adaptive default, park-immediately (spin budget 0), and two fixed
/// budgets bracketing the adaptive choice.
pub const WAIT_STRATEGIES: &[NamedStrategy] = &[
    ("adaptive", SpinPolicy::adaptive),
    ("park-now", SpinPolicy::park_immediately),
    ("spin32", || SpinPolicy::fixed(32)),
    ("spin320", || SpinPolicy::fixed(320)),
];

/// A synchronous structure whose waiting behavior is parameterized by a
/// [`SpinPolicy`] (all five now share the `WaitSlot` wait loop, so one
/// policy value means the same thing to each of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Synchronous dual queue (fair).
    Fair,
    /// Synchronous dual stack (unfair).
    Unfair,
    /// The `LinkedTransferQueue`-style unbounded transfer queue.
    Transfer,
    /// Dual stack fronted by a 4-slot elimination arena.
    Elim,
    /// Java SE 5.0 baseline, unfair mode (its Listing 4 default is
    /// park-immediately; other policies show what spinning buys a
    /// lock-based design).
    Java5Unfair,
}

impl Structure {
    /// Row label used in tables and JSON (`<structure>/<strategy>` when
    /// combined with a policy name).
    pub fn name(&self) -> &'static str {
        match self {
            Structure::Fair => "new-fair",
            Structure::Unfair => "new-unfair",
            Structure::Transfer => "transfer",
            Structure::Elim => "new-unfair-elim4",
            Structure::Java5Unfair => "java5-unfair",
        }
    }
}

/// Builds a fresh `u64` channel for `structure` waiting per `policy`.
pub fn make_policy_channel(structure: Structure, policy: SpinPolicy) -> Arc<dyn SyncChannel<u64>> {
    match structure {
        Structure::Fair => Arc::new(SyncDualQueue::with_spin(policy)),
        Structure::Unfair => Arc::new(SyncDualStack::with_spin(policy)),
        Structure::Transfer => Arc::new(TransferQueue::with_spin(policy)),
        Structure::Elim => Arc::new(EliminationSyncStack::with_spin(4, policy)),
        Structure::Java5Unfair => Arc::new(Java5SQ::with_spin(false, policy)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_blocking_algo_constructs_and_transfers() {
        for &algo in BLOCKING_ALGOS {
            let ch = make_blocking(algo);
            let ch2 = Arc::clone(&ch);
            let t = std::thread::spawn(move || ch2.take());
            ch.put(1);
            assert_eq!(t.join().unwrap(), 1, "algo {}", algo.name());
        }
    }

    #[test]
    fn timed_registry_excludes_hanson_and_naive() {
        assert!(make_timed_job(Algo::Hanson).is_none());
        assert!(make_timed_job(Algo::Naive).is_none());
        for &algo in TIMED_ALGOS {
            assert!(make_timed_job(algo).is_some(), "algo {}", algo.name());
        }
    }

    #[test]
    fn every_policy_structure_transfers_under_every_strategy() {
        for &structure in POLICY_STRUCTURES {
            for &(name, policy) in WAIT_STRATEGIES {
                let ch = make_policy_channel(structure, policy());
                let ch2 = Arc::clone(&ch);
                let t = std::thread::spawn(move || ch2.take());
                ch.put(9);
                assert_eq!(
                    t.join().unwrap(),
                    9,
                    "structure {} strategy {name}",
                    structure.name()
                );
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = BLOCKING_ALGOS.iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), BLOCKING_ALGOS.len());
    }
}
