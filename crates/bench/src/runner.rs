//! Shared drivers for the figure binaries.

use crate::algos::{make_blocking, make_timed_job, Algo};
use crate::hist::Histogram;
use crate::report::{counter_deltas_since, FigureReport};
use crate::workload::{executor_ns_per_task, handoff_ns_per_transfer_recording, HandoffShape};
use crate::{latency_enabled, quick_mode, sweep, transfers_for};
use std::sync::Arc;
use synq_obs::StatsSnapshot;

/// Runs a handoff figure (Figures 3–5) over `algos` and prints progress to
/// stderr. With `SYNQ_BENCH_LATENCY=1` every series additionally records
/// its per-operation latency distribution across the whole sweep and
/// carries the schema rev 3 `latency` block.
pub fn run_handoff_figure(
    id: &str,
    title: &str,
    x_label: &str,
    levels: &[usize],
    algos: &[Algo],
    shape: impl Fn(usize) -> HandoffShape,
) -> FigureReport {
    let quick = quick_mode();
    let record_latency = latency_enabled();
    let levels = sweep(levels, quick);
    let mut report = FigureReport::new(id, title, x_label, "ns/transfer", levels.clone());
    for &algo in algos {
        let before = StatsSnapshot::take();
        let hist = record_latency.then(|| Arc::new(Histogram::new()));
        let mut values = Vec::with_capacity(levels.len());
        for &level in &levels {
            let s = shape(level);
            let transfers = transfers_for(s.producers + s.consumers, quick);
            let ns =
                handoff_ns_per_transfer_recording(make_blocking(algo), s, transfers, hist.clone());
            eprintln!(
                "  {id} {:>14} {x_label}={level:<3} -> {ns:>12.0} ns/transfer ({transfers} transfers)",
                algo.name()
            );
            values.push(ns);
        }
        let latency = hist.and_then(|h| h.summary());
        report.push_series_full(algo.name(), values, counter_deltas_since(&before), latency);
    }
    report
}

/// Runs the executor figure (Figure 6) over `algos`.
pub fn run_executor_figure(
    id: &str,
    title: &str,
    levels: &[usize],
    algos: &[Algo],
) -> FigureReport {
    let quick = quick_mode();
    let levels = sweep(levels, quick);
    let mut report = FigureReport::new(id, title, "threads", "ns/task", levels.clone());
    for &algo in algos {
        let Some(_) = make_timed_job(algo) else {
            continue;
        };
        let before = StatsSnapshot::take();
        let mut values = Vec::with_capacity(levels.len());
        for &level in &levels {
            let tasks = transfers_for(level, quick);
            let channel = make_timed_job(algo).expect("timed algo");
            let ns = executor_ns_per_task(channel, level, tasks);
            eprintln!(
                "  {id} {:>14} threads={level:<3} -> {ns:>12.0} ns/task ({tasks} tasks)",
                algo.name()
            );
            values.push(ns);
        }
        report.push_series_with_counters(algo.name(), values, counter_deltas_since(&before));
    }
    report
}

/// Prints the table, writes the JSON, and reports the path.
pub fn finish(report: FigureReport) {
    println!("{}", report.to_table());
    match report.write_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
