//! Minimal JSON value type, parser and pretty-printer.
//!
//! The figure reports only need flat objects of strings, numbers and
//! arrays, and the build environment cannot fetch serde from crates.io, so
//! the harness carries its own ~150-line JSON layer. The emitted format is
//! plain standard JSON, readable by any external tool.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the field list (insertion order), if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays render on one line (level/value lists).
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.render(out, 0);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        let _ = write!(out, "{pad}  ");
                        item.render(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    let _ = write!(out, "{pad}]");
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    render_str(k, out);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn render_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::Obj(vec![
            ("id".into(), Json::Str("figure3".into())),
            (
                "levels".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(64.0)]),
            ),
            (
                "series".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("new-fair".into())),
                    ("values".into(), Json::Arr(vec![Json::Num(123.5)])),
                ])]),
            ),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Json::Str("he said \"hi\"\n\ttab\\slash".into());
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).pretty(), "42\n");
        assert_eq!(Json::Num(1.5).pretty(), "1.5\n");
    }
}
