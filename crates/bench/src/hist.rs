//! A fixed-footprint log-linear histogram for latency distributions —
//! the HDR-histogram bucketing scheme in ~200 lines of dependency-free
//! Rust (DESIGN §4.14).
//!
//! # Bucketing
//!
//! Values are `u64` (nanoseconds, in this crate's usage). With
//! `PRECISION_BITS = 7` every power-of-two range is split into
//! `SUB_BUCKETS = 128` linear sub-buckets:
//!
//! - `v < 128` maps directly to bucket `v` (exact).
//! - otherwise `exp = floor(log2 v) - 7` and the bucket index is
//!   `128 + exp * 128 + ((v >> exp) - 128)`.
//!
//! Bucket width at value `v` is `2^exp ≤ v / 128`, so any reported
//! quantile is within **0.79 %** of the true sample — far below run-to-run
//! bench noise — while the whole table covers the full `u64` range in
//! `(65 - 7) * 128 = 7424` buckets (58 KiB of counters, allocated once).
//!
//! # Concurrency
//!
//! Buckets are `AtomicU64`s bumped with relaxed `fetch_add`, so any number
//! of threads can [`Histogram::record`] into one shared histogram without
//! locks, or record into thread-local histograms and [`Histogram::merge`]
//! them afterwards — the two compose to the same totals. Reading while
//! writers are active yields a momentary snapshot, same contract as the
//! `synq-obs` sharded counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two range (2^7): bounds the relative
/// quantile error at `1/128 < 0.79 %`.
const PRECISION_BITS: u32 = 7;
/// `1 << PRECISION_BITS`.
const SUB_BUCKETS: usize = 1 << PRECISION_BITS;
/// Total buckets covering all of `u64`: the direct range plus one row of
/// `SUB_BUCKETS` for each exponent `0..=63 - PRECISION_BITS`.
const BUCKETS: usize = (65 - PRECISION_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index. Total and monotone over `u64`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = (63 - v.leading_zeros()) - PRECISION_BITS;
    let sub = (v >> exp) as usize - SUB_BUCKETS;
    SUB_BUCKETS + exp as usize * SUB_BUCKETS + sub
}

/// Inverse-ish of [`bucket_index`]: the smallest value in bucket `index`.
fn bucket_low(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let exp = ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << exp
}

/// The largest value in bucket `index` (inclusive).
fn bucket_high(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let exp = ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    bucket_low(index) + ((1u64 << exp) - 1)
}

/// A lock-free log-linear histogram of `u64` samples.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    /// Exact extremes (the bucketing would otherwise round them).
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. Allocates the full 58 KiB bucket table once.
    pub fn new() -> Histogram {
        // `vec!` + try_into keeps the large array off the stack.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec built with BUCKETS elements"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Adds every sample of `other` into `self` (bucket-wise).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The exact largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() != 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// The exact smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count() != 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// The value at percentile `pct` (in `[0, 100]`), or `None` if empty.
    ///
    /// Reports the *upper edge* of the bucket holding the rank-`⌈pct/100·n⌉`
    /// sample, clamped to the exact recorded extremes — so the result is
    /// ≥ the true order statistic and within one bucket width (< 0.79 %)
    /// of it, and `pct = 100` returns the exact max.
    pub fn value_at_percentile(&self, pct: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((pct / 100.0) * count as f64).ceil() as u64;
        let rank = rank.clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let hi = bucket_high(i);
                let max = self.max.load(Ordering::Relaxed);
                let min = self.min.load(Ordering::Relaxed);
                return Some(hi.clamp(min, max));
            }
        }
        // Concurrent recording can leave `count` momentarily ahead of the
        // bucket sum; fall back to the recorded max.
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Non-empty buckets as `(bucket lower bound, sample count)` pairs, in
    /// ascending value order — the JSON `buckets` payload.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n != 0).then(|| (bucket_low(i), n))
            })
            .collect()
    }

    /// The fixed percentile set the BENCH schema carries, or `None` if no
    /// samples were recorded (the JSON omits the block entirely).
    pub fn summary(&self) -> Option<LatencySummary> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        Some(LatencySummary {
            count,
            p50: self.value_at_percentile(50.0).unwrap_or(0),
            p90: self.value_at_percentile(90.0).unwrap_or(0),
            p99: self.value_at_percentile(99.0).unwrap_or(0),
            p999: self.value_at_percentile(99.9).unwrap_or(0),
            max: self.max().unwrap_or(0),
            buckets: self.nonzero_buckets(),
        })
    }
}

/// The extracted distribution a BENCH series carries (schema rev 3's
/// per-series `latency` block). All values in the unit that was recorded
/// (nanoseconds for every bin in this crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples behind the percentiles.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile — the headline number for fairness claims.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
    /// Non-empty buckets, `(lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl LatencySummary {
    /// The monotonicity invariant `summary --check` enforces:
    /// `p50 ≤ p90 ≤ p99 ≤ p999 ≤ max`, with at least one sample.
    pub fn is_monotone(&self) -> bool {
        self.count > 0
            && self.p50 <= self.p90
            && self.p90 <= self.p99
            && self.p99 <= self.p999
            && self.p999 <= self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_total_and_monotone_at_boundaries() {
        // Every power-of-two boundary and its neighbours stay in range and
        // in order, up to the top of u64.
        let mut values = vec![u64::MAX];
        for exp in 0..64 {
            let p = 1u64 << exp;
            values.extend([p - 1, p, p.saturating_add(1)]);
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "index not monotone at {v}");
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "v={v} i={i}");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        for pct in [1.0, 25.0, 50.0, 75.0, 99.0] {
            let got = h.value_at_percentile(pct).unwrap();
            let want = ((pct / 100.0) * SUB_BUCKETS as f64).ceil() as u64 - 1;
            assert_eq!(got, want, "pct={pct}");
        }
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.value_at_percentile(50.0), None);
        assert!(h.summary().is_none());
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let h = Histogram::new();
        h.record(123_456);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1);
        // Every percentile is the one sample's bucket clamped to the exact
        // extremes — i.e. exactly the sample.
        assert_eq!(s.p50, 123_456);
        assert_eq!(s.p999, 123_456);
        assert_eq!(s.max, 123_456);
        assert!(s.is_monotone());
    }

    #[test]
    fn merge_equals_shared_recording() {
        let shared = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 700, 700, 19_000, 5_000_000, u64::MAX] {
            shared.record(v);
            a.record(v);
        }
        for v in [1u64, 250, 80_000] {
            shared.record(v);
            b.record(v);
        }
        let merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), shared.count());
        assert_eq!(merged.max(), shared.max());
        assert_eq!(merged.min(), shared.min());
        assert_eq!(merged.nonzero_buckets(), shared.nonzero_buckets());
        assert_eq!(merged.summary(), shared.summary());
    }

    #[test]
    fn summary_is_monotone_on_wide_spread() {
        let h = Histogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            // Deterministic multiplicative scramble spanning ~9 decades.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record((x >> 20) % 10u64.pow((i % 9) as u32 + 1));
        }
        assert!(h.summary().unwrap().is_monotone());
    }
}
