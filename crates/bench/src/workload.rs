//! Workload generators and measurement loops.

use crate::hist::Histogram;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use synq::{SyncChannel, TimedSyncChannel};
use synq_executor::{Job, PoolConfig, ThreadPool};
use synq_transfer::TransferQueue;

/// Producer:consumer shape of a handoff microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffShape {
    /// Number of producer threads.
    pub producers: usize,
    /// Number of consumer threads.
    pub consumers: usize,
}

impl HandoffShape {
    /// Figure 3: N producers, N consumers.
    pub fn pairs(n: usize) -> Self {
        HandoffShape {
            producers: n,
            consumers: n,
        }
    }
    /// Figure 4: one producer, N consumers.
    pub fn fan_out(consumers: usize) -> Self {
        HandoffShape {
            producers: 1,
            consumers,
        }
    }
    /// Figure 5: N producers, one consumer.
    pub fn fan_in(producers: usize) -> Self {
        HandoffShape {
            producers,
            consumers: 1,
        }
    }
}

/// Runs a saturation handoff benchmark: every thread produces/consumes "as
/// fast as it can" until exactly `transfers` handoffs have happened.
/// Returns nanoseconds per transfer.
///
/// Work is claimed from shared tickets so exactly `transfers` puts pair
/// with exactly `transfers` takes — no thread is left stranded in a
/// blocking operation at the end.
pub fn handoff_ns_per_transfer(
    channel: Arc<dyn SyncChannel<u64>>,
    shape: HandoffShape,
    transfers: usize,
) -> f64 {
    handoff_ns_per_transfer_recording(channel, shape, transfers, None)
}

/// [`handoff_ns_per_transfer`] with optional per-operation timing spans:
/// when `hist` is given, every individual `put` and `take` records its
/// wall-clock duration (two `Instant::now` reads around the call) into the
/// shared lock-free [`Histogram`], turning the run's mean into a full
/// distribution. The recording branch sits outside the measured
/// rendezvous; its cost is two clock reads per operation — under 3 % of
/// the cheapest handoff (DESIGN §4.14) — and zero when `hist` is `None`
/// (the mean-only entry point passes `None`).
pub fn handoff_ns_per_transfer_recording(
    channel: Arc<dyn SyncChannel<u64>>,
    shape: HandoffShape,
    transfers: usize,
    hist: Option<Arc<Histogram>>,
) -> f64 {
    let put_tickets = Arc::new(AtomicUsize::new(0));
    let take_tickets = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(shape.producers + shape.consumers + 1));

    let mut handles = Vec::with_capacity(shape.producers + shape.consumers);
    for _ in 0..shape.producers {
        let channel = Arc::clone(&channel);
        let tickets = Arc::clone(&put_tickets);
        let barrier = Arc::clone(&barrier);
        let hist = hist.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= transfers {
                    break;
                }
                match &hist {
                    None => channel.put(i as u64),
                    Some(h) => {
                        let t0 = Instant::now();
                        channel.put(i as u64);
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                }
            }
        }));
    }
    for _ in 0..shape.consumers {
        let channel = Arc::clone(&channel);
        let tickets = Arc::clone(&take_tickets);
        let barrier = Arc::clone(&barrier);
        let hist = hist.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut check: u64 = 0;
            loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= transfers {
                    break;
                }
                let v = match &hist {
                    None => channel.take(),
                    Some(h) => {
                        let t0 = Instant::now();
                        let v = channel.take();
                        h.record(t0.elapsed().as_nanos() as u64);
                        v
                    }
                };
                check = check.wrapping_add(v);
            }
            std::hint::black_box(check);
        }));
    }

    // Start the clock *before* releasing the barrier: on an oversubscribed
    // machine the main thread may not be rescheduled until after the
    // workers finish, which would otherwise truncate the measurement. The
    // barrier-release cost this includes is negligible against the
    // thousands of transfers measured.
    let start = Instant::now();
    barrier.wait();
    for h in handles {
        h.join().expect("benchmark thread panicked");
    }
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / transfers as f64
}

/// Like [`handoff_ns_per_transfer`], but every thread moves items in
/// batches of up to `batch` through `send_batch`/`recv_batch`. Tickets are
/// claimed in whole chunks so the produced and consumed totals both equal
/// exactly `transfers` — `send_batch` blocks until its chunk is delivered,
/// `recv_batch` blocks for the first item of each chunk — and no thread is
/// stranded at the end. Returns nanoseconds per transfer (per item, not
/// per batch).
pub fn batched_handoff_ns_per_transfer(
    channel: Arc<dyn SyncChannel<u64>>,
    shape: HandoffShape,
    transfers: usize,
    batch: usize,
) -> f64 {
    assert!(batch >= 1);
    let put_tickets = Arc::new(AtomicUsize::new(0));
    let take_tickets = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(shape.producers + shape.consumers + 1));

    let mut handles = Vec::with_capacity(shape.producers + shape.consumers);
    for _ in 0..shape.producers {
        let channel = Arc::clone(&channel);
        let tickets = Arc::clone(&put_tickets);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut items = Vec::with_capacity(batch);
            loop {
                let first = tickets.fetch_add(batch, Ordering::Relaxed);
                if first >= transfers {
                    break;
                }
                let last = (first + batch).min(transfers);
                items.extend((first..last).map(|i| i as u64));
                channel.send_batch(&mut items);
                debug_assert!(items.is_empty());
            }
        }));
    }
    for _ in 0..shape.consumers {
        let channel = Arc::clone(&channel);
        let tickets = Arc::clone(&take_tickets);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut out = Vec::with_capacity(batch);
            let mut check: u64 = 0;
            loop {
                let first = tickets.fetch_add(batch, Ordering::Relaxed);
                if first >= transfers {
                    break;
                }
                let want = (first + batch).min(transfers) - first;
                let mut got = 0;
                while got < want {
                    got += channel.recv_batch(&mut out, want - got);
                }
                for v in out.drain(..) {
                    check = check.wrapping_add(v);
                }
            }
            std::hint::black_box(check);
        }));
    }

    let start = Instant::now();
    barrier.wait();
    for h in handles {
        h.join().expect("benchmark thread panicked");
    }
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / transfers as f64
}

/// Mixed buffered + synchronous workload on a bounded [`TransferQueue`]:
/// every `sync_every`-th ticket rendezvouses through `transfer` (linked
/// path) while the rest ride the ring via `put`, overflowing small rings
/// so the ring-full → waiter fallback executes alongside rendezvous
/// traffic. Consumers drain everything with `take`. Returns nanoseconds
/// per transfer.
pub fn mixed_handoff_ns_per_transfer(
    queue: Arc<TransferQueue<u64>>,
    shape: HandoffShape,
    transfers: usize,
    sync_every: usize,
) -> f64 {
    assert!(sync_every >= 1);
    let put_tickets = Arc::new(AtomicUsize::new(0));
    let take_tickets = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(shape.producers + shape.consumers + 1));

    let mut handles = Vec::with_capacity(shape.producers + shape.consumers);
    for _ in 0..shape.producers {
        let queue = Arc::clone(&queue);
        let tickets = Arc::clone(&put_tickets);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= transfers {
                    break;
                }
                if i.is_multiple_of(sync_every) {
                    queue.transfer(i as u64);
                } else {
                    queue.put(i as u64);
                }
            }
        }));
    }
    for _ in 0..shape.consumers {
        let queue = Arc::clone(&queue);
        let tickets = Arc::clone(&take_tickets);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut check: u64 = 0;
            loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= transfers {
                    break;
                }
                check = check.wrapping_add(queue.take());
            }
            std::hint::black_box(check);
        }));
    }

    let start = Instant::now();
    barrier.wait();
    for h in handles {
        h.join().expect("benchmark thread panicked");
    }
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / transfers as f64
}

/// Runs the Figure 6 workload: `submitters` threads submit `tasks` trivial
/// tasks to a cached thread pool whose handoff channel is under test.
/// Returns nanoseconds per task.
pub fn executor_ns_per_task(
    channel: Arc<dyn TimedSyncChannel<Job>>,
    submitters: usize,
    tasks: usize,
) -> f64 {
    let pool = ThreadPool::new(
        channel,
        PoolConfig {
            core_pool_size: 0,
            max_pool_size: usize::MAX,
            keep_alive: std::time::Duration::from_millis(200),
        },
    );
    let tickets = Arc::new(AtomicUsize::new(0));
    let executed = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(submitters + 1));

    let mut handles = Vec::with_capacity(submitters);
    for _ in 0..submitters {
        let pool = pool.clone();
        let tickets = Arc::clone(&tickets);
        let executed = Arc::clone(&executed);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                let executed = Arc::clone(&executed);
                pool.execute(move || {
                    executed.fetch_add(1, Ordering::Relaxed);
                })
                .expect("pool rejected task");
            }
        }));
    }

    let start = Instant::now();
    barrier.wait();
    for h in handles {
        h.join().expect("submitter panicked");
    }
    // Wait for the tail of in-flight tasks.
    while executed.load(Ordering::Relaxed) < tasks {
        std::thread::yield_now();
    }
    let elapsed = start.elapsed();
    pool.shutdown();
    pool.join();
    assert_eq!(executed.load(Ordering::Relaxed), tasks);
    elapsed.as_nanos() as f64 / tasks as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{make_blocking, make_timed_job, Algo};

    #[test]
    fn handoff_measurement_completes_for_pairs() {
        let ns = handoff_ns_per_transfer(
            make_blocking(Algo::NewUnfair),
            HandoffShape::pairs(2),
            2_000,
        );
        assert!(ns > 0.0);
    }

    #[test]
    fn handoff_measurement_completes_fan_out_and_in() {
        for shape in [HandoffShape::fan_out(3), HandoffShape::fan_in(3)] {
            let ns = handoff_ns_per_transfer(make_blocking(Algo::NewFair), shape, 1_500);
            assert!(ns > 0.0);
        }
    }

    #[test]
    fn recording_handoff_captures_every_operation() {
        let hist = Arc::new(Histogram::new());
        let transfers = 1_000;
        let ns = handoff_ns_per_transfer_recording(
            make_blocking(Algo::NewFair),
            HandoffShape::pairs(2),
            transfers,
            Some(Arc::clone(&hist)),
        );
        assert!(ns > 0.0);
        // One span per put plus one per take.
        assert_eq!(hist.count(), 2 * transfers as u64);
        assert!(hist.summary().unwrap().is_monotone());
    }

    #[test]
    fn handoff_works_for_every_algorithm() {
        for &algo in crate::BLOCKING_ALGOS {
            let ns = handoff_ns_per_transfer(make_blocking(algo), HandoffShape::pairs(2), 500);
            assert!(ns > 0.0, "algo {}", algo.name());
        }
    }

    #[test]
    fn batched_handoff_completes_bounded_and_unbounded() {
        for capacity in [None, Some(8)] {
            let channel: Arc<dyn SyncChannel<u64>> = match capacity {
                Some(c) => Arc::new(synq_transfer::BufferedChannel::bounded(c)),
                None => Arc::new(synq_transfer::BufferedChannel::unbounded()),
            };
            let ns = batched_handoff_ns_per_transfer(channel, HandoffShape::pairs(2), 2_000, 8);
            assert!(ns > 0.0, "capacity {capacity:?}");
        }
    }

    #[test]
    fn batched_handoff_handles_ragged_tail() {
        // transfers not a multiple of batch: the last chunk is short.
        let channel: Arc<dyn SyncChannel<u64>> =
            Arc::new(synq_transfer::BufferedChannel::bounded(4));
        let ns = batched_handoff_ns_per_transfer(channel, HandoffShape::pairs(1), 1_003, 8);
        assert!(ns > 0.0);
    }

    #[test]
    fn mixed_handoff_completes_on_tiny_ring() {
        let queue = Arc::new(TransferQueue::bounded(2));
        let ns = mixed_handoff_ns_per_transfer(queue, HandoffShape::pairs(2), 1_500, 3);
        assert!(ns > 0.0);
    }

    #[test]
    fn executor_measurement_completes() {
        let ch = make_timed_job(Algo::NewUnfair).unwrap();
        let ns = executor_ns_per_task(ch, 2, 500);
        assert!(ns > 0.0);
    }
}
