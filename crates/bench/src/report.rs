//! Table printing and JSON output for figure regeneration.

use crate::hist::LatencySummary;
use crate::json::Json;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One curve of a figure: an algorithm's value at each x-axis level.
#[derive(Debug, Clone)]
pub struct Series {
    /// Column label (algorithm name).
    pub name: String,
    /// One value per x-axis level, in the figure's unit.
    pub values: Vec<f64>,
    /// Probe-counter deltas accumulated over this series' whole sweep
    /// (`synq-obs` probe name → count). Populated only when the harness is
    /// built with `--features stats`; empty otherwise, and omitted from the
    /// JSON when empty. Schema rev 2 added this section.
    pub counters: Vec<(String, u64)>,
    /// Per-operation latency distribution recorded over the series' whole
    /// sweep (`SYNQ_BENCH_LATENCY=1`, or always for the `server` bin).
    /// `None` when recording was off; omitted from the JSON then. Schema
    /// rev 3 added this section.
    pub latency: Option<LatencySummary>,
}

/// A regenerated figure: x-axis levels plus one series per algorithm.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Figure identifier, e.g. `"figure3"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label, e.g. `"pairs"`.
    pub x_label: String,
    /// Unit of the values, e.g. `"ns/transfer"`.
    pub unit: String,
    /// X-axis levels.
    pub levels: Vec<usize>,
    /// One series per algorithm.
    pub series: Vec<Series>,
    /// Host/run configuration captured when the figure was generated
    /// (see [`bench_config_json`]). Travels with the figure so a later
    /// `summary` refresh re-emits the *originating run's* config instead
    /// of stamping the refresher's environment onto old data. `None` for
    /// figures read from pre-PR-8 files.
    pub config: Option<Json>,
}

fn str_field(json: &Json, key: &str) -> Result<String, String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

impl FigureReport {
    /// Creates an empty report, capturing the current host/run config.
    pub fn new(id: &str, title: &str, x_label: &str, unit: &str, levels: Vec<usize>) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            unit: unit.into(),
            levels,
            series: Vec::new(),
            config: Some(bench_config_json()),
        }
    }

    /// Adds a completed series.
    pub fn push_series(&mut self, name: String, values: Vec<f64>) {
        self.push_series_with_counters(name, values, Vec::new());
    }

    /// Adds a completed series with its probe-counter deltas (the
    /// `synq-obs` events recorded while the series ran). Pass an empty
    /// vector when stats are off — the section is omitted from the JSON.
    pub fn push_series_with_counters(
        &mut self,
        name: String,
        values: Vec<f64>,
        counters: Vec<(String, u64)>,
    ) {
        self.push_series_full(name, values, counters, None);
    }

    /// Adds a completed series with counters *and* a recorded latency
    /// distribution (schema rev 3). Pass `None` when span recording was
    /// off — the `latency` section is omitted from the JSON.
    pub fn push_series_full(
        &mut self,
        name: String,
        values: Vec<f64>,
        counters: Vec<(String, u64)>,
        latency: Option<LatencySummary>,
    ) {
        assert_eq!(values.len(), self.levels.len());
        self.series.push(Series {
            name,
            values,
            counters,
            latency,
        });
    }

    /// Renders the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {} ({})\n", self.id, self.title, self.unit));
        let mut header = format!("{:>8}", self.x_label);
        for s in &self.series {
            header.push_str(&format!("  {:>14}", s.name));
        }
        out.push_str(&header);
        out.push('\n');
        for (row, &level) in self.levels.iter().enumerate() {
            let mut line = format!("{level:>8}");
            for s in &self.series {
                line.push_str(&format!("  {:>14.0}", s.values[row]));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Converts to the JSON document written by [`FigureReport::write_json`].
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            ("x_label".into(), Json::Str(self.x_label.clone())),
            ("unit".into(), Json::Str(self.unit.clone())),
            (
                "levels".into(),
                Json::Arr(self.levels.iter().map(|&l| Json::Num(l as f64)).collect()),
            ),
            (
                "series".into(),
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            let mut fields = vec![
                                ("name".into(), Json::Str(s.name.clone())),
                                (
                                    "values".into(),
                                    Json::Arr(s.values.iter().map(|&v| Json::Num(v)).collect()),
                                ),
                            ];
                            if !s.counters.is_empty() {
                                fields.push((
                                    "counters".into(),
                                    Json::Obj(
                                        s.counters
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                                            .collect(),
                                    ),
                                ));
                            }
                            if let Some(lat) = &s.latency {
                                fields.push(("latency".into(), latency_to_json(lat)));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(config) = &self.config {
            fields.push(("config".into(), config.clone()));
        }
        Json::Obj(fields)
    }

    /// Parses a JSON document produced by [`FigureReport::to_json`].
    pub fn from_json(json: &Json) -> Result<FigureReport, String> {
        let levels = json
            .get("levels")
            .and_then(Json::as_array)
            .ok_or("missing array field `levels`")?
            .iter()
            .map(|l| l.as_f64().map(|v| v as usize).ok_or("non-numeric level"))
            .collect::<Result<Vec<_>, _>>()?;
        let series = json
            .get("series")
            .and_then(Json::as_array)
            .ok_or("missing array field `series`")?
            .iter()
            .map(|s| {
                let values = s
                    .get("values")
                    .and_then(Json::as_array)
                    .ok_or("series missing `values`")?
                    .iter()
                    .map(|v| v.as_f64().ok_or("non-numeric value"))
                    .collect::<Result<Vec<_>, _>>()?;
                let counters = match s.get("counters") {
                    None => Vec::new(),
                    Some(c) => c
                        .as_object()
                        .ok_or("series `counters` is not an object")?
                        .iter()
                        .map(|(k, v)| {
                            v.as_f64()
                                .map(|n| (k.clone(), n as u64))
                                .ok_or("non-numeric counter")
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                let latency = match s.get("latency") {
                    None => None,
                    Some(l) => Some(latency_from_json(l)?),
                };
                Ok::<Series, String>(Series {
                    name: str_field(s, "name")?,
                    values,
                    counters,
                    latency,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FigureReport {
            id: str_field(json, "id")?,
            title: str_field(json, "title")?,
            x_label: str_field(json, "x_label")?,
            unit: str_field(json, "unit")?,
            levels,
            series,
            config: json.get("config").cloned(),
        })
    }

    /// Writes `target/figures/<id>.json` (path overridable with the
    /// `SYNQ_FIGURE_DIR` environment variable). Returns the path.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("SYNQ_FIGURE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/figures"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().pretty().as_bytes())?;
        Ok(path)
    }

    /// Ratio of two series at the highest level (used for the headline
    /// claims table). Returns `None` if either series is missing.
    pub fn ratio_at_max(&self, numerator: &str, denominator: &str) -> Option<f64> {
        let last = self.levels.len().checked_sub(1)?;
        let num = self.series.iter().find(|s| s.name == numerator)?;
        let den = self.series.iter().find(|s| s.name == denominator)?;
        Some(num.values[last] / den.values[last])
    }
}

/// Serializes a [`LatencySummary`] as the schema rev 3 `latency` block:
/// the fixed percentile set plus the non-empty histogram buckets as
/// `[lower bound, count]` pairs.
pub fn latency_to_json(lat: &LatencySummary) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::Num(lat.count as f64)),
        ("p50".into(), Json::Num(lat.p50 as f64)),
        ("p90".into(), Json::Num(lat.p90 as f64)),
        ("p99".into(), Json::Num(lat.p99 as f64)),
        ("p999".into(), Json::Num(lat.p999 as f64)),
        ("max".into(), Json::Num(lat.max as f64)),
        (
            "buckets".into(),
            Json::Arr(
                lat.buckets
                    .iter()
                    .map(|&(low, n)| Json::Arr(vec![Json::Num(low as f64), Json::Num(n as f64)]))
                    .collect(),
            ),
        ),
    ])
}

/// Parses a `latency` block written by [`latency_to_json`].
pub fn latency_from_json(json: &Json) -> Result<LatencySummary, String> {
    let num = |key: &str| {
        json.get(key)
            .and_then(Json::as_f64)
            .map(|v| v as u64)
            .ok_or_else(|| format!("latency block missing numeric `{key}`"))
    };
    let buckets = json
        .get("buckets")
        .and_then(Json::as_array)
        .ok_or("latency block missing array `buckets`")?
        .iter()
        .map(|pair| {
            let pair = pair.as_array().ok_or("latency bucket is not an array")?;
            match pair {
                [low, n] => Ok((
                    low.as_f64().ok_or("non-numeric bucket bound")? as u64,
                    n.as_f64().ok_or("non-numeric bucket count")? as u64,
                )),
                _ => Err("latency bucket is not a [bound, count] pair".into()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(LatencySummary {
        count: num("count")?,
        p50: num("p50")?,
        p90: num("p90")?,
        p99: num("p99")?,
        p999: num("p999")?,
        max: num("max")?,
        buckets,
    })
}

/// Schema revision the writers emit. Rev 2 (PR 4) added the optional
/// per-series `counters` section (probe-counter deltas from `synq-obs`);
/// rev 3 (PR 9) added the optional per-series `latency` section (the
/// recorded distribution's percentiles + histogram buckets). Each revision
/// is the previous one plus an optional section, so readers accept
/// v1 through v3.
pub const BENCH_SCHEMA_REV: u32 = 3;

/// Oldest schema revision the readers still understand.
pub const BENCH_SCHEMA_OLDEST: u32 = 1;

fn schema_string(family: &str) -> String {
    format!("synq-bench-{family}/v{BENCH_SCHEMA_REV}")
}

/// Validates the `schema` field of a `BENCH_*.json` document against a
/// schema family (`"headline"`, `"wait-strategy"`, `"async"`,
/// `"striped"`, `"ring"`, `"reclaim"`, `"combiner"`, `"server"`,
/// `"park"`). Returns the
/// revision on success; a descriptive error for a missing field, a
/// different family, or a revision outside
/// [`BENCH_SCHEMA_OLDEST`]..=[`BENCH_SCHEMA_REV`].
pub fn check_bench_schema(doc: &Json, family: &str) -> Result<u32, String> {
    let prefix = format!("synq-bench-{family}/v");
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing `schema` field (expected `{prefix}N`)"))?;
    let rev = schema
        .strip_prefix(&prefix)
        .and_then(|r| r.parse::<u32>().ok())
        .ok_or_else(|| format!("unrecognized schema `{schema}` (expected `{prefix}N`)"))?;
    if (BENCH_SCHEMA_OLDEST..=BENCH_SCHEMA_REV).contains(&rev) {
        Ok(rev)
    } else {
        Err(format!(
            "unknown schema revision `{schema}`: this binary understands \
             `{prefix}{BENCH_SCHEMA_OLDEST}` through `{prefix}{BENCH_SCHEMA_REV}` — \
             rebuild the tools or regenerate the file"
        ))
    }
}

/// Reads and schema-checks a `BENCH_*.json` file. Errors (as a printable
/// message, never a panic) when the file is missing, is not valid JSON, or
/// carries an unknown schema revision.
pub fn read_bench_file(path: &Path, family: &str) -> Result<Json, String> {
    let data = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read {}: {e} (run the matching figure binary first)",
            path.display()
        )
    })?;
    let doc = Json::parse(&data).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    check_bench_schema(&doc, family).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc)
}

fn bench_path(env: &str, file: &str) -> PathBuf {
    // Anchor at the workspace root regardless of the invocation directory:
    // this crate lives at `<root>/crates/bench`.
    std::env::var(env).map(PathBuf::from).unwrap_or_else(|_| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file)
    })
}

/// Resolved path of `BENCH_headline.json` (`SYNQ_HEADLINE_PATH` override).
pub fn headline_path() -> PathBuf {
    bench_path("SYNQ_HEADLINE_PATH", "BENCH_headline.json")
}

/// Resolved path of `BENCH_wait_strategy.json` (`SYNQ_WAIT_STRATEGY_PATH`
/// override).
pub fn wait_strategy_path() -> PathBuf {
    bench_path("SYNQ_WAIT_STRATEGY_PATH", "BENCH_wait_strategy.json")
}

/// Resolved path of `BENCH_async.json` (`SYNQ_ASYNC_PATH` override).
pub fn async_path() -> PathBuf {
    bench_path("SYNQ_ASYNC_PATH", "BENCH_async.json")
}

/// Resolved path of `BENCH_striped.json` (`SYNQ_STRIPED_PATH` override).
pub fn striped_path() -> PathBuf {
    bench_path("SYNQ_STRIPED_PATH", "BENCH_striped.json")
}

/// Resolved path of `BENCH_ring.json` (`SYNQ_RING_PATH` override).
pub fn ring_path() -> PathBuf {
    bench_path("SYNQ_RING_PATH", "BENCH_ring.json")
}

/// Resolved path of `BENCH_reclaim.json` (`SYNQ_RECLAIM_PATH` override).
pub fn reclaim_path() -> PathBuf {
    bench_path("SYNQ_RECLAIM_PATH", "BENCH_reclaim.json")
}

/// Resolved path of `BENCH_combiner.json` (`SYNQ_COMBINER_PATH` override).
pub fn combiner_path() -> PathBuf {
    bench_path("SYNQ_COMBINER_PATH", "BENCH_combiner.json")
}

/// Resolved path of `BENCH_server.json` (`SYNQ_SERVER_PATH` override).
pub fn server_path() -> PathBuf {
    bench_path("SYNQ_SERVER_PATH", "BENCH_server.json")
}

/// Resolved path of `BENCH_park.json` (`SYNQ_PARK_PATH` override).
pub fn park_path() -> PathBuf {
    bench_path("SYNQ_PARK_PATH", "BENCH_park.json")
}

/// The host/run configuration block recorded in every BENCH file (PR 8):
/// the core count, the contended preset's explicit oversubscription
/// factors `k` (each contended level fields `k × cores` pairs), and
/// whether quick mode was active. Lets a reader reconstruct absolute
/// thread counts instead of guessing what "contended" meant on the
/// recording host.
pub fn bench_config_json() -> Json {
    let quick = crate::quick_mode();
    Json::Obj(vec![
        ("cores".into(), Json::Num(crate::bench_cores() as f64)),
        (
            "oversub_factors".into(),
            Json::Arr(
                crate::oversub_factors(quick)
                    .into_iter()
                    .map(|k| Json::Num(k as f64))
                    .collect(),
            ),
        ),
        ("quick".into(), Json::Bool(quick)),
    ])
}

/// The config block to record for `report`: the one captured when the
/// figure was generated, falling back to the current environment for
/// pre-PR-8 figure files that carry none.
fn report_config(report: &FigureReport) -> Json {
    report.config.clone().unwrap_or_else(bench_config_json)
}

/// Probe-counter deltas since `before`, in the owned form
/// [`Series::counters`] stores. Empty when stats are off (every delta is
/// zero), so callers can pass the result straight to
/// [`FigureReport::push_series_with_counters`] unconditionally.
pub fn counter_deltas_since(before: &synq_obs::StatsSnapshot) -> Vec<(String, u64)> {
    synq_obs::StatsSnapshot::take()
        .delta(before)
        .nonzero()
        .into_iter()
        .map(|(name, v)| (name.to_owned(), v))
        .collect()
}

/// Writes the repo-root `BENCH_headline.json` perf-trajectory file:
/// machine-readable ns/transfer (and optionally ns/task) per algorithm per
/// concurrency level, consumed by future PRs for regression comparison.
/// Returns the path written.
pub fn write_bench_headline(
    handoff: &FigureReport,
    pool: Option<&FigureReport>,
) -> std::io::Result<PathBuf> {
    let path = headline_path();
    let mut fields = vec![
        ("schema".into(), Json::Str(schema_string("headline"))),
        ("config".into(), report_config(handoff)),
        ("handoff".into(), handoff.to_json()),
    ];
    if let Some(pool) = pool {
        fields.push(("executor".into(), pool.to_json()));
    }
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_wait_strategy.json` file (alongside
/// `BENCH_headline.json`): ns/transfer for every `structure/strategy`
/// combination, consumed to confirm the shared wait loop is perf-neutral
/// and to compare strategies uniformly across structures. Returns the path
/// written (overridable with `SYNQ_WAIT_STRATEGY_PATH`).
pub fn write_bench_wait_strategy(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = wait_strategy_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("wait-strategy"))),
        ("config".into(), report_config(sweep)),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_async.json` file: ns/transfer for the
/// async front-end (`synq-async`) against the blocking API on the same
/// structures, consumed to track the overhead of the waker-based wait
/// mode. Returns the path written (overridable with `SYNQ_ASYNC_PATH`).
pub fn write_bench_async(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = async_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("async"))),
        ("config".into(), report_config(sweep)),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_striped.json` file: ns/transfer for the
/// striped structures across lane counts under the contended (threads ≫
/// cores) preset, against the unstriped baseline. The per-series schema
/// rev 2 `counters` section carries the `striped.*` and CAS-failure probe
/// deltas the scalability claims rest on. Returns the path written
/// (overridable with `SYNQ_STRIPED_PATH`).
pub fn write_bench_striped(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = striped_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("striped"))),
        ("config".into(), report_config(sweep)),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_ring.json` file: ns/transfer for the
/// bounded ring fast path across capacity × batch-size × pair-count,
/// against the unbounded linked baseline. The per-series `counters`
/// section carries the `ring.*` probe deltas plus the explicitly recorded
/// `epoch.pins` / `node_cache.*` values — zero for the pure buffered
/// series, which is the allocation-free/epoch-free acceptance proof.
/// Returns the path written (overridable with `SYNQ_RING_PATH`).
pub fn write_bench_ring(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = ring_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("ring"))),
        ("config".into(), report_config(sweep)),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_reclaim.json` file: transfers/sec per
/// reclamation backend under stalled-thread injection (one reader parked
/// mid-critical-section while producer/consumer pairs hammer the queue).
/// Each series' `counters` section records the backend's
/// `reclaim.peak_pending` — the peak unreclaimed-garbage watermark the
/// stalled-thread garbage-bound claims rest on (recorded explicitly, even
/// when zero). Returns the path written (overridable with
/// `SYNQ_RECLAIM_PATH`).
pub fn write_bench_reclaim(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = reclaim_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("reclaim"))),
        ("config".into(), report_config(sweep)),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_combiner.json` file: ns/transfer for the
/// flat-combining structures against the classic, striped, and java5-fair
/// variants under the oversubscribed (threads ≫ cores) preset — the
/// scheduler-subversion scenario combining exists for. Each combiner
/// series' `counters` section carries the always-on `combiner.sweeps` /
/// `combiner.requests` totals plus a derived `combiner.requests_per_sweep`
/// (floored mean batch size), alongside any stats-build probe deltas.
/// Returns the path written (overridable with `SYNQ_COMBINER_PATH`).
pub fn write_bench_combiner(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = combiner_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("combiner"))),
        ("config".into(), report_config(sweep)),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_server.json` file: the dispatch-server
/// scenario (async connections dispatching jobs into the executor pool
/// through a rendezvous channel) per queue variant, across the steady /
/// burst / timeout-storm / cancellation-wave phases. Every series carries
/// a schema rev 3 `latency` block — tails, not means, are this file's
/// entire point: p999 is the headline number for the global-FIFO vs
/// striped vs combiner fairness comparison. The `counters` section records
/// the always-on `server.requests` / `server.timeouts` / `server.cancels`
/// / `server.burst_drops` totals. Returns the path written (overridable
/// with `SYNQ_SERVER_PATH`).
pub fn write_bench_server(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = server_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("server"))),
        ("config".into(), report_config(sweep)),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_park.json` file: the wait-path
/// microbenchmarks (PR 10) — park/unpark round trip and timed-wait churn
/// for the platform-default (futex on Linux) and condvar parker backends,
/// plus rendezvous handoff under the calibrated adaptive spin policy
/// against fixed budgets. The `roundtrip/default` vs `roundtrip/condvar`
/// gap is the committed evidence for the raw-futex win. Returns the path
/// written (overridable with `SYNQ_PARK_PATH`).
pub fn write_bench_park(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = park_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("park"))),
        ("config".into(), report_config(sweep)),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut r = FigureReport::new("figureX", "test", "pairs", "ns/transfer", vec![1, 2]);
        r.push_series("a".into(), vec![100.0, 200.0]);
        r.push_series("b".into(), vec![50.0, 40.0]);
        r
    }

    #[test]
    fn table_contains_all_cells() {
        let t = sample().to_table();
        assert!(t.contains("figureX"));
        assert!(t.contains('a') && t.contains('b'));
        assert!(t.contains("100") && t.contains("40"));
    }

    #[test]
    fn ratio_uses_last_level() {
        let r = sample();
        assert_eq!(r.ratio_at_max("a", "b"), Some(5.0));
        assert_eq!(r.ratio_at_max("a", "missing"), None);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let s = r.to_json().pretty();
        let back = FigureReport::from_json(&Json::parse(&s).unwrap()).unwrap();
        assert_eq!(back.levels, r.levels);
        assert_eq!(back.series.len(), 2);
        assert_eq!(back.series[1].values, r.series[1].values);
        assert_eq!(back.id, "figureX");
    }

    #[test]
    fn headline_file_contains_all_algorithms() {
        let dir = std::env::temp_dir().join(format!("synq-headline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_headline.json");
        std::env::set_var("SYNQ_HEADLINE_PATH", &path);
        let written = write_bench_headline(&sample(), Some(&sample())).unwrap();
        std::env::remove_var("SYNQ_HEADLINE_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        let handoff = FigureReport::from_json(doc.get("handoff").unwrap()).unwrap();
        assert_eq!(handoff.series.len(), 2);
        assert!(doc.get("executor").is_some());
        assert!(doc.get("config").is_some(), "config block recorded");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wait_strategy_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-waitstrat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_wait_strategy.json");
        std::env::set_var("SYNQ_WAIT_STRATEGY_PATH", &path);
        let written = write_bench_wait_strategy(&sample()).unwrap();
        std::env::remove_var("SYNQ_WAIT_STRATEGY_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-wait-strategy/v{BENCH_SCHEMA_REV}"))
        );
        assert!(doc.get("config").is_some(), "config block recorded");
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn async_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-async-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_async.json");
        std::env::set_var("SYNQ_ASYNC_PATH", &path);
        let written = write_bench_async(&sample()).unwrap();
        std::env::remove_var("SYNQ_ASYNC_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-async/v{BENCH_SCHEMA_REV}"))
        );
        assert!(doc.get("config").is_some(), "config block recorded");
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn striped_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-striped-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_striped.json");
        std::env::set_var("SYNQ_STRIPED_PATH", &path);
        let written = write_bench_striped(&sample()).unwrap();
        std::env::remove_var("SYNQ_STRIPED_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-striped/v{BENCH_SCHEMA_REV}"))
        );
        assert!(read_bench_file(&written, "striped").is_ok());
        assert!(doc.get("config").is_some(), "config block recorded");
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-ring-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_ring.json");
        std::env::set_var("SYNQ_RING_PATH", &path);
        let written = write_bench_ring(&sample()).unwrap();
        std::env::remove_var("SYNQ_RING_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-ring/v{BENCH_SCHEMA_REV}"))
        );
        assert!(read_bench_file(&written, "ring").is_ok());
        assert!(doc.get("config").is_some(), "config block recorded");
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn park_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-park-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_park.json");
        std::env::set_var("SYNQ_PARK_PATH", &path);
        let written = write_bench_park(&sample()).unwrap();
        std::env::remove_var("SYNQ_PARK_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-park/v{BENCH_SCHEMA_REV}"))
        );
        assert!(read_bench_file(&written, "park").is_ok());
        assert!(doc.get("config").is_some(), "config block recorded");
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reclaim_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-reclaim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_reclaim.json");
        std::env::set_var("SYNQ_RECLAIM_PATH", &path);
        let written = write_bench_reclaim(&sample()).unwrap();
        std::env::remove_var("SYNQ_RECLAIM_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-reclaim/v{BENCH_SCHEMA_REV}"))
        );
        assert!(read_bench_file(&written, "reclaim").is_ok());
        assert!(doc.get("config").is_some(), "config block recorded");
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn combiner_file_roundtrips_with_config_block() {
        let dir = std::env::temp_dir().join(format!("synq-combiner-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_combiner.json");
        std::env::set_var("SYNQ_COMBINER_PATH", &path);
        let written = write_bench_combiner(&sample()).unwrap();
        std::env::remove_var("SYNQ_COMBINER_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-combiner/v{BENCH_SCHEMA_REV}"))
        );
        assert!(read_bench_file(&written, "combiner").is_ok());
        // A v99 combiner file must be rejected with the clear-rebuild error.
        let future = Json::Obj(vec![(
            "schema".into(),
            Json::Str("synq-bench-combiner/v99".into()),
        )]);
        let err = check_bench_schema(&future, "combiner").unwrap_err();
        assert!(err.contains("unknown schema revision"), "got: {err}");
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        // PR 8: every BENCH file records the host/run config block.
        let config = doc.get("config").expect("config block present");
        assert!(config.get("cores").and_then(Json::as_f64).unwrap() >= 1.0);
        let ks = config
            .get("oversub_factors")
            .and_then(Json::as_array)
            .unwrap();
        assert!(!ks.is_empty() && ks.iter().all(|k| k.as_f64().unwrap() >= 2.0));
        assert!(config.get("quick").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refresh_preserves_the_originating_runs_config() {
        // A figure generated under one configuration must keep that config
        // through a later write (e.g. a `summary` refresh in a different
        // environment), and a figure round-trips its config through JSON.
        let mut r = sample();
        let original = Json::Obj(vec![
            ("cores".into(), Json::Num(96.0)),
            (
                "oversub_factors".into(),
                Json::Arr(vec![Json::Num(2.0), Json::Num(32.0)]),
            ),
            ("quick".into(), Json::Bool(false)),
        ]);
        r.config = Some(original.clone());
        let back = FigureReport::from_json(&Json::parse(&r.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(back.config.as_ref(), Some(&original));

        let dir = std::env::temp_dir().join(format!("synq-cfgkeep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_combiner.json");
        std::env::set_var("SYNQ_COMBINER_PATH", &path);
        let written = write_bench_combiner(&back).unwrap();
        std::env::remove_var("SYNQ_COMBINER_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("cores"))
                .and_then(Json::as_f64),
            Some(96.0),
            "refresh must not stamp the current host's config onto old data"
        );
        // A config-less (pre-PR-8) figure falls back to the environment.
        let mut legacy = sample();
        legacy.config = None;
        assert!(report_config(&legacy).get("cores").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_block_is_well_formed() {
        let config = bench_config_json();
        assert!(config.get("cores").and_then(Json::as_f64).unwrap() >= 1.0);
        let ks = config
            .get("oversub_factors")
            .and_then(Json::as_array)
            .unwrap();
        assert!(!ks.is_empty() && ks.iter().all(|k| k.as_f64().unwrap() >= 2.0));
        assert!(config.get("quick").is_some());
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn mismatched_series_length_panics() {
        let mut r = FigureReport::new("f", "t", "x", "u", vec![1, 2, 3]);
        r.push_series("a".into(), vec![1.0]);
    }

    #[test]
    fn counters_roundtrip_and_are_omitted_when_empty() {
        let mut r = FigureReport::new("f", "t", "x", "u", vec![1]);
        r.push_series("plain".into(), vec![1.0]);
        r.push_series_with_counters(
            "counted".into(),
            vec![2.0],
            vec![("wait.parks".into(), 41u64), ("queue.cas.fail".into(), 7)],
        );
        let text = r.to_json().pretty();
        let back = FigureReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.series[0].counters.is_empty());
        assert_eq!(
            back.series[1].counters,
            vec![
                ("wait.parks".to_string(), 41),
                ("queue.cas.fail".to_string(), 7)
            ]
        );
        // The empty section is omitted entirely, keeping v2 files readable
        // by v1-era tooling that ignores unknown fields.
        assert_eq!(text.matches("counters").count(), 1);
    }

    fn sample_latency() -> LatencySummary {
        LatencySummary {
            count: 1000,
            p50: 900,
            p90: 2_100,
            p99: 14_000,
            p999: 220_000,
            max: 231_047,
            buckets: vec![(896, 600), (2_048, 390), (212_992, 10)],
        }
    }

    #[test]
    fn latency_roundtrips_and_is_omitted_when_absent() {
        let mut r = FigureReport::new("f", "t", "x", "u", vec![1]);
        r.push_series("plain".into(), vec![1.0]);
        r.push_series_full(
            "tailed".into(),
            vec![2.0],
            Vec::new(),
            Some(sample_latency()),
        );
        let text = r.to_json().pretty();
        let back = FigureReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.series[0].latency.is_none());
        assert_eq!(back.series[1].latency, Some(sample_latency()));
        assert!(back.series[1].latency.as_ref().unwrap().is_monotone());
        // The absent section is omitted entirely, keeping rev 3 files
        // readable by rev 1/2-era tooling that ignores unknown fields.
        assert_eq!(text.matches("latency").count(), 1);
    }

    #[test]
    fn latency_from_json_rejects_malformed_blocks() {
        let no_buckets = Json::Obj(vec![("count".into(), Json::Num(1.0))]);
        assert!(latency_from_json(&no_buckets)
            .unwrap_err()
            .contains("buckets"));
        let bad_pair =
            Json::parse(r#"{"count":1,"p50":1,"p90":1,"p99":1,"p999":1,"max":1,"buckets":[[1]]}"#)
                .unwrap();
        assert!(latency_from_json(&bad_pair).unwrap_err().contains("pair"));
    }

    #[test]
    fn server_file_roundtrips_with_latency() {
        let dir = std::env::temp_dir().join(format!("synq-server-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_server.json");
        std::env::set_var("SYNQ_SERVER_PATH", &path);
        let mut r = FigureReport::new("server", "dispatch server", "phase", "ns/request", vec![1]);
        r.push_series_full(
            "new-fair".into(),
            vec![5_000.0],
            Vec::new(),
            Some(sample_latency()),
        );
        let written = write_bench_server(&r).unwrap();
        std::env::remove_var("SYNQ_SERVER_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(&format!("synq-bench-server/v{BENCH_SCHEMA_REV}")[..])
        );
        assert!(read_bench_file(&written, "server").is_ok());
        assert!(doc.get("config").is_some(), "config block recorded");
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series[0].latency, Some(sample_latency()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_check_accepts_known_revisions() {
        for rev in BENCH_SCHEMA_OLDEST..=BENCH_SCHEMA_REV {
            let doc = Json::Obj(vec![(
                "schema".into(),
                Json::Str(format!("synq-bench-headline/v{rev}")),
            )]);
            assert_eq!(check_bench_schema(&doc, "headline"), Ok(rev));
        }
    }

    #[test]
    fn schema_check_rejects_unknown_and_missing() {
        let future = Json::Obj(vec![(
            "schema".into(),
            Json::Str("synq-bench-headline/v99".into()),
        )]);
        let err = check_bench_schema(&future, "headline").unwrap_err();
        assert!(err.contains("unknown schema revision"), "got: {err}");
        let wrong_family = check_bench_schema(&future, "async").unwrap_err();
        assert!(
            wrong_family.contains("unrecognized schema"),
            "got: {wrong_family}"
        );
        let empty = Json::Obj(vec![]);
        let missing = check_bench_schema(&empty, "headline").unwrap_err();
        assert!(missing.contains("missing `schema`"), "got: {missing}");
    }

    #[test]
    fn read_bench_file_reports_missing_and_bad_schema() {
        let dir = std::env::temp_dir().join(format!("synq-readbench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let absent = dir.join("BENCH_headline.json");
        let err = read_bench_file(&absent, "headline").unwrap_err();
        assert!(err.contains("cannot read"), "got: {err}");
        let stale = dir.join("BENCH_stale.json");
        std::fs::write(&stale, "{\"schema\": \"synq-bench-headline/v99\"}").unwrap();
        let err = read_bench_file(&stale, "headline").unwrap_err();
        assert!(err.contains("unknown schema revision"), "got: {err}");
        let garbage = dir.join("BENCH_garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        let err = read_bench_file(&garbage, "headline").unwrap_err();
        assert!(err.contains("invalid JSON"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn written_files_pass_their_own_schema_check() {
        let dir = std::env::temp_dir().join(format!("synq-selfcheck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_headline.json");
        std::env::set_var("SYNQ_HEADLINE_PATH", &path);
        write_bench_headline(&sample(), None).unwrap();
        let checked = read_bench_file(&path, "headline");
        std::env::remove_var("SYNQ_HEADLINE_PATH");
        assert!(checked.is_ok(), "got: {checked:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
