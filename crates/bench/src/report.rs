//! Table printing and JSON output for figure regeneration.

use crate::json::Json;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One curve of a figure: an algorithm's value at each x-axis level.
#[derive(Debug, Clone)]
pub struct Series {
    /// Column label (algorithm name).
    pub name: String,
    /// One value per x-axis level, in the figure's unit.
    pub values: Vec<f64>,
    /// Probe-counter deltas accumulated over this series' whole sweep
    /// (`synq-obs` probe name → count). Populated only when the harness is
    /// built with `--features stats`; empty otherwise, and omitted from the
    /// JSON when empty. Schema rev 2 added this section.
    pub counters: Vec<(String, u64)>,
}

/// A regenerated figure: x-axis levels plus one series per algorithm.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Figure identifier, e.g. `"figure3"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label, e.g. `"pairs"`.
    pub x_label: String,
    /// Unit of the values, e.g. `"ns/transfer"`.
    pub unit: String,
    /// X-axis levels.
    pub levels: Vec<usize>,
    /// One series per algorithm.
    pub series: Vec<Series>,
}

fn str_field(json: &Json, key: &str) -> Result<String, String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, x_label: &str, unit: &str, levels: Vec<usize>) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            unit: unit.into(),
            levels,
            series: Vec::new(),
        }
    }

    /// Adds a completed series.
    pub fn push_series(&mut self, name: String, values: Vec<f64>) {
        self.push_series_with_counters(name, values, Vec::new());
    }

    /// Adds a completed series with its probe-counter deltas (the
    /// `synq-obs` events recorded while the series ran). Pass an empty
    /// vector when stats are off — the section is omitted from the JSON.
    pub fn push_series_with_counters(
        &mut self,
        name: String,
        values: Vec<f64>,
        counters: Vec<(String, u64)>,
    ) {
        assert_eq!(values.len(), self.levels.len());
        self.series.push(Series {
            name,
            values,
            counters,
        });
    }

    /// Renders the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {} ({})\n", self.id, self.title, self.unit));
        let mut header = format!("{:>8}", self.x_label);
        for s in &self.series {
            header.push_str(&format!("  {:>14}", s.name));
        }
        out.push_str(&header);
        out.push('\n');
        for (row, &level) in self.levels.iter().enumerate() {
            let mut line = format!("{level:>8}");
            for s in &self.series {
                line.push_str(&format!("  {:>14.0}", s.values[row]));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Converts to the JSON document written by [`FigureReport::write_json`].
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            ("x_label".into(), Json::Str(self.x_label.clone())),
            ("unit".into(), Json::Str(self.unit.clone())),
            (
                "levels".into(),
                Json::Arr(self.levels.iter().map(|&l| Json::Num(l as f64)).collect()),
            ),
            (
                "series".into(),
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            let mut fields = vec![
                                ("name".into(), Json::Str(s.name.clone())),
                                (
                                    "values".into(),
                                    Json::Arr(s.values.iter().map(|&v| Json::Num(v)).collect()),
                                ),
                            ];
                            if !s.counters.is_empty() {
                                fields.push((
                                    "counters".into(),
                                    Json::Obj(
                                        s.counters
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                                            .collect(),
                                    ),
                                ));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a JSON document produced by [`FigureReport::to_json`].
    pub fn from_json(json: &Json) -> Result<FigureReport, String> {
        let levels = json
            .get("levels")
            .and_then(Json::as_array)
            .ok_or("missing array field `levels`")?
            .iter()
            .map(|l| l.as_f64().map(|v| v as usize).ok_or("non-numeric level"))
            .collect::<Result<Vec<_>, _>>()?;
        let series = json
            .get("series")
            .and_then(Json::as_array)
            .ok_or("missing array field `series`")?
            .iter()
            .map(|s| {
                let values = s
                    .get("values")
                    .and_then(Json::as_array)
                    .ok_or("series missing `values`")?
                    .iter()
                    .map(|v| v.as_f64().ok_or("non-numeric value"))
                    .collect::<Result<Vec<_>, _>>()?;
                let counters = match s.get("counters") {
                    None => Vec::new(),
                    Some(c) => c
                        .as_object()
                        .ok_or("series `counters` is not an object")?
                        .iter()
                        .map(|(k, v)| {
                            v.as_f64()
                                .map(|n| (k.clone(), n as u64))
                                .ok_or("non-numeric counter")
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                Ok::<Series, String>(Series {
                    name: str_field(s, "name")?,
                    values,
                    counters,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FigureReport {
            id: str_field(json, "id")?,
            title: str_field(json, "title")?,
            x_label: str_field(json, "x_label")?,
            unit: str_field(json, "unit")?,
            levels,
            series,
        })
    }

    /// Writes `target/figures/<id>.json` (path overridable with the
    /// `SYNQ_FIGURE_DIR` environment variable). Returns the path.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("SYNQ_FIGURE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/figures"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().pretty().as_bytes())?;
        Ok(path)
    }

    /// Ratio of two series at the highest level (used for the headline
    /// claims table). Returns `None` if either series is missing.
    pub fn ratio_at_max(&self, numerator: &str, denominator: &str) -> Option<f64> {
        let last = self.levels.len().checked_sub(1)?;
        let num = self.series.iter().find(|s| s.name == numerator)?;
        let den = self.series.iter().find(|s| s.name == denominator)?;
        Some(num.values[last] / den.values[last])
    }
}

/// Schema revision the writers emit. Rev 2 (PR 4) added the optional
/// per-series `counters` section (probe-counter deltas from `synq-obs`);
/// rev 1 files are identical minus that section, so readers accept both.
pub const BENCH_SCHEMA_REV: u32 = 2;

/// Oldest schema revision the readers still understand.
pub const BENCH_SCHEMA_OLDEST: u32 = 1;

fn schema_string(family: &str) -> String {
    format!("synq-bench-{family}/v{BENCH_SCHEMA_REV}")
}

/// Validates the `schema` field of a `BENCH_*.json` document against a
/// schema family (`"headline"`, `"wait-strategy"`, `"async"`,
/// `"striped"`, `"ring"`, `"reclaim"`). Returns the
/// revision on success; a descriptive error for a missing field, a
/// different family, or a revision outside
/// [`BENCH_SCHEMA_OLDEST`]..=[`BENCH_SCHEMA_REV`].
pub fn check_bench_schema(doc: &Json, family: &str) -> Result<u32, String> {
    let prefix = format!("synq-bench-{family}/v");
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing `schema` field (expected `{prefix}N`)"))?;
    let rev = schema
        .strip_prefix(&prefix)
        .and_then(|r| r.parse::<u32>().ok())
        .ok_or_else(|| format!("unrecognized schema `{schema}` (expected `{prefix}N`)"))?;
    if (BENCH_SCHEMA_OLDEST..=BENCH_SCHEMA_REV).contains(&rev) {
        Ok(rev)
    } else {
        Err(format!(
            "unknown schema revision `{schema}`: this binary understands \
             `{prefix}{BENCH_SCHEMA_OLDEST}` through `{prefix}{BENCH_SCHEMA_REV}` — \
             rebuild the tools or regenerate the file"
        ))
    }
}

/// Reads and schema-checks a `BENCH_*.json` file. Errors (as a printable
/// message, never a panic) when the file is missing, is not valid JSON, or
/// carries an unknown schema revision.
pub fn read_bench_file(path: &Path, family: &str) -> Result<Json, String> {
    let data = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read {}: {e} (run the matching figure binary first)",
            path.display()
        )
    })?;
    let doc = Json::parse(&data).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    check_bench_schema(&doc, family).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc)
}

fn bench_path(env: &str, file: &str) -> PathBuf {
    // Anchor at the workspace root regardless of the invocation directory:
    // this crate lives at `<root>/crates/bench`.
    std::env::var(env).map(PathBuf::from).unwrap_or_else(|_| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file)
    })
}

/// Resolved path of `BENCH_headline.json` (`SYNQ_HEADLINE_PATH` override).
pub fn headline_path() -> PathBuf {
    bench_path("SYNQ_HEADLINE_PATH", "BENCH_headline.json")
}

/// Resolved path of `BENCH_wait_strategy.json` (`SYNQ_WAIT_STRATEGY_PATH`
/// override).
pub fn wait_strategy_path() -> PathBuf {
    bench_path("SYNQ_WAIT_STRATEGY_PATH", "BENCH_wait_strategy.json")
}

/// Resolved path of `BENCH_async.json` (`SYNQ_ASYNC_PATH` override).
pub fn async_path() -> PathBuf {
    bench_path("SYNQ_ASYNC_PATH", "BENCH_async.json")
}

/// Resolved path of `BENCH_striped.json` (`SYNQ_STRIPED_PATH` override).
pub fn striped_path() -> PathBuf {
    bench_path("SYNQ_STRIPED_PATH", "BENCH_striped.json")
}

/// Resolved path of `BENCH_ring.json` (`SYNQ_RING_PATH` override).
pub fn ring_path() -> PathBuf {
    bench_path("SYNQ_RING_PATH", "BENCH_ring.json")
}

/// Resolved path of `BENCH_reclaim.json` (`SYNQ_RECLAIM_PATH` override).
pub fn reclaim_path() -> PathBuf {
    bench_path("SYNQ_RECLAIM_PATH", "BENCH_reclaim.json")
}

/// Probe-counter deltas since `before`, in the owned form
/// [`Series::counters`] stores. Empty when stats are off (every delta is
/// zero), so callers can pass the result straight to
/// [`FigureReport::push_series_with_counters`] unconditionally.
pub fn counter_deltas_since(before: &synq_obs::StatsSnapshot) -> Vec<(String, u64)> {
    synq_obs::StatsSnapshot::take()
        .delta(before)
        .nonzero()
        .into_iter()
        .map(|(name, v)| (name.to_owned(), v))
        .collect()
}

/// Writes the repo-root `BENCH_headline.json` perf-trajectory file:
/// machine-readable ns/transfer (and optionally ns/task) per algorithm per
/// concurrency level, consumed by future PRs for regression comparison.
/// Returns the path written.
pub fn write_bench_headline(
    handoff: &FigureReport,
    pool: Option<&FigureReport>,
) -> std::io::Result<PathBuf> {
    let path = headline_path();
    let mut fields = vec![
        ("schema".into(), Json::Str(schema_string("headline"))),
        ("handoff".into(), handoff.to_json()),
    ];
    if let Some(pool) = pool {
        fields.push(("executor".into(), pool.to_json()));
    }
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_wait_strategy.json` file (alongside
/// `BENCH_headline.json`): ns/transfer for every `structure/strategy`
/// combination, consumed to confirm the shared wait loop is perf-neutral
/// and to compare strategies uniformly across structures. Returns the path
/// written (overridable with `SYNQ_WAIT_STRATEGY_PATH`).
pub fn write_bench_wait_strategy(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = wait_strategy_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("wait-strategy"))),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_async.json` file: ns/transfer for the
/// async front-end (`synq-async`) against the blocking API on the same
/// structures, consumed to track the overhead of the waker-based wait
/// mode. Returns the path written (overridable with `SYNQ_ASYNC_PATH`).
pub fn write_bench_async(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = async_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("async"))),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_striped.json` file: ns/transfer for the
/// striped structures across lane counts under the contended (threads ≫
/// cores) preset, against the unstriped baseline. The per-series schema
/// rev 2 `counters` section carries the `striped.*` and CAS-failure probe
/// deltas the scalability claims rest on. Returns the path written
/// (overridable with `SYNQ_STRIPED_PATH`).
pub fn write_bench_striped(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = striped_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("striped"))),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_ring.json` file: ns/transfer for the
/// bounded ring fast path across capacity × batch-size × pair-count,
/// against the unbounded linked baseline. The per-series `counters`
/// section carries the `ring.*` probe deltas plus the explicitly recorded
/// `epoch.pins` / `node_cache.*` values — zero for the pure buffered
/// series, which is the allocation-free/epoch-free acceptance proof.
/// Returns the path written (overridable with `SYNQ_RING_PATH`).
pub fn write_bench_ring(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = ring_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("ring"))),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

/// Writes the repo-root `BENCH_reclaim.json` file: transfers/sec per
/// reclamation backend under stalled-thread injection (one reader parked
/// mid-critical-section while producer/consumer pairs hammer the queue).
/// Each series' `counters` section records the backend's
/// `reclaim.peak_pending` — the peak unreclaimed-garbage watermark the
/// stalled-thread garbage-bound claims rest on (recorded explicitly, even
/// when zero). Returns the path written (overridable with
/// `SYNQ_RECLAIM_PATH`).
pub fn write_bench_reclaim(sweep: &FigureReport) -> std::io::Result<PathBuf> {
    let path = reclaim_path();
    let fields = vec![
        ("schema".into(), Json::Str(schema_string("reclaim"))),
        ("sweep".into(), sweep.to_json()),
    ];
    let mut f = std::fs::File::create(&path)?;
    f.write_all(Json::Obj(fields).pretty().as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut r = FigureReport::new("figureX", "test", "pairs", "ns/transfer", vec![1, 2]);
        r.push_series("a".into(), vec![100.0, 200.0]);
        r.push_series("b".into(), vec![50.0, 40.0]);
        r
    }

    #[test]
    fn table_contains_all_cells() {
        let t = sample().to_table();
        assert!(t.contains("figureX"));
        assert!(t.contains('a') && t.contains('b'));
        assert!(t.contains("100") && t.contains("40"));
    }

    #[test]
    fn ratio_uses_last_level() {
        let r = sample();
        assert_eq!(r.ratio_at_max("a", "b"), Some(5.0));
        assert_eq!(r.ratio_at_max("a", "missing"), None);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let s = r.to_json().pretty();
        let back = FigureReport::from_json(&Json::parse(&s).unwrap()).unwrap();
        assert_eq!(back.levels, r.levels);
        assert_eq!(back.series.len(), 2);
        assert_eq!(back.series[1].values, r.series[1].values);
        assert_eq!(back.id, "figureX");
    }

    #[test]
    fn headline_file_contains_all_algorithms() {
        let dir = std::env::temp_dir().join(format!("synq-headline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_headline.json");
        std::env::set_var("SYNQ_HEADLINE_PATH", &path);
        let written = write_bench_headline(&sample(), Some(&sample())).unwrap();
        std::env::remove_var("SYNQ_HEADLINE_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        let handoff = FigureReport::from_json(doc.get("handoff").unwrap()).unwrap();
        assert_eq!(handoff.series.len(), 2);
        assert!(doc.get("executor").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wait_strategy_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-waitstrat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_wait_strategy.json");
        std::env::set_var("SYNQ_WAIT_STRATEGY_PATH", &path);
        let written = write_bench_wait_strategy(&sample()).unwrap();
        std::env::remove_var("SYNQ_WAIT_STRATEGY_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-wait-strategy/v{BENCH_SCHEMA_REV}"))
        );
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn async_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-async-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_async.json");
        std::env::set_var("SYNQ_ASYNC_PATH", &path);
        let written = write_bench_async(&sample()).unwrap();
        std::env::remove_var("SYNQ_ASYNC_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-async/v{BENCH_SCHEMA_REV}"))
        );
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn striped_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-striped-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_striped.json");
        std::env::set_var("SYNQ_STRIPED_PATH", &path);
        let written = write_bench_striped(&sample()).unwrap();
        std::env::remove_var("SYNQ_STRIPED_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-striped/v{BENCH_SCHEMA_REV}"))
        );
        assert!(read_bench_file(&written, "striped").is_ok());
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-ring-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_ring.json");
        std::env::set_var("SYNQ_RING_PATH", &path);
        let written = write_bench_ring(&sample()).unwrap();
        std::env::remove_var("SYNQ_RING_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-ring/v{BENCH_SCHEMA_REV}"))
        );
        assert!(read_bench_file(&written, "ring").is_ok());
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reclaim_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("synq-reclaim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_reclaim.json");
        std::env::set_var("SYNQ_RECLAIM_PATH", &path);
        let written = write_bench_reclaim(&sample()).unwrap();
        std::env::remove_var("SYNQ_RECLAIM_PATH");
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str).map(str::to_owned),
            Some(format!("synq-bench-reclaim/v{BENCH_SCHEMA_REV}"))
        );
        assert!(read_bench_file(&written, "reclaim").is_ok());
        let sweep = FigureReport::from_json(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(sweep.series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn mismatched_series_length_panics() {
        let mut r = FigureReport::new("f", "t", "x", "u", vec![1, 2, 3]);
        r.push_series("a".into(), vec![1.0]);
    }

    #[test]
    fn counters_roundtrip_and_are_omitted_when_empty() {
        let mut r = FigureReport::new("f", "t", "x", "u", vec![1]);
        r.push_series("plain".into(), vec![1.0]);
        r.push_series_with_counters(
            "counted".into(),
            vec![2.0],
            vec![("wait.parks".into(), 41u64), ("queue.cas.fail".into(), 7)],
        );
        let text = r.to_json().pretty();
        let back = FigureReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.series[0].counters.is_empty());
        assert_eq!(
            back.series[1].counters,
            vec![
                ("wait.parks".to_string(), 41),
                ("queue.cas.fail".to_string(), 7)
            ]
        );
        // The empty section is omitted entirely, keeping v2 files readable
        // by v1-era tooling that ignores unknown fields.
        assert_eq!(text.matches("counters").count(), 1);
    }

    #[test]
    fn schema_check_accepts_known_revisions() {
        for rev in BENCH_SCHEMA_OLDEST..=BENCH_SCHEMA_REV {
            let doc = Json::Obj(vec![(
                "schema".into(),
                Json::Str(format!("synq-bench-headline/v{rev}")),
            )]);
            assert_eq!(check_bench_schema(&doc, "headline"), Ok(rev));
        }
    }

    #[test]
    fn schema_check_rejects_unknown_and_missing() {
        let future = Json::Obj(vec![(
            "schema".into(),
            Json::Str("synq-bench-headline/v99".into()),
        )]);
        let err = check_bench_schema(&future, "headline").unwrap_err();
        assert!(err.contains("unknown schema revision"), "got: {err}");
        let wrong_family = check_bench_schema(&future, "async").unwrap_err();
        assert!(
            wrong_family.contains("unrecognized schema"),
            "got: {wrong_family}"
        );
        let empty = Json::Obj(vec![]);
        let missing = check_bench_schema(&empty, "headline").unwrap_err();
        assert!(missing.contains("missing `schema`"), "got: {missing}");
    }

    #[test]
    fn read_bench_file_reports_missing_and_bad_schema() {
        let dir = std::env::temp_dir().join(format!("synq-readbench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let absent = dir.join("BENCH_headline.json");
        let err = read_bench_file(&absent, "headline").unwrap_err();
        assert!(err.contains("cannot read"), "got: {err}");
        let stale = dir.join("BENCH_stale.json");
        std::fs::write(&stale, "{\"schema\": \"synq-bench-headline/v99\"}").unwrap();
        let err = read_bench_file(&stale, "headline").unwrap_err();
        assert!(err.contains("unknown schema revision"), "got: {err}");
        let garbage = dir.join("BENCH_garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        let err = read_bench_file(&garbage, "headline").unwrap_err();
        assert!(err.contains("invalid JSON"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn written_files_pass_their_own_schema_check() {
        let dir = std::env::temp_dir().join(format!("synq-selfcheck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_headline.json");
        std::env::set_var("SYNQ_HEADLINE_PATH", &path);
        write_bench_headline(&sample(), None).unwrap();
        let checked = read_bench_file(&path, "headline");
        std::env::remove_var("SYNQ_HEADLINE_PATH");
        assert!(checked.is_ok(), "got: {checked:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
