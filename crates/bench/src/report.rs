//! Table printing and JSON output for figure regeneration.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::PathBuf;

/// One curve of a figure: an algorithm's value at each x-axis level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Column label (algorithm name).
    pub name: String,
    /// One value per x-axis level, in the figure's unit.
    pub values: Vec<f64>,
}

/// A regenerated figure: x-axis levels plus one series per algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Figure identifier, e.g. `"figure3"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label, e.g. `"pairs"`.
    pub x_label: String,
    /// Unit of the values, e.g. `"ns/transfer"`.
    pub unit: String,
    /// X-axis levels.
    pub levels: Vec<usize>,
    /// One series per algorithm.
    pub series: Vec<Series>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, x_label: &str, unit: &str, levels: Vec<usize>) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            unit: unit.into(),
            levels,
            series: Vec::new(),
        }
    }

    /// Adds a completed series.
    pub fn push_series(&mut self, name: String, values: Vec<f64>) {
        assert_eq!(values.len(), self.levels.len());
        self.series.push(Series { name, values });
    }

    /// Renders the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {} ({})\n", self.id, self.title, self.unit));
        let mut header = format!("{:>8}", self.x_label);
        for s in &self.series {
            header.push_str(&format!("  {:>14}", s.name));
        }
        out.push_str(&header);
        out.push('\n');
        for (row, &level) in self.levels.iter().enumerate() {
            let mut line = format!("{level:>8}");
            for s in &self.series {
                line.push_str(&format!("  {:>14.0}", s.values[row]));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Writes `target/figures/<id>.json` (path overridable with the
    /// `SYNQ_FIGURE_DIR` environment variable). Returns the path.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("SYNQ_FIGURE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/figures"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(serde_json::to_string_pretty(self).expect("serialize").as_bytes())?;
        Ok(path)
    }

    /// Ratio of two series at the highest level (used for the headline
    /// claims table). Returns `None` if either series is missing.
    pub fn ratio_at_max(&self, numerator: &str, denominator: &str) -> Option<f64> {
        let last = self.levels.len().checked_sub(1)?;
        let num = self.series.iter().find(|s| s.name == numerator)?;
        let den = self.series.iter().find(|s| s.name == denominator)?;
        Some(num.values[last] / den.values[last])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut r = FigureReport::new("figureX", "test", "pairs", "ns/transfer", vec![1, 2]);
        r.push_series("a".into(), vec![100.0, 200.0]);
        r.push_series("b".into(), vec![50.0, 40.0]);
        r
    }

    #[test]
    fn table_contains_all_cells() {
        let t = sample().to_table();
        assert!(t.contains("figureX"));
        assert!(t.contains('a') && t.contains('b'));
        assert!(t.contains("100") && t.contains("40"));
    }

    #[test]
    fn ratio_uses_last_level() {
        let r = sample();
        assert_eq!(r.ratio_at_max("a", "b"), Some(5.0));
        assert_eq!(r.ratio_at_max("a", "missing"), None);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let s = serde_json::to_string(&r).unwrap();
        let back: FigureReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back.levels, r.levels);
        assert_eq!(back.series.len(), 2);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn mismatched_series_length_panics() {
        let mut r = FigureReport::new("f", "t", "x", "u", vec![1, 2, 3]);
        r.push_series("a".into(), vec![1.0]);
    }
}
