//! A cached thread-pool executor built around a synchronous handoff
//! channel — the Rust analogue of `java.util.concurrent.ThreadPoolExecutor`
//! with a `SynchronousQueue` work queue, "which in turn forms the backbone
//! of many Java-based server applications" (paper §4).
//!
//! The executor exercises the full rich interface of the underlying
//! channel, exactly as the paper describes:
//!
//! > "Producers deliver tasks to waiting worker threads if immediately
//! > available, but otherwise create new worker threads. Conversely, worker
//! > threads terminate themselves if no work appears within a given
//! > keep-alive period (or if the pool is shut down via an interrupt)."
//!
//! Concretely: [`ThreadPool::execute`] first `offer`s the task (succeeds
//! only if a worker is already parked in `poll`); on failure it spawns a
//! new worker up to `max_pool_size`. Idle workers block in a *timed* take
//! with the keep-alive patience and retire on timeout;
//! [`ThreadPool::shutdown`] interrupts them through a [`CancelToken`].
//! This is the workload of **Figure 6**, with the channel pluggable so
//! every algorithm from the evaluation can sit at the pool's core.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use synq::{CancelToken, Deadline, TimedSyncChannel, TransferOutcome};
use synq_primitives::{CachePadded, WaiterCell};

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned when the pool cannot accept a task.
pub enum ExecuteError {
    /// The pool has been shut down.
    Shutdown(Job),
    /// No worker was free and `max_pool_size` was reached.
    Saturated(Job),
}

impl std::fmt::Debug for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::Shutdown(_) => f.pad("Shutdown(..)"),
            ExecuteError::Saturated(_) => f.pad("Saturated(..)"),
        }
    }
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::Shutdown(_) => f.pad("executor is shut down"),
            ExecuteError::Saturated(_) => f.pad("executor is saturated"),
        }
    }
}

impl std::error::Error for ExecuteError {}

impl ExecuteError {
    /// Recovers the rejected task (so callers can retry it elsewhere —
    /// Java's `RejectedExecutionHandler` pattern).
    pub fn into_job(self) -> Job {
        match self {
            ExecuteError::Shutdown(job) | ExecuteError::Saturated(job) => job,
        }
    }
}

/// Configuration for a [`ThreadPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Workers that never retire on keep-alive (Java's `corePoolSize`).
    /// The pool grows lazily; the first `core_pool_size` workers spawned
    /// simply ignore the keep-alive timeout.
    pub core_pool_size: usize,
    /// Upper bound on concurrently live workers.
    pub max_pool_size: usize,
    /// How long an idle non-core worker waits for work before retiring.
    pub keep_alive: Duration,
}

impl Default for PoolConfig {
    /// Java's `newCachedThreadPool`: no core workers, unbounded growth,
    /// 60 s keep-alive.
    fn default() -> Self {
        PoolConfig {
            core_pool_size: 0,
            max_pool_size: usize::MAX,
            keep_alive: Duration::from_secs(60),
        }
    }
}

struct PoolInner {
    channel: Arc<dyn TimedSyncChannel<Job>>,
    config: PoolConfig,
    /// Padded: bumped by every spawn/retire while `completed` (below) is
    /// bumped by every task — unpadded they'd share a line and every task
    /// completion would invalidate the spawn path's cached count.
    worker_count: CachePadded<AtomicUsize>,
    largest_pool_size: AtomicUsize,
    completed: CachePadded<AtomicUsize>,
    shutdown: AtomicBool,
    interrupt: CancelToken,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

const _: () = assert!(std::mem::align_of::<PoolInner>() >= 128);

/// The result side of [`ThreadPool::submit`]: a one-shot join handle.
///
/// [`TaskHandle::join`] blocks until the task has run and yields its return
/// value, or `Err(TaskPanicked)` if the task panicked (the worker survives
/// a panicking task, as in Java where the `Future` captures the exception).
///
/// The handle is also a [`std::future::Future`] resolving to the same
/// `Result`, so an async task can `handle.await` a pool-executed job: the
/// completing worker wakes the registered waker through the same
/// [`WaiterCell`] mailbox the synchronous structures use.
pub struct TaskHandle<R> {
    shared: Arc<TaskShared<R>>,
}

struct TaskShared<R> {
    slot: Mutex<Option<std::thread::Result<R>>>,
    cvar: Condvar,
    /// Waker mailbox for the `Future` impl; blocking joiners use the
    /// condvar instead.
    waker: WaiterCell,
}

/// The submitted task panicked; the payload is the panic value.
pub struct TaskPanicked(pub Box<dyn std::any::Any + Send>);

impl std::fmt::Debug for TaskPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("TaskPanicked(..)")
    }
}

impl<R> TaskHandle<R> {
    /// Blocks until the task completes; returns its result.
    pub fn join(self) -> Result<R, TaskPanicked> {
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result.map_err(TaskPanicked);
            }
            slot = self.shared.cvar.wait(slot).unwrap();
        }
    }

    /// Non-blocking probe: `Some` once the task has finished.
    pub fn try_join(&self) -> Option<Result<R, TaskPanicked>> {
        self.shared
            .slot
            .lock()
            .unwrap()
            .take()
            .map(|r| r.map_err(TaskPanicked))
    }

    /// True once the task has completed (result may already be taken).
    pub fn is_finished(&self) -> bool {
        // A taken slot means join/try_join already returned: finished.
        self.shared.slot.lock().unwrap().is_some() || Arc::strong_count(&self.shared) == 1
    }
}

impl<R> std::future::Future for TaskHandle<R> {
    type Output = Result<R, TaskPanicked>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let mut slot = self.shared.slot.lock().unwrap();
        if let Some(result) = slot.take() {
            return std::task::Poll::Ready(result.map_err(TaskPanicked));
        }
        // Register while holding the lock: the completing worker fills the
        // slot under this same lock before it wakes, so either it already
        // finished (seen above) or our waker is in place for its wake —
        // a wakeup can never fall between the check and the registration.
        self.shared.waker.register_waker(cx.waker());
        std::task::Poll::Pending
    }
}

/// The executor. Cheap to clone (all clones share the pool).
///
/// # Examples
///
/// ```
/// use synq_executor::{ThreadPool, PoolConfig};
/// use synq::SynchronousQueue;
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(Arc::new(SynchronousQueue::new()), PoolConfig::default());
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let c = Arc::clone(&counter);
///     pool.execute(move || { c.fetch_add(1, Ordering::SeqCst); }).unwrap();
/// }
/// pool.shutdown();
/// pool.join();
/// assert_eq!(counter.load(Ordering::SeqCst), 10);
/// ```
#[derive(Clone)]
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl ThreadPool {
    /// Creates a pool handing work off through `channel`.
    pub fn new(channel: Arc<dyn TimedSyncChannel<Job>>, config: PoolConfig) -> Self {
        ThreadPool {
            inner: Arc::new(PoolInner {
                channel,
                config,
                worker_count: CachePadded::new(AtomicUsize::new(0)),
                largest_pool_size: AtomicUsize::new(0),
                completed: CachePadded::new(AtomicUsize::new(0)),
                shutdown: AtomicBool::new(false),
                interrupt: CancelToken::new(),
                handles: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Java's `newCachedThreadPool` over the given channel.
    pub fn cached(channel: Arc<dyn TimedSyncChannel<Job>>) -> Self {
        Self::new(channel, PoolConfig::default())
    }

    /// Submits a task: hand it to a waiting worker if one is parked in the
    /// channel, otherwise spawn a new worker (up to `max_pool_size`).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), ExecuteError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(ExecuteError::Shutdown(Box::new(job)));
        }
        // Fast path: a worker is already waiting in `poll`.
        let job: Job = Box::new(job);
        let job = match inner.channel.offer(job) {
            Ok(()) => return Ok(()),
            Err(job) => job,
        };
        // Slow path: grow the pool. Workers claiming one of the first
        // `core_pool_size` slots become permanent (Java's core workers).
        let slot = inner
            .worker_count
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < inner.config.max_pool_size).then_some(n + 1)
            });
        let slot = match slot {
            Ok(prev) => prev,
            Err(_) => return Err(ExecuteError::Saturated(job)),
        };
        let core = slot < inner.config.core_pool_size;
        inner
            .largest_pool_size
            .fetch_max(slot + 1, Ordering::AcqRel);
        let pool = Arc::clone(inner);
        let handle = std::thread::spawn(move || worker_loop(pool, Some(job), core));
        inner.handles.lock().unwrap().push(handle);
        Ok(())
    }

    /// Spawns the configured core workers up front, so work injected
    /// through the channel *directly* (e.g. async producers rendezvousing
    /// on the pool's channel instead of calling [`ThreadPool::execute`])
    /// finds takers parked in `take` immediately. Without this, a pool
    /// used purely as a set of channel consumers would never grow —
    /// growth normally happens on the `execute` slow path. Idempotent:
    /// workers already counted (spawned or live) are not duplicated.
    /// Returns the number of workers spawned by this call.
    pub fn prestart_core_workers(&self) -> usize {
        let inner = &self.inner;
        let mut spawned = 0;
        loop {
            if inner.shutdown.load(Ordering::Acquire) {
                break;
            }
            let limit = inner.config.core_pool_size.min(inner.config.max_pool_size);
            let slot = inner
                .worker_count
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < limit).then_some(n + 1)
                });
            let Ok(prev) = slot else { break };
            inner
                .largest_pool_size
                .fetch_max(prev + 1, Ordering::AcqRel);
            let pool = Arc::clone(inner);
            // Every prestarted slot is below `core_pool_size`: a core
            // worker, waiting with `Deadline::Never`.
            let handle = std::thread::spawn(move || worker_loop(pool, None, true));
            inner.handles.lock().unwrap().push(handle);
            spawned += 1;
        }
        spawned
    }

    /// Stops accepting tasks and interrupts idle workers. Tasks already
    /// running (or already handed to a worker) complete normally.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.interrupt.cancel();
    }

    /// Waits for every worker to retire. Call after [`ThreadPool::shutdown`].
    pub fn join(&self) {
        loop {
            let handle = self.inner.handles.lock().unwrap().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }

    /// Submits a task whose result can be collected through the returned
    /// [`TaskHandle`] — the analogue of `ExecutorService.submit` returning a
    /// `Future`. A panic in the task is captured into the handle; the
    /// worker thread survives.
    pub fn submit<R, F>(&self, f: F) -> Result<TaskHandle<R>, ExecuteError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let shared = Arc::new(TaskShared {
            slot: Mutex::new(None),
            cvar: Condvar::new(),
            waker: WaiterCell::new(),
        });
        let shared2 = Arc::clone(&shared);
        self.execute(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            *shared2.slot.lock().unwrap() = Some(result);
            shared2.cvar.notify_all();
            // After the slot is visibly filled: wake an async joiner, if
            // one registered (see the Future impl for the ordering).
            shared2.waker.wake();
        })?;
        Ok(TaskHandle { shared })
    }

    /// Number of tasks fully executed so far.
    pub fn completed_tasks(&self) -> usize {
        self.inner.completed.load(Ordering::Acquire)
    }

    /// High-water mark of concurrently live workers (Java's
    /// `getLargestPoolSize`).
    pub fn largest_pool_size(&self) -> usize {
        self.inner.largest_pool_size.load(Ordering::Acquire)
    }

    /// Number of currently live workers.
    pub fn worker_count(&self) -> usize {
        self.inner.worker_count.load(Ordering::Acquire)
    }
}

fn worker_loop(pool: Arc<PoolInner>, first_job: Option<Job>, core: bool) {
    if let Some(job) = first_job {
        job();
        pool.completed.fetch_add(1, Ordering::AcqRel);
    }
    loop {
        // Core workers wait indefinitely (only shutdown releases them);
        // cached workers retire after the keep-alive lapses.
        let deadline = if core {
            Deadline::Never
        } else {
            Deadline::after(pool.config.keep_alive)
        };
        match pool.channel.take_with(deadline, Some(&pool.interrupt)) {
            TransferOutcome::Transferred(Some(job)) => {
                job();
                pool.completed.fetch_add(1, Ordering::AcqRel);
            }
            // Keep-alive elapsed or the pool was shut down: retire.
            _ => break,
        }
    }
    pool.worker_count.fetch_sub(1, Ordering::AcqRel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use synq::SynchronousQueue;
    use synq_baselines::Java5SQ;

    fn run_pool_with(channel: Arc<dyn TimedSyncChannel<Job>>) {
        let pool = ThreadPool::cached(channel);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(pool.completed_tasks(), 50);
        assert_eq!(pool.worker_count(), 0);
    }

    #[test]
    fn executes_all_tasks_new_unfair() {
        run_pool_with(Arc::new(SynchronousQueue::unfair()));
    }

    #[test]
    fn executes_all_tasks_new_fair() {
        run_pool_with(Arc::new(SynchronousQueue::fair()));
    }

    #[test]
    fn executes_all_tasks_java5_fair() {
        run_pool_with(Arc::new(Java5SQ::fair()));
    }

    #[test]
    fn executes_all_tasks_java5_unfair() {
        run_pool_with(Arc::new(Java5SQ::unfair()));
    }

    #[test]
    fn workers_are_reused_when_idle() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        // Run tasks one at a time; workers should be reused via the offer
        // fast path rather than spawning one thread per task.
        for _ in 0..20 {
            let done = Arc::new(AtomicBool::new(false));
            let d = Arc::clone(&done);
            pool.execute(move || d.store(true, Ordering::SeqCst))
                .unwrap();
            while !done.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        }
        assert!(
            pool.worker_count() <= 3,
            "spawned {} workers for sequential tasks",
            pool.worker_count()
        );
        pool.shutdown();
        pool.join();
    }

    #[test]
    fn prestarted_core_workers_consume_direct_channel_puts() {
        let channel = Arc::new(SynchronousQueue::<Job>::fair());
        let pool = ThreadPool::new(
            Arc::clone(&channel) as Arc<dyn TimedSyncChannel<Job>>,
            PoolConfig {
                core_pool_size: 2,
                max_pool_size: 8,
                keep_alive: Duration::from_secs(60),
            },
        );
        assert_eq!(pool.prestart_core_workers(), 2);
        assert_eq!(pool.worker_count(), 2);
        // Prestarting ran no job; idempotent re-invocation spawns nothing.
        assert_eq!(pool.completed_tasks(), 0);
        assert_eq!(pool.prestart_core_workers(), 0);
        // Jobs injected straight through the channel — never via
        // `execute` — are taken by the prestarted workers.
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let d = Arc::clone(&done);
            channel.put(Box::new(move || {
                d.fetch_add(1, Ordering::SeqCst);
            }) as Job);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 10 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(done.load(Ordering::SeqCst), 10);
        assert_eq!(pool.completed_tasks(), 10);
        assert_eq!(pool.worker_count(), 2, "no growth without execute");
        pool.shutdown();
        pool.join();
        assert_eq!(pool.worker_count(), 0);
    }

    #[test]
    fn prestart_after_shutdown_spawns_nothing() {
        let pool = ThreadPool::new(
            Arc::new(SynchronousQueue::<Job>::fair()),
            PoolConfig {
                core_pool_size: 4,
                max_pool_size: 8,
                keep_alive: Duration::from_secs(60),
            },
        );
        pool.shutdown();
        assert_eq!(pool.prestart_core_workers(), 0);
        pool.join();
    }

    #[test]
    fn keep_alive_retires_idle_workers() {
        let pool = ThreadPool::new(
            Arc::new(SynchronousQueue::<Job>::unfair()),
            PoolConfig {
                core_pool_size: 0,
                max_pool_size: usize::MAX,
                keep_alive: Duration::from_millis(30),
            },
        );
        pool.execute(|| {}).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.worker_count() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.worker_count(), 0, "idle worker did not retire");
        pool.join();
    }

    #[test]
    fn rejected_job_is_recoverable() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        pool.shutdown();
        let ran = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&ran);
        let err = pool
            .execute(move || r.store(true, Ordering::SeqCst))
            .unwrap_err();
        // The caller can run the recovered job itself.
        (err.into_job())();
        assert!(ran.load(Ordering::SeqCst));
        pool.join();
    }

    #[test]
    fn shutdown_rejects_new_tasks() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        pool.shutdown();
        match pool.execute(|| {}) {
            Err(ExecuteError::Shutdown(_)) => {}
            other => panic!("expected Shutdown, got {other:?}"),
        }
        pool.join();
    }

    #[test]
    fn saturation_respects_max_pool_size() {
        let pool = ThreadPool::new(
            Arc::new(SynchronousQueue::<Job>::unfair()),
            PoolConfig {
                core_pool_size: 0,
                max_pool_size: 1,
                keep_alive: Duration::from_secs(60),
            },
        );
        // First task occupies the single worker slot.
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            while !g.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        })
        .unwrap();
        // Second task: no waiting worker, and the pool cannot grow.
        match pool.execute(|| {}) {
            Err(ExecuteError::Saturated(_)) => {}
            other => panic!("expected Saturated, got {other:?}"),
        }
        gate.store(true, Ordering::SeqCst);
        pool.shutdown();
        pool.join();
    }

    #[test]
    fn shutdown_interrupts_parked_workers_quickly() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        pool.execute(|| {}).unwrap();
        // The worker parks in take_with(keep_alive=60s). Shutdown must not
        // take anywhere near 60s.
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        pool.shutdown();
        pool.join();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn parallel_submission_stress() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut submitters = Vec::new();
        for _ in 0..4 {
            let pool = pool.clone();
            let counter = Arc::clone(&counter);
            submitters.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let c = Arc::clone(&counter);
                    pool.execute(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                    .unwrap();
                }
            }));
        }
        for s in submitters {
            s.join().unwrap();
        }
        pool.shutdown();
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 400);
    }
}

#[cfg(test)]
mod submit_tests {
    use super::*;
    use synq::SynchronousQueue;

    #[test]
    fn submit_returns_result() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        let handle = pool.submit(|| 2 + 2).unwrap();
        assert_eq!(handle.join().unwrap(), 4);
        pool.shutdown();
        pool.join();
    }

    #[test]
    fn submit_captures_panics_and_worker_survives() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        let bad = pool.submit(|| -> u32 { panic!("task exploded") }).unwrap();
        assert!(bad.join().is_err(), "panic must surface as TaskPanicked");
        // The pool keeps working after a panicking task.
        let ok = pool.submit(|| "still alive").unwrap();
        assert_eq!(ok.join().unwrap(), "still alive");
        pool.shutdown();
        pool.join();
    }

    #[test]
    fn many_submits_collect_in_any_order() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        let handles: Vec<_> = (0..20u64)
            .map(|i| pool.submit(move || i * i).unwrap())
            .collect();
        let sum: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sum, (0..20u64).map(|i| i * i).sum::<u64>());
        pool.shutdown();
        pool.join();
    }

    #[test]
    fn task_handle_is_awaitable() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        let handle = pool.submit(|| 6 * 7).unwrap();
        assert_eq!(synq_async::block_on(handle).unwrap(), 42);
        // A panicking task surfaces through await just like through join.
        let bad = pool.submit(|| -> u32 { panic!("boom") }).unwrap();
        assert!(synq_async::block_on(bad).is_err());
        pool.shutdown();
        pool.join();
    }

    #[test]
    fn task_handles_await_concurrently() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        let handles: Vec<_> = (0..16u64)
            .map(|i| {
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    i * i
                })
                .unwrap()
            })
            .collect();
        let sum: u64 = synq_async::block_on(async {
            let mut sum = 0;
            for h in handles {
                sum += h.await.unwrap();
            }
            sum
        });
        assert_eq!(sum, (0..16u64).map(|i| i * i).sum::<u64>());
        pool.shutdown();
        pool.join();
    }

    #[test]
    fn execute_error_is_std_error() {
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        pool.shutdown();
        let err = pool.execute(|| {}).unwrap_err();
        // Must compose with the std error ecosystem.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert_eq!(boxed.to_string(), "executor is shut down");
        assert!(boxed.source().is_none());
        pool.join();
    }

    #[test]
    fn core_workers_survive_keep_alive() {
        let pool = ThreadPool::new(
            Arc::new(SynchronousQueue::<Job>::unfair()),
            PoolConfig {
                core_pool_size: 1,
                max_pool_size: 8,
                keep_alive: Duration::from_millis(20),
            },
        );
        pool.execute(|| {}).unwrap();
        // Well past the keep-alive, the core worker must still be alive.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(pool.worker_count(), 1, "core worker retired");
        // And still serving.
        let h = pool.submit(|| 7u8).unwrap();
        assert_eq!(h.join().unwrap(), 7);
        pool.shutdown();
        pool.join();
        assert_eq!(pool.worker_count(), 0);
    }

    #[test]
    fn largest_pool_size_tracks_high_water() {
        use std::sync::atomic::AtomicBool;
        let pool = ThreadPool::cached(Arc::new(SynchronousQueue::<Job>::unfair()));
        assert_eq!(pool.largest_pool_size(), 0);
        let gate = Arc::new(AtomicBool::new(false));
        // Two long-running tasks force two workers.
        for _ in 0..2 {
            let g = Arc::clone(&gate);
            pool.execute(move || {
                while !g.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        }
        assert!(pool.largest_pool_size() >= 2);
        gate.store(true, Ordering::SeqCst);
        pool.shutdown();
        pool.join();
        assert!(
            pool.largest_pool_size() >= 2,
            "high-water mark must persist"
        );
    }
}
