//! Integration tests for the flat-combining structures: pairing and drop
//! conservation under arbitrary shapes, single-publisher equivalence with
//! the plain dual queue, and the cancel-during-sweep race.

use proptest::prelude::*;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use synq::{CombinerSyncQueue, CombinerSyncStack, SyncChannel, SyncDualQueue, TimedSyncChannel};

/// A payload that tracks its own liveness: exactly one decrement per
/// construction, however many times it moves between requesting threads
/// and the combiner that pairs them.
struct Payload {
    id: usize,
    live: Arc<AtomicIsize>,
}

impl Payload {
    fn new(id: usize, live: &Arc<AtomicIsize>) -> Self {
        live.fetch_add(1, Ordering::Relaxed);
        Payload {
            id,
            live: Arc::clone(live),
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs `producers`×`per` timed sends against `consumers` timed receivers
/// on `channel`, then checks the exactly-one-pairing contract: every id is
/// either received once or refused (timed out) back to its producer once,
/// never both, and every payload is dropped exactly once.
fn check_conservation(
    channel: Arc<dyn TimedSyncChannel<Payload>>,
    producers: usize,
    consumers: usize,
    per: usize,
) -> Result<(), TestCaseError> {
    let live = Arc::new(AtomicIsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));
    let received = Arc::new(Mutex::new(Vec::new()));
    let refused = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for p in 0..producers {
        let channel = Arc::clone(&channel);
        let live = Arc::clone(&live);
        let refused = Arc::clone(&refused);
        handles.push(thread::spawn(move || {
            for i in 0..per {
                let payload = Payload::new(p * per + i, &live);
                if let Err(back) = channel.offer_timeout(payload, Duration::from_micros(200)) {
                    refused.lock().unwrap().push(back.id);
                }
            }
        }));
    }
    let mut takers = Vec::new();
    for _ in 0..consumers {
        let channel = Arc::clone(&channel);
        let stop = Arc::clone(&stop);
        let received = Arc::clone(&received);
        takers.push(thread::spawn(move || {
            while stop.load(Ordering::Relaxed) == 0 {
                if let Some(p) = channel.poll_timeout(Duration::from_micros(100)) {
                    received.lock().unwrap().push(p.id);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    for t in takers {
        t.join().unwrap();
    }
    // A producer may have matched at the buzzer, after every consumer
    // already left: drain the tail.
    while let Some(p) = channel.poll_timeout(Duration::from_millis(2)) {
        received.lock().unwrap().push(p.id);
    }

    let mut seen: Vec<usize> = received.lock().unwrap().clone();
    seen.extend(refused.lock().unwrap().iter().copied());
    seen.sort_unstable();
    let expected: Vec<usize> = (0..producers * per).collect();
    prop_assert_eq!(
        seen,
        expected,
        "every send must be received once xor refused once"
    );
    prop_assert_eq!(live.load(Ordering::Relaxed), 0, "payload drop conservation");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Combiner queue: exactly-one-pairing and drop conservation across
    /// producer/consumer shapes; timed-out requests constantly race the
    /// sweeping combiner's claim.
    #[test]
    fn combiner_queue_pairs_exactly_once(
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
    ) {
        let q: Arc<CombinerSyncQueue<Payload>> = Arc::new(CombinerSyncQueue::new());
        check_conservation(q, producers, consumers, per)?;
    }

    /// Same contract for the combiner stack.
    #[test]
    fn combiner_stack_pairs_exactly_once(
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
    ) {
        let s: Arc<CombinerSyncStack<Payload>> = Arc::new(CombinerSyncStack::new());
        check_conservation(s, producers, consumers, per)?;
    }
}

/// Runs the same single-producer/single-consumer workload against a
/// channel and returns the ids in arrival order.
fn fifo_run(channel: Arc<dyn SyncChannel<u64>>, n: u64) -> Vec<u64> {
    let rx = Arc::clone(&channel);
    let taker = thread::spawn(move || (0..n).map(|_| rx.take()).collect::<Vec<_>>());
    for i in 0..n {
        channel.put(i);
    }
    taker.join().unwrap()
}

#[test]
fn single_publisher_combiner_queue_is_equivalent_to_dual_queue() {
    const N: u64 = if cfg!(miri) { 40 } else { 500 };
    // With one publisher per side every sweep pairs at most one request,
    // so the combiner queue must be observationally identical to the plain
    // dual queue: strict FIFO order under a put/take stream...
    let combiner: Arc<CombinerSyncQueue<u64>> = Arc::new(CombinerSyncQueue::new());
    let plain: Arc<SyncDualQueue<u64>> = Arc::new(SyncDualQueue::new());
    let a = fifo_run(Arc::clone(&combiner) as _, N);
    let b = fifo_run(Arc::clone(&plain) as _, N);
    assert_eq!(a, b);
    assert_eq!(a, (0..N).collect::<Vec<_>>());
    // ...and the same non-blocking semantics on an empty structure.
    assert_eq!(combiner.poll(), plain.poll());
    assert_eq!(combiner.offer(9), plain.offer(9));
    assert_eq!(
        combiner.poll_timeout(Duration::from_millis(1)),
        plain.poll_timeout(Duration::from_millis(1))
    );
    assert_eq!(
        combiner.offer_timeout(3, Duration::from_millis(1)),
        plain.offer_timeout(3, Duration::from_millis(1))
    );
    // Every transfer went through a sweep (self-service or delegated).
    assert!(combiner.sweeps() > 0);
    assert!(combiner.swept_requests() >= N);
}

/// The cancel-during-sweep race: producers time out on a hair trigger
/// while consumers keep electing combiners, so `WaitSlot::try_cancel`
/// races the sweep's `try_claim` on nearly every request. Whoever wins,
/// each payload must be delivered xor refused and dropped exactly once —
/// a cancelled record must never leak its item to a later sweep, and a
/// claimed record must never be refused back to its producer.
#[test]
fn cancel_during_sweep_race_delivers_xor_refuses() {
    const ROUNDS: usize = if cfg!(miri) { 30 } else { 600 };
    let q: Arc<CombinerSyncQueue<Payload>> = Arc::new(CombinerSyncQueue::new());
    let live = Arc::new(AtomicIsize::new(0));
    let refused = Arc::new(AtomicUsize::new(0));
    let received = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));

    let taker = {
        let q = Arc::clone(&q);
        let stop = Arc::clone(&stop);
        let received = Arc::clone(&received);
        thread::spawn(move || {
            while stop.load(Ordering::Relaxed) == 0 {
                if q.poll_timeout(Duration::from_micros(50)).is_some() {
                    received.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };
    for i in 0..ROUNDS {
        let payload = Payload::new(i, &live);
        // Alternate between an immediate-cancel offer (deadline already
        // unreachable for a parked sweep) and a short one that usually
        // pairs, to hit both sides of the claim/cancel race.
        let timeout = if i % 2 == 0 {
            Duration::from_nanos(1)
        } else {
            Duration::from_micros(100)
        };
        if q.offer_timeout(payload, timeout).is_err() {
            refused.fetch_add(1, Ordering::Relaxed);
        }
    }
    stop.store(1, Ordering::Relaxed);
    taker.join().unwrap();
    while q.poll_timeout(Duration::from_millis(2)).is_some() {
        received.fetch_add(1, Ordering::Relaxed);
    }

    assert_eq!(
        received.load(Ordering::Relaxed) + refused.load(Ordering::Relaxed),
        ROUNDS,
        "every offer must be delivered xor refused"
    );
    assert_eq!(live.load(Ordering::Relaxed), 0, "payload drop conservation");
}

#[test]
fn contended_oversubscription_batches_requests_and_conserves_values() {
    // Threads ≫ cores: the scheduler-subversion scenario the combiner is
    // for. Every value must still pair exactly once, and with this many
    // concurrent publishers the sweeps must actually batch (more requests
    // claimed than sweeps run).
    const SIDES: usize = 8;
    const PER: usize = 200;
    let q: Arc<CombinerSyncQueue<usize>> = Arc::new(CombinerSyncQueue::new());
    let sum = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for p in 0..SIDES {
        let q = Arc::clone(&q);
        handles.push(thread::spawn(move || {
            for i in 0..PER {
                q.put(p * PER + i);
            }
        }));
    }
    for _ in 0..SIDES {
        let q = Arc::clone(&q);
        let sum = Arc::clone(&sum);
        handles.push(thread::spawn(move || {
            for _ in 0..PER {
                sum.fetch_add(q.take(), Ordering::Relaxed);
            }
        }));
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    for h in handles {
        assert!(Instant::now() < deadline, "combiner handoff wedged");
        h.join().unwrap();
    }
    assert_eq!(sum.load(Ordering::Relaxed), (0..SIDES * PER).sum::<usize>());
    assert!(q.sweeps() > 0, "no combiner was ever elected");
    assert!(
        q.swept_requests() > q.sweeps(),
        "16 threads must average more than one request per sweep \
         ({} requests / {} sweeps)",
        q.swept_requests(),
        q.sweeps()
    );
}
