//! Reclaimer feature-matrix conformance: the exactly-one-pairing and
//! drop-conservation contracts of the dual structures must hold under
//! every reclamation backend, not just the default epoch scheme. Runs the
//! same timed producer/consumer proptest battery against
//! `SyncDualQueue`/`SyncDualStack` instantiated with both `Epoch` and
//! `Hazard`.

use proptest::prelude::*;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use synq::{SyncDualQueue, SyncDualStack, TimedSyncChannel};
use synq_reclaim::{Epoch, Hazard};

/// A payload that tracks its own liveness: exactly one decrement per
/// construction, however many times it is moved between threads.
struct Payload {
    id: usize,
    live: Arc<AtomicIsize>,
}

impl Payload {
    fn new(id: usize, live: &Arc<AtomicIsize>) -> Self {
        live.fetch_add(1, Ordering::Relaxed);
        Payload {
            id,
            live: Arc::clone(live),
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs `producers`×`per` timed sends against `consumers` timed receivers
/// on `channel`, then checks the exactly-one-pairing contract: every id is
/// either received once or refused (timed out) back to its producer once,
/// never both, and every payload is dropped exactly once.
fn check_conservation(
    channel: Arc<dyn TimedSyncChannel<Payload>>,
    producers: usize,
    consumers: usize,
    per: usize,
) -> Result<(), TestCaseError> {
    let live = Arc::new(AtomicIsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));
    let received = Arc::new(Mutex::new(Vec::new()));
    let refused = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for p in 0..producers {
        let channel = Arc::clone(&channel);
        let live = Arc::clone(&live);
        let refused = Arc::clone(&refused);
        handles.push(thread::spawn(move || {
            for i in 0..per {
                let payload = Payload::new(p * per + i, &live);
                if let Err(back) = channel.offer_timeout(payload, Duration::from_micros(200)) {
                    refused.lock().unwrap().push(back.id);
                }
            }
        }));
    }
    let mut takers = Vec::new();
    for _ in 0..consumers {
        let channel = Arc::clone(&channel);
        let stop = Arc::clone(&stop);
        let received = Arc::clone(&received);
        takers.push(thread::spawn(move || {
            while stop.load(Ordering::Relaxed) == 0 {
                if let Some(p) = channel.poll_timeout(Duration::from_micros(100)) {
                    received.lock().unwrap().push(p.id);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    for t in takers {
        t.join().unwrap();
    }
    // A producer may have matched at the buzzer, after every consumer
    // already left: drain the tail.
    while let Some(p) = channel.poll_timeout(Duration::from_millis(2)) {
        received.lock().unwrap().push(p.id);
    }

    let mut seen: Vec<usize> = received.lock().unwrap().clone();
    seen.extend(refused.lock().unwrap().iter().copied());
    seen.sort_unstable();
    let expected: Vec<usize> = (0..producers * per).collect();
    prop_assert_eq!(
        seen,
        expected,
        "every send must be received once xor refused once"
    );
    prop_assert_eq!(live.load(Ordering::Relaxed), 0, "payload drop conservation");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dual queue under the default epoch backend (the matrix baseline).
    #[test]
    fn queue_epoch_pairs_exactly_once(
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
    ) {
        let q: Arc<SyncDualQueue<Payload, Epoch>> = Arc::new(SyncDualQueue::new_in());
        check_conservation(q, producers, consumers, per)?;
    }

    /// Dual queue under the hazard-pointer backend.
    #[test]
    fn queue_hazard_pairs_exactly_once(
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
    ) {
        let q: Arc<SyncDualQueue<Payload, Hazard>> = Arc::new(SyncDualQueue::new_in());
        check_conservation(q, producers, consumers, per)?;
    }

    /// Dual stack under the default epoch backend.
    #[test]
    fn stack_epoch_pairs_exactly_once(
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
    ) {
        let s: Arc<SyncDualStack<Payload, Epoch>> = Arc::new(SyncDualStack::new_in());
        check_conservation(s, producers, consumers, per)?;
    }

    /// Dual stack under the hazard-pointer backend.
    #[test]
    fn stack_hazard_pairs_exactly_once(
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
    ) {
        let s: Arc<SyncDualStack<Payload, Hazard>> = Arc::new(SyncDualStack::new_in());
        check_conservation(s, producers, consumers, per)?;
    }
}
