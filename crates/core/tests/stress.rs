//! Heavier stress scenarios for the synchronous dual structures, including
//! the documented memory-retention edge cases of the head-absorption
//! cleaning strategy.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use synq::{SyncChannel, SyncDualQueue, SyncDualStack, TimedSyncChannel};

#[test]
fn queue_mode_flips_rapidly() {
    // Alternate which side runs ahead so the list flips between all-data
    // and all-request many times; the dual invariant must never produce a
    // wrong pairing or a lost value.
    const ROUNDS: usize = 200;
    let q = Arc::new(SyncDualQueue::new());
    let q2 = Arc::clone(&q);
    let peer = thread::spawn(move || {
        let mut sum = 0u64;
        for r in 0..ROUNDS {
            if r % 2 == 0 {
                sum += q2.take(); // we arrive first half the time
            } else {
                thread::sleep(Duration::from_micros(50));
                sum += q2.take();
            }
        }
        sum
    });
    let mut expect = 0u64;
    for r in 0..ROUNDS as u64 {
        if r % 2 == 1 {
            // we arrive first
            q.put(r);
        } else {
            thread::sleep(Duration::from_micros(50));
            q.put(r);
        }
        expect += r;
    }
    assert_eq!(peer.join().unwrap(), expect);
    assert_eq!(q.linked_nodes(), 0);
}

#[test]
fn stack_survives_fulfiller_backout_storms() {
    // Force the fulfiller back-out path (case 2 with everything beneath
    // cancelled): consumers with tiny patience keep leaving cancelled
    // reservations; producers with short patience repeatedly push
    // fulfilling nodes over them and must back out cleanly.
    let s: Arc<SyncDualStack<u64>> = Arc::new(SyncDualStack::new());
    let stop = Arc::new(AtomicUsize::new(0));
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut got = 0usize;
                while stop.load(Ordering::Relaxed) == 0 {
                    if s.poll_timeout(Duration::from_micros(30)).is_some() {
                        got += 1;
                    }
                }
                got
            })
        })
        .collect();
    let mut delivered = 0usize;
    let deadline = Instant::now() + Duration::from_millis(300);
    let mut v = 0u64;
    while Instant::now() < deadline {
        if s.offer_timeout(v, Duration::from_micros(30)).is_ok() {
            delivered += 1;
        }
        v += 1;
    }
    stop.store(1, Ordering::Relaxed);
    let received: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    // Drain anything still linked (a producer could have matched at the
    // buzzer).
    let mut drained = 0;
    while s.poll_timeout(Duration::from_millis(5)).is_some() {
        drained += 1;
    }
    assert_eq!(delivered, received + drained, "value conservation");
    let _ = s.poll();
    assert!(s.linked_nodes() <= 1, "cancelled nodes retained");
}

#[test]
fn known_retention_case_is_bounded_by_the_blocker() {
    // Documented edge case of head absorption: cancelled nodes *behind a
    // live waiter* stay linked until the waiter is matched. Verify (a) the
    // retention happens, (b) it is fully reclaimed once the blocker is
    // served — i.e. the bound really is the blocker's wait.
    let q: Arc<SyncDualQueue<u64>> = Arc::new(SyncDualQueue::new());
    let q2 = Arc::clone(&q);
    let blocker = thread::spawn(move || q2.take());
    while q.linked_nodes() < 1 {
        thread::yield_now();
    }
    // Timed-out consumers pile up behind the blocked one.
    for _ in 0..50 {
        let _ = q.poll_timeout(Duration::from_micros(1));
    }
    let with_blocker = q.linked_nodes();
    assert!(with_blocker >= 1, "expected retained cancelled nodes");
    // Serve the blocker; absorption then clears the prefix on the next op.
    q.put(7);
    assert_eq!(blocker.join().unwrap(), 7);
    let _ = q.poll();
    assert!(
        q.linked_nodes() <= 1,
        "retention not reclaimed after blocker served: {}",
        q.linked_nodes()
    );
}

#[test]
fn high_thread_count_oversubscription() {
    // 16 producers + 16 consumers on however few cores we have: heavy
    // preemption in every code path (paper §4 tests up to 64 threads).
    const SIDES: usize = 16;
    const PER: usize = 150;
    for fair in [true, false] {
        let q: Arc<synq::SynchronousQueue<usize>> = Arc::new(if fair {
            synq::SynchronousQueue::fair()
        } else {
            synq::SynchronousQueue::unfair()
        });
        let sum = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..SIDES {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.put(p * PER + i);
                }
            }));
        }
        for _ in 0..SIDES {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            handles.push(thread::spawn(move || {
                for _ in 0..PER {
                    sum.fetch_add(q.take(), Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (0..SIDES * PER).sum::<usize>());
        assert_eq!(q.linked_nodes(), 0);
    }
}

#[test]
fn rapid_timeout_matching_race() {
    // Producers offer with a patience comparable to the consumer's arrival
    // jitter, maximizing the WAITING→{CLAIMED,CANCELLED} race. Conservation
    // must hold whatever the interleaving.
    const ROUNDS: usize = 2_000;
    let q: Arc<SyncDualQueue<u64>> = Arc::new(SyncDualQueue::new());
    let delivered = Arc::new(AtomicUsize::new(0));
    let q2 = Arc::clone(&q);
    let d2 = Arc::clone(&delivered);
    let producer = thread::spawn(move || {
        for i in 0..ROUNDS {
            if q2
                .offer_timeout(i as u64, Duration::from_micros(20))
                .is_ok()
            {
                d2.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    let mut received = 0usize;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if q.poll_timeout(Duration::from_micros(20)).is_some() {
            received += 1;
        }
        if producer.is_finished() {
            while q.poll_timeout(Duration::from_millis(2)).is_some() {
                received += 1;
            }
            break;
        }
        assert!(Instant::now() < deadline, "test wedged");
    }
    producer.join().unwrap();
    assert_eq!(received, delivered.load(Ordering::Relaxed));
}

#[test]
fn queue_node_cache_measurably_reduces_allocations() {
    // Sequential ping-pong: every transfer needs one node, and without the
    // free list every one of them would be a fresh heap allocation. With
    // it, the steady state must be served substantially from recycled
    // skeletons (the cache refills on each collection cycle).
    const N: usize = 8_000;
    let q = Arc::new(SyncDualQueue::new());
    let q2 = Arc::clone(&q);
    let t = thread::spawn(move || {
        let mut sum = 0u64;
        for _ in 0..N {
            sum += q2.take();
        }
        sum
    });
    for i in 0..N as u64 {
        q.put(i);
    }
    assert_eq!(t.join().unwrap(), (N as u64 * (N as u64 - 1)) / 2);

    let allocated = q.nodes_allocated();
    let recycled = q.nodes_recycled();
    // Node demand is one per transfer (+ the dummy); every pop served from
    // the cache is an allocation that did not happen.
    assert!(
        recycled >= N / 10,
        "cache barely used: {recycled} recycled vs {allocated} allocated over {N} transfers"
    );
    assert!(
        allocated + recycled >= N,
        "diagnostics undercount demand: {allocated} + {recycled} < {N}"
    );
    assert!(
        allocated <= N - N / 10,
        "allocations not measurably reduced: {allocated} allocations over {N} transfers \
         ({recycled} recycled)"
    );
}

#[test]
fn stack_node_cache_measurably_reduces_allocations() {
    // The stack allocates two nodes per transfer (the waiter's node and
    // the fulfilling node), so recycling matters twice as much here.
    const N: usize = 8_000;
    let s = Arc::new(SyncDualStack::new());
    let s2 = Arc::clone(&s);
    let t = thread::spawn(move || {
        let mut sum = 0u64;
        for _ in 0..N {
            sum += s2.take();
        }
        sum
    });
    for i in 0..N as u64 {
        s.put(i);
    }
    assert_eq!(t.join().unwrap(), (N as u64 * (N as u64 - 1)) / 2);

    let allocated = s.nodes_allocated();
    let recycled = s.nodes_recycled();
    assert!(
        recycled >= N / 10,
        "cache barely used: {recycled} recycled vs {allocated} allocated over {N} transfers"
    );
    assert!(
        allocated <= 2 * N - N / 10,
        "allocations not measurably reduced: {allocated} allocations over {N} transfers \
         ({recycled} recycled)"
    );
}
