//! Integration tests for the striped (multi-lane) structures: pairing and
//! drop conservation under arbitrary shapes, and lanes=1 equivalence with
//! the unstriped dual queue.

use proptest::prelude::*;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use synq::{StripedSyncQueue, StripedSyncStack, SyncChannel, SyncDualQueue, TimedSyncChannel};

/// A payload that tracks its own liveness: exactly one decrement per
/// construction, however many times it is moved between threads and lanes.
struct Payload {
    id: usize,
    live: Arc<AtomicIsize>,
}

impl Payload {
    fn new(id: usize, live: &Arc<AtomicIsize>) -> Self {
        live.fetch_add(1, Ordering::Relaxed);
        Payload {
            id,
            live: Arc::clone(live),
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs `producers`×`per` timed sends against `consumers` timed receivers
/// on `channel`, then checks the exactly-one-pairing contract: every id is
/// either received once or refused (timed out) back to its producer once,
/// never both, and every payload is dropped exactly once.
fn check_conservation(
    channel: Arc<dyn TimedSyncChannel<Payload>>,
    producers: usize,
    consumers: usize,
    per: usize,
) -> Result<(), TestCaseError> {
    let live = Arc::new(AtomicIsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));
    let received = Arc::new(Mutex::new(Vec::new()));
    let refused = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for p in 0..producers {
        let channel = Arc::clone(&channel);
        let live = Arc::clone(&live);
        let refused = Arc::clone(&refused);
        handles.push(thread::spawn(move || {
            for i in 0..per {
                let payload = Payload::new(p * per + i, &live);
                if let Err(back) = channel.offer_timeout(payload, Duration::from_micros(200)) {
                    refused.lock().unwrap().push(back.id);
                }
            }
        }));
    }
    let mut takers = Vec::new();
    for _ in 0..consumers {
        let channel = Arc::clone(&channel);
        let stop = Arc::clone(&stop);
        let received = Arc::clone(&received);
        takers.push(thread::spawn(move || {
            while stop.load(Ordering::Relaxed) == 0 {
                if let Some(p) = channel.poll_timeout(Duration::from_micros(100)) {
                    received.lock().unwrap().push(p.id);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    for t in takers {
        t.join().unwrap();
    }
    // A producer may have matched at the buzzer, after every consumer
    // already left: drain the tail.
    while let Some(p) = channel.poll_timeout(Duration::from_millis(2)) {
        received.lock().unwrap().push(p.id);
    }

    let mut seen: Vec<usize> = received.lock().unwrap().clone();
    seen.extend(refused.lock().unwrap().iter().copied());
    seen.sort_unstable();
    let expected: Vec<usize> = (0..producers * per).collect();
    prop_assert_eq!(
        seen,
        expected,
        "every send must be received once xor refused once"
    );
    prop_assert_eq!(live.load(Ordering::Relaxed), 0, "payload drop conservation");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Striped queue: exactly-one-pairing and drop conservation across
    /// lane counts and producer/consumer shapes.
    #[test]
    fn striped_queue_pairs_exactly_once(
        lanes in 1usize..=8,
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
    ) {
        let q: Arc<StripedSyncQueue<Payload>> = Arc::new(StripedSyncQueue::with_lanes(lanes));
        check_conservation(q, producers, consumers, per)?;
    }

    /// Same contract for the striped stack.
    #[test]
    fn striped_stack_pairs_exactly_once(
        lanes in 1usize..=8,
        producers in 1usize..=3,
        consumers in 1usize..=3,
        per in 1usize..=25,
    ) {
        let s: Arc<StripedSyncStack<Payload>> = Arc::new(StripedSyncStack::with_lanes(lanes));
        check_conservation(s, producers, consumers, per)?;
    }
}

/// Runs the same single-producer/single-consumer workload against a
/// channel and returns the ids in arrival order.
fn fifo_run(channel: Arc<dyn SyncChannel<u64>>, n: u64) -> Vec<u64> {
    let rx = Arc::clone(&channel);
    let taker = thread::spawn(move || (0..n).map(|_| rx.take()).collect::<Vec<_>>());
    for i in 0..n {
        channel.put(i);
    }
    taker.join().unwrap()
}

#[test]
fn lanes1_striped_queue_is_equivalent_to_dual_queue() {
    const N: u64 = 500;
    // Identical deterministic observables: strict FIFO order under a
    // put/take stream...
    let striped: Arc<StripedSyncQueue<u64>> = Arc::new(StripedSyncQueue::with_lanes(1));
    let plain: Arc<SyncDualQueue<u64>> = Arc::new(SyncDualQueue::new());
    let a = fifo_run(Arc::clone(&striped) as _, N);
    let b = fifo_run(Arc::clone(&plain) as _, N);
    assert_eq!(a, b);
    assert_eq!(a, (0..N).collect::<Vec<_>>());
    // ...and the same non-blocking semantics on an empty structure.
    assert_eq!(striped.poll(), plain.poll());
    assert_eq!(striped.offer(9), plain.offer(9));
    assert_eq!(
        striped.poll_timeout(Duration::from_millis(1)),
        plain.poll_timeout(Duration::from_millis(1))
    );
    assert_eq!(
        striped.offer_timeout(3, Duration::from_millis(1)),
        plain.offer_timeout(3, Duration::from_millis(1))
    );
    assert_eq!(striped.lanes_exercised(), 1);
}

#[test]
fn contended_oversubscription_spreads_load_and_conserves_values() {
    // Threads ≫ lanes ≫ cores: the picker must spread load across lanes
    // while every value still pairs exactly once.
    const SIDES: usize = 8;
    const PER: usize = 200;
    let q: Arc<StripedSyncQueue<usize>> = Arc::new(StripedSyncQueue::with_lanes(4));
    let sum = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for p in 0..SIDES {
        let q = Arc::clone(&q);
        handles.push(thread::spawn(move || {
            for i in 0..PER {
                q.put(p * PER + i);
            }
        }));
    }
    for _ in 0..SIDES {
        let q = Arc::clone(&q);
        let sum = Arc::clone(&sum);
        handles.push(thread::spawn(move || {
            for _ in 0..PER {
                sum.fetch_add(q.take(), Ordering::Relaxed);
            }
        }));
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    for h in handles {
        assert!(Instant::now() < deadline, "striped handoff wedged");
        h.join().unwrap();
    }
    assert_eq!(sum.load(Ordering::Relaxed), (0..SIDES * PER).sum::<usize>());
    assert!(
        q.lanes_exercised() >= 2,
        "16 threads on 4 lanes must exercise at least two lanes"
    );
}
