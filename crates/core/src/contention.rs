//! Thread-local CAS-failure feedback driving the striped lane-picker.
//!
//! The dual structures report every failed install CAS (tail append, head
//! claim, stack push, stack match) here; the striped router reads the
//! counter around each transfer and uses the *delta* — the failures that
//! transfer itself suffered — as its contention signal. Everything is a
//! plain thread-local [`Cell`]: no shared state, no atomics, no cache-line
//! traffic on the hot path, which is the whole point (the structures are
//! contended enough already; the feedback channel must not add to it).
//!
//! # Diffraction policy
//!
//! Each thread keeps a per-thread lane *offset* added to its static affine
//! hint ([`synq_primitives::lane_hint`]). The feedback step accumulates
//! recent CAS failures into a score; when the score crosses the
//! diffraction threshold (4), the thread rotates its offset by one — it
//! *diffracts* to the next lane, like a diffracting-tree balancer shunting
//! a colliding thread sideways — and the score resets. Conversely, a long
//! streak of failure-free transfers (64) resets the offset to
//! zero, re-converging threads onto their affine lanes when contention
//! subsides (affinity is what keeps a lane's head/tail line hot in one
//! core's cache).
//!
//! The offset is process-global per *thread*, not per structure: a thread
//! that is being knocked around on one striped structure is overwhelmingly
//! likely to collide on another in the same process, and a single cell
//! keeps the hot path to two TLS reads.

use std::cell::Cell;

/// Consecutive CAS failures (summed across recent transfers) that trigger
/// one diffraction step.
const DIFFRACT_THRESHOLD: u32 = 4;

/// Failure-free transfers after which a diffracted thread snaps back to
/// its affine lane.
const CALM_STREAK: u32 = 64;

thread_local! {
    /// Failed install CASes observed by this thread, ever. Monotonic; the
    /// router differences it around each transfer.
    static CAS_FAILS: Cell<u64> = const { Cell::new(0) };
    /// Decaying failure score feeding the diffraction trigger.
    static SCORE: Cell<u32> = const { Cell::new(0) };
    /// Consecutive failure-free transfers (resets the offset at `CALM_STREAK`).
    static CALM: Cell<u32> = const { Cell::new(0) };
    /// Current lane offset added to the thread's affine hint.
    static OFFSET: Cell<usize> = const { Cell::new(0) };
}

/// Records one failed install CAS by the calling thread. Called from the
/// dual queue/stack (and `synq-transfer`) retry edges; costs one TLS
/// increment.
pub fn note_cas_fail() {
    CAS_FAILS.with(|c| c.set(c.get() + 1));
}

/// Total failed install CASes this thread has ever observed. The striped
/// router snapshots this before a transfer and feeds the delta back into
/// the picker state; exposed publicly for tests and diagnostics.
pub fn cas_fails() -> u64 {
    CAS_FAILS.with(Cell::get)
}

/// This thread's current diffraction offset (lanes to rotate past the
/// affine hint).
pub(crate) fn offset() -> usize {
    OFFSET.with(Cell::get)
}

/// Feeds one transfer's CAS-failure delta back into the picker state,
/// possibly diffracting (offset += 1) or re-converging (offset = 0).
pub(crate) fn feedback(delta: u64) {
    if delta == 0 {
        SCORE.with(|s| s.set(s.get().saturating_sub(1)));
        let calm = CALM.with(|c| {
            let v = c.get() + 1;
            c.set(v);
            v
        });
        if calm >= CALM_STREAK && OFFSET.with(Cell::get) != 0 {
            OFFSET.with(|o| o.set(0));
            CALM.with(|c| c.set(0));
        }
        return;
    }
    CALM.with(|c| c.set(0));
    let score = SCORE.with(|s| {
        let v = s.get().saturating_add(delta.min(u32::MAX as u64) as u32);
        s.set(v);
        v
    });
    if score >= DIFFRACT_THRESHOLD {
        SCORE.with(|s| s.set(0));
        OFFSET.with(|o| o.set(o.get().wrapping_add(1)));
        synq_obs::probe!(StripedDiffractions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These run single-threaded per test thread: all state is TLS, so the
    // parallel test runner cannot interfere.

    #[test]
    fn note_and_read_roundtrip() {
        let before = cas_fails();
        note_cas_fail();
        note_cas_fail();
        assert_eq!(cas_fails(), before + 2);
    }

    #[test]
    fn sustained_failures_diffract() {
        OFFSET.with(|o| o.set(0));
        SCORE.with(|s| s.set(0));
        let start = offset();
        feedback(u64::from(DIFFRACT_THRESHOLD));
        assert_eq!(offset(), start + 1, "threshold delta must diffract");
        // Below-threshold dribble accumulates until it crosses.
        for _ in 0..DIFFRACT_THRESHOLD {
            feedback(1);
        }
        assert_eq!(offset(), start + 2);
    }

    #[test]
    fn calm_streak_reconverges() {
        OFFSET.with(|o| o.set(3));
        CALM.with(|c| c.set(0));
        for _ in 0..CALM_STREAK {
            feedback(0);
        }
        assert_eq!(offset(), 0, "calm streak must reset the offset");
    }

    #[test]
    fn single_quiet_transfer_keeps_offset() {
        OFFSET.with(|o| o.set(2));
        CALM.with(|c| c.set(0));
        feedback(0);
        assert_eq!(offset(), 2);
    }
}
