//! The unified transfer interface.
//!
//! Both synchronous dual structures funnel every public operation through
//! one method, exactly as the Java 6 implementation does with its
//! `Transferer.transfer(e, timed, nanos)`: a `put` is a transfer *of*
//! an item, a `take` is a transfer *requesting* an item, and the symmetric
//! dual-structure code handles both directions.

use synq_primitives::CancelToken;

// `Deadline` lives in `synq-primitives` (the shared `WaitSlot` wait loop
// consumes it); re-exported here so `synq::Deadline` and
// `synq::transferer::Deadline` keep working.
pub use synq_primitives::Deadline;

/// Result of a [`Transferer::transfer`] call.
///
/// The `Option<T>` payload returns ownership to the caller:
/// * a successful *take* yields `Transferred(Some(v))`;
/// * a successful *put* yields `Transferred(None)`;
/// * a failed *put* hands the un-transferred item back in
///   `Timeout(Some(v))` / `Cancelled(Some(v))`.
#[derive(Debug, PartialEq, Eq)]
pub enum TransferOutcome<T> {
    /// The handoff completed.
    Transferred(Option<T>),
    /// The patience interval elapsed before a counterpart arrived.
    Timeout(Option<T>),
    /// The operation was cancelled via a [`CancelToken`].
    Cancelled(Option<T>),
}

impl<T> TransferOutcome<T> {
    /// True for `Transferred`.
    pub fn is_success(&self) -> bool {
        matches!(self, TransferOutcome::Transferred(_))
    }

    /// Extracts the payload, whatever the outcome.
    pub fn into_inner(self) -> Option<T> {
        match self {
            TransferOutcome::Transferred(v)
            | TransferOutcome::Timeout(v)
            | TransferOutcome::Cancelled(v) => v,
        }
    }
}

/// A synchronous transfer point: `Some(item)` puts, `None` takes.
///
/// Implementors: [`crate::SyncDualQueue`], [`crate::SyncDualStack`], the
/// [`crate::SynchronousQueue`] facade, and the Java SE 5.0 baseline in
/// `synq-baselines`.
pub trait Transferer<T: Send> {
    /// Performs one synchronous handoff.
    ///
    /// * `item`: `Some(v)` acts as a producer, `None` as a consumer.
    /// * `deadline`: patience; [`Deadline::Now`] never waits.
    /// * `token`: optional cancellation ("interrupt") source.
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let t: TransferOutcome<u32> = TransferOutcome::Transferred(Some(5));
        assert!(t.is_success());
        assert_eq!(t.into_inner(), Some(5));
        let t: TransferOutcome<u32> = TransferOutcome::Timeout(Some(7));
        assert!(!t.is_success());
        assert_eq!(t.into_inner(), Some(7));
        let t: TransferOutcome<u32> = TransferOutcome::Cancelled(None);
        assert!(!t.is_success());
        assert_eq!(t.into_inner(), None);
    }
}
