//! Object-safe channel traits over synchronous handoff points.
//!
//! The benchmark harness, the thread-pool executor and the conformance test
//! battery all operate on trait objects so that every algorithm — the
//! paper's two new ones and the four baselines — runs under identical
//! drivers. [`SyncChannel`] is the minimal blocking interface every
//! implementation (even Hanson's, which the paper notes cannot support
//! time-out) provides; [`TimedSyncChannel`] adds the rich interface
//! (`offer`/`poll`, patience, cancellation) that the paper's algorithms and
//! the Java SE 5.0 baseline support.

use crate::transferer::{Deadline, TransferOutcome};
use std::time::Duration;
use synq_primitives::CancelToken;

/// Blocking synchronous handoff: the two "demand" methods.
pub trait SyncChannel<T: Send>: Send + Sync {
    /// Transfers `value` to a consumer, waiting for one to arrive.
    fn put(&self, value: T);

    /// Receives a value from a producer, waiting for one to arrive.
    fn take(&self) -> T;

    /// Transfers every item in `items`, in order, blocking as needed; on
    /// return the vector is empty.
    ///
    /// The default delivers one item per [`Self::put`]. Buffered
    /// implementations (the bounded `TransferQueue` ring) override this to
    /// amortize one publication over the whole batch.
    fn send_batch(&self, items: &mut Vec<T>) {
        for value in items.drain(..) {
            self.put(value);
        }
    }

    /// Receives up to `max` items into `out`, blocking until at least one
    /// is available (when `max > 0`). Returns how many items arrived.
    ///
    /// The default receives exactly one item via [`Self::take`]; buffered
    /// implementations drain as many as are immediately available after
    /// the first.
    fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        out.push(self.take());
        1
    }
}

/// The rich interface: non-blocking and timed variants plus cancellation.
pub trait TimedSyncChannel<T: Send>: SyncChannel<T> {
    /// Transfers `value` only if a consumer is already waiting.
    /// Returns the value back on failure.
    fn offer(&self, value: T) -> Result<(), T>;

    /// Receives a value only if a producer is already waiting.
    fn poll(&self) -> Option<T>;

    /// Transfers `value`, waiting up to `patience` for a consumer.
    fn offer_timeout(&self, value: T, patience: Duration) -> Result<(), T>;

    /// Receives a value, waiting up to `patience` for a producer.
    fn poll_timeout(&self, patience: Duration) -> Option<T>;

    /// Fully general producer-side transfer.
    fn put_with(
        &self,
        value: T,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T>;

    /// Fully general consumer-side transfer.
    fn take_with(&self, deadline: Deadline, token: Option<&CancelToken>) -> TransferOutcome<T>;

    /// Transfers as many items from the front of `items` as the channel
    /// will immediately accept (partial progress), leaving the rest in the
    /// vector. Returns how many were sent.
    ///
    /// The default stops at the first [`Self::offer`] refusal, preserving
    /// order; ring-buffered implementations override this with one
    /// tail-update per batch.
    fn try_send_batch(&self, items: &mut Vec<T>) -> usize {
        let mut rest = std::mem::take(items).into_iter();
        let mut sent = 0;
        for value in rest.by_ref() {
            match self.offer(value) {
                Ok(()) => sent += 1,
                Err(back) => {
                    items.push(back);
                    items.extend(rest);
                    break;
                }
            }
        }
        sent
    }

    /// Receives up to `max` immediately-available items into `out` without
    /// blocking. Returns how many arrived.
    fn try_recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut got = 0;
        while got < max {
            match self.poll() {
                Some(value) => {
                    out.push(value);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }
}

/// Implements [`SyncChannel`] and [`TimedSyncChannel`] for a type that
/// implements [`Transferer`](crate::Transferer). (A blanket impl would forbid downstream
/// crates from implementing `SyncChannel` directly for algorithms — like
/// Hanson's — that *cannot* support the rich interface.)
#[macro_export]
macro_rules! impl_channels_via_transferer {
    ($ty:ident) => {
        $crate::impl_channels_via_transferer!(@imp ($ty<T>), (T: Send));
    };
    // Variant for types carrying a reclamation-backend parameter: covers
    // every backend, not just the default.
    ($ty:ident<$r:ident: $bound:path>) => {
        $crate::impl_channels_via_transferer!(@imp ($ty<T, $r>), (T: Send, $r: $bound));
    };
    (@imp ($($self_ty:tt)*), ($($gen:tt)*)) => {
        impl<$($gen)*> $crate::SyncChannel<T> for $($self_ty)*
        where
            $($self_ty)*: $crate::Transferer<T> + Send + Sync,
        {
            fn put(&self, value: T) {
                match $crate::Transferer::transfer(self, Some(value), $crate::Deadline::Never, None)
                {
                    $crate::TransferOutcome::Transferred(_) => {}
                    _ => unreachable!("untimed, uncancellable put cannot fail"),
                }
            }

            fn take(&self) -> T {
                match $crate::Transferer::transfer(self, None, $crate::Deadline::Never, None) {
                    $crate::TransferOutcome::Transferred(Some(v)) => v,
                    _ => unreachable!("untimed, uncancellable take cannot fail"),
                }
            }
        }

        impl<$($gen)*> $crate::TimedSyncChannel<T> for $($self_ty)*
        where
            $($self_ty)*: $crate::Transferer<T> + Send + Sync,
        {
            fn offer(&self, value: T) -> Result<(), T> {
                match $crate::Transferer::transfer(self, Some(value), $crate::Deadline::Now, None) {
                    $crate::TransferOutcome::Transferred(_) => Ok(()),
                    other => Err(other.into_inner().expect("failed put returns the item")),
                }
            }

            fn poll(&self) -> Option<T> {
                $crate::Transferer::transfer(self, None, $crate::Deadline::Now, None).into_inner()
            }

            fn offer_timeout(&self, value: T, patience: std::time::Duration) -> Result<(), T> {
                match $crate::Transferer::transfer(
                    self,
                    Some(value),
                    $crate::Deadline::after(patience),
                    None,
                ) {
                    $crate::TransferOutcome::Transferred(_) => Ok(()),
                    other => Err(other.into_inner().expect("failed put returns the item")),
                }
            }

            fn poll_timeout(&self, patience: std::time::Duration) -> Option<T> {
                $crate::Transferer::transfer(self, None, $crate::Deadline::after(patience), None)
                    .into_inner()
            }

            fn put_with(
                &self,
                value: T,
                deadline: $crate::Deadline,
                token: Option<&$crate::CancelToken>,
            ) -> $crate::TransferOutcome<T> {
                $crate::Transferer::transfer(self, Some(value), deadline, token)
            }

            fn take_with(
                &self,
                deadline: $crate::Deadline,
                token: Option<&$crate::CancelToken>,
            ) -> $crate::TransferOutcome<T> {
                $crate::Transferer::transfer(self, None, deadline, token)
            }
        }
    };
}

// The core types get the channel interfaces via the macro.
use crate::combiner::{CombinerSyncQueue, CombinerSyncStack};
use crate::dual_queue::SyncDualQueue;
use crate::dual_stack::SyncDualStack;
use crate::queue::SynchronousQueue;
impl_channels_via_transferer!(SyncDualQueue<R: synq_reclaim::Reclaimer>);
impl_channels_via_transferer!(SyncDualStack<R: synq_reclaim::Reclaimer>);
impl_channels_via_transferer!(CombinerSyncQueue<R: synq_reclaim::Reclaimer>);
impl_channels_via_transferer!(CombinerSyncStack<R: synq_reclaim::Reclaimer>);
impl_channels_via_transferer!(SynchronousQueue);
