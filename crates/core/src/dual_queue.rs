//! The synchronous dual queue — the paper's **fair** algorithm
//! (Listing 5 / Figure 1), with the time-out and cancellation support of
//! the Java 6 production version.
//!
//! # Algorithm
//!
//! The queue is a singly linked list with `head` and `tail` pointers and a
//! permanent dummy at the head (the M&S-queue skeleton). At any instant the
//! list holds *either* data nodes (waiting producers) *or* request nodes
//! (waiting consumers) — never both:
//!
//! * An arriving thread whose mode matches the queue's current contents
//!   (or finds it empty) **appends** its node at the tail and waits for a
//!   counterpart to mark it `MATCHED` (spin-then-park, on its own node —
//!   no remote accesses while waiting).
//! * An arriving thread of the opposite mode **matches** the node at
//!   `head.next`: a CAS on that node's state word claims it, the item moves
//!   across, the waiter is unparked, and the head advances (the matched
//!   node becomes the new dummy).
//!
//! The request linearizes at the `next`-CAS that appends the node, or at
//! the state-CAS that claims a waiting counterpart (paper §3.3).
//!
//! # Time-out, cancellation and cleaning
//!
//! A waiter gives up by CASing its node `WAITING → CANCELLED`; the same CAS
//! arbitrates against a concurrent match, exactly like the Java version's
//! CAS on the `item` field. Cancelled nodes are *absorbed at the head*:
//! every arriving operation (and the canceller itself) advances the head
//! past any leading cancelled nodes before doing its own work. This differs
//! from the Java 6 code, which additionally unsplices cancelled *interior*
//! nodes (the `cleanMe` scheme): interior unsplicing is only memory-safe
//! under a tracing GC, because an unspliced node can remain reachable
//! through a chain of previously unspliced predecessors. Head absorption
//! has the same bound the paper cares about — a burst of timed-out
//! operations is reclaimed by the next arrival — and experiment A4
//! measures the residual buildup.
//!
//! # Memory lifetime
//!
//! Each node carries a reference count, initially 2: one held by the
//! *structure*, one by the *waiter* that created it (the dummy starts at 1).
//! The structure's reference is released — via [`Shield::defer_retire`] —
//! by whichever thread's CAS advances the head past the node; the waiter's
//! is released directly when its operation returns. Waiters therefore hold
//! no reclaimer guard while parked (a sleeping thread never stalls epoch
//! reclamation), and matchers only touch nodes while guarded.
//!
//! The reclamation backend is the type parameter `R` (default [`Epoch`]).
//! Under bounded-slot backends ([`synq_reclaim::Hazard`]) every deref of a
//! node reached through another node's `next` field must be preceded by a
//! validation proving the node was not yet retired when its protection
//! became visible (the [`Shield::protect`] contract). Two idioms appear
//! below:
//!
//! * **Snapshot re-check** (the M&S consistency checks the loops already
//!   perform): re-load `head`/`tail` and compare to the protected snapshot.
//!   A protected structure-field value cannot be recycled while its slot
//!   is live, so pointer equality proves it is still the field's value —
//!   and a live head means none of its successors are retired (nodes
//!   retire strictly front-to-back, when the head advances past them).
//! * **Head re-anchor** (the chain walks): after protecting `p.next`,
//!   re-read `head` and restart the walk if it moved. The queue retires
//!   nodes only as the head advances past them, so an *unchanged* head —
//!   conclusive, because popped nodes are never re-linked and the slot
//!   protecting it prevents address reuse — proves no node reachable from
//!   it has been retired. (A per-node `unlinked` flag would not do: the
//!   popping thread sets it *after* its head CAS, so a stalled popper can
//!   leave a successor retired while its predecessor still reads as live.)
//!
//! Dead nodes are not returned to the allocator: their skeletons go to a
//! bounded per-queue free list (`node_cache`) and are recycled by
//! later transfers. Skeletons reach the list only through retire closures
//! (or with exclusive access), and are popped only under a guard —
//! the ABA argument lives in the node-cache module docs.

use crate::node_cache::{NodeCache, Recyclable};
use crate::pollable::{PendingTransfer, PollTransferer, StartTransfer};
use crate::transferer::{Deadline, TransferOutcome, Transferer};
use core::task::{Poll, Waker};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use synq_primitives::{CachePadded, CancelToken, SpinPolicy, WaitOutcome, WaitSlot};
use synq_reclaim::{Atomic, Epoch, Owned, Pointer, Reclaimer, Shared, Shield};

/// Result of the lock-free phase: resolved outright, or a node published
/// that some counterpart must now fulfill.
enum RawStart<T, R: Reclaimer> {
    Done(TransferOutcome<T>),
    Published(*const QNode<T, R>),
}

struct QNode<T, R: Reclaimer> {
    /// The wait-node protocol: state machine, item cell, waiter mailbox.
    /// For a data node the item is written by the owner before publication;
    /// for a request node, by the matcher while `CLAIMED`.
    slot: WaitSlot<T>,
    next: Atomic<QNode<T, R>, R>,
    /// Producer (`true`) or consumer (`false`) node. Immutable.
    is_data: bool,
    /// 2 = structure + waiter (dummy: 1 = structure only).
    refs: AtomicUsize,
    /// Set (before the retire) by the release of the structure reference;
    /// a debug guard that the release happens exactly once.
    unlinked: AtomicBool,
}

impl<T, R: Reclaimer> QNode<T, R> {
    /// `is_data` must be passed explicitly: waiter nodes are allocated
    /// empty and have their item written just before publication, so it
    /// cannot be inferred from the slot.
    fn new(is_data: bool, refs: usize) -> Owned<QNode<T, R>> {
        Owned::new(QNode {
            slot: WaitSlot::new(),
            next: Atomic::null(),
            is_data,
            refs: AtomicUsize::new(refs),
            unlinked: AtomicBool::new(false),
        })
    }

    /// Drops one reference. When it was the last, drops any unconsumed item
    /// eagerly and hands the dead skeleton to `dispose` (cache or free).
    unsafe fn release(ptr: *const QNode<T, R>, dispose: impl FnOnce(*mut QNode<T, R>)) {
        // SAFETY: caller owns one reference.
        let node = unsafe { &*ptr };
        if node.refs.fetch_sub(1, Ordering::Release) == 1 {
            std::sync::atomic::fence(Ordering::Acquire);
            // SAFETY: last reference; nobody can reach the node (the
            // structure's release is deferred past the grace period, so any
            // guarded reader has since lost its protection). The slot's
            // filled/consumed flags decide whether an item is still pending.
            let node = unsafe { &mut *(ptr as *mut QNode<T, R>) };
            node.slot.drop_pending_item();
            dispose(ptr as *mut QNode<T, R>);
        }
    }
}

impl<T, R: Reclaimer> Recyclable for QNode<T, R> {
    unsafe fn free_next(ptr: *mut Self) -> *mut Self {
        // The free list reuses the node's own `next` field as its link.
        // SAFETY: the trait contract grants the exclusivity (or protection)
        // the unprotected guard requires for this read.
        let guard = unsafe { R::unprotected() };
        // SAFETY: `ptr` is alive per the trait contract.
        unsafe { (*ptr).next.load(Ordering::Acquire, &guard).as_raw() as *mut Self }
    }

    unsafe fn set_free_next(ptr: *mut Self, next: *mut Self) {
        // SAFETY: exclusive ownership per the trait contract; the Shared is
        // only a typed wrapper around the raw link value.
        unsafe {
            (*ptr)
                .next
                .store(Shared::from_raw(next as *const Self), Ordering::Release)
        };
    }

    unsafe fn dealloc(ptr: *mut Self) {
        // SAFETY: exclusive ownership; the item slot is empty, and QNode
        // itself owns no other heap state beyond the WaiterCell's Drop.
        drop(unsafe { Box::from_raw(ptr) });
    }
}

/// The fair (FIFO) synchronous queue.
///
/// See the [module docs](self) for the algorithm. The second type
/// parameter selects the memory-reclamation backend (see "Choosing a
/// reclaimer" in the README); it defaults to [`Epoch`], so
/// `SyncDualQueue<T>` is the fast-load configuration every pre-existing
/// caller gets. Prefer the [`crate::SynchronousQueue`] facade unless you
/// need this concrete type.
///
/// # Examples
///
/// ```
/// use synq::{SyncDualQueue, SyncChannel, TimedSyncChannel};
/// use std::sync::Arc;
/// use std::thread;
///
/// let q = Arc::new(SyncDualQueue::new());
/// assert_eq!(q.poll(), None); // nobody waiting
/// let q2 = Arc::clone(&q);
/// let t = thread::spawn(move || q2.take());
/// q.put("hello");
/// assert_eq!(t.join().unwrap(), "hello");
/// ```
///
/// Selecting the hazard-pointer backend (bounded garbage under stalled
/// readers, slower loads):
///
/// ```
/// use synq::{SyncDualQueue, TimedSyncChannel};
/// use synq_reclaim::Hazard;
///
/// let q: SyncDualQueue<u32, Hazard> = SyncDualQueue::new_in();
/// assert_eq!(q.poll(), None);
/// ```
pub struct SyncDualQueue<T, R: Reclaimer = Epoch> {
    /// Consumers (matchers) hammer `head`, producers hammer `tail`; each
    /// owns its cache line(s) so the two ends never false-share.
    head: CachePadded<Atomic<QNode<T, R>, R>>,
    tail: CachePadded<Atomic<QNode<T, R>, R>>,
    /// Free list of dead node skeletons, shared with the retire closures
    /// that refill it.
    cache: Arc<NodeCache<QNode<T, R>>>,
    spin: SpinPolicy,
}

// Layout: padding must actually separate the two ends.
const _: () = assert!(std::mem::align_of::<SyncDualQueue<u8>>() >= 128);
const _: () = assert!(std::mem::size_of::<SyncDualQueue<u8>>() >= 2 * 128);

// SAFETY: nodes hand `T` values across threads; all shared mutation goes
// through atomics and the claim/consume protocol.
unsafe impl<T: Send, R: Reclaimer> Send for SyncDualQueue<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for SyncDualQueue<T, R> {}

impl<T: Send, R: Reclaimer> Default for SyncDualQueue<T, R> {
    fn default() -> Self {
        Self::new_in()
    }
}

impl<T: Send> SyncDualQueue<T> {
    /// Creates an empty queue with the adaptive spin policy (and the
    /// default [`Epoch`] reclaimer — see [`SyncDualQueue::new_in`] for
    /// other backends).
    pub fn new() -> Self {
        Self::with_spin(SpinPolicy::adaptive())
    }

    /// Creates an empty queue with an explicit spin policy (ablation A1).
    pub fn with_spin(spin: SpinPolicy) -> Self {
        Self::with_config(spin, crate::node_cache::NODE_CACHE_CAP)
    }

    /// Creates an empty queue with an explicit spin policy and node-cache
    /// retention bound. Striped structures size each lane's cache down so K
    /// lanes together pin no more skeletons than one unstriped queue.
    pub fn with_config(spin: SpinPolicy, cache_capacity: usize) -> Self {
        Self::with_config_in(spin, cache_capacity)
    }
}

impl<T: Send, R: Reclaimer> SyncDualQueue<T, R> {
    /// Creates an empty queue under the reclamation backend `R` with the
    /// adaptive spin policy. The backend defaults to epoch, so the plain
    /// [`SyncDualQueue::new`] is `new_in` with `R = Epoch`:
    ///
    /// ```
    /// use synq::{SyncChannel, SyncDualQueue, TimedSyncChannel};
    /// use synq_reclaim::{Epoch, Hazard};
    ///
    /// let epoch: SyncDualQueue<u32, Epoch> = SyncDualQueue::new_in(); // == new()
    /// let hazard: SyncDualQueue<u32, Hazard> = SyncDualQueue::new_in();
    /// std::thread::scope(|s| {
    ///     s.spawn(|| hazard.put(7));
    ///     s.spawn(|| assert_eq!(hazard.take(), 7));
    /// });
    /// assert_eq!(epoch.offer(1), Err(1)); // nobody waiting
    /// ```
    pub fn new_in() -> Self {
        Self::with_config_in(SpinPolicy::adaptive(), crate::node_cache::NODE_CACHE_CAP)
    }

    /// Creates an empty queue under the reclamation backend `R` with an
    /// explicit spin policy and node-cache retention bound.
    pub fn with_config_in(spin: SpinPolicy, cache_capacity: usize) -> Self {
        let cache = Arc::new(NodeCache::with_capacity(cache_capacity));
        // The initial dummy holds only the structure reference.
        cache.note_alloc();
        let dummy = QNode::new(false, 1);
        // SAFETY: single-threaded construction.
        let guard = unsafe { R::unprotected() };
        let dummy = dummy.into_shared(&guard);
        let head = Atomic::null();
        let tail = Atomic::null();
        head.store(dummy, Ordering::Relaxed);
        tail.store(dummy, Ordering::Relaxed);
        SyncDualQueue {
            head: CachePadded::new(head),
            tail: CachePadded::new(tail),
            cache,
            spin,
        }
    }

    /// Gets a node for this transfer: a recycled skeleton when one is
    /// available, a fresh allocation otherwise. `guard` witnesses the
    /// protection the free-list pop requires.
    fn alloc_node(&self, is_data: bool, guard: &R::Guard) -> Owned<QNode<T, R>> {
        // SAFETY: guarded, per `guard`.
        if let Some(p) = unsafe { self.cache.pop(guard) } {
            // SAFETY: the pop transferred exclusive ownership of a dead
            // skeleton (item slot empty); re-arm every field in place.
            unsafe {
                let node = &mut *p;
                node.slot.reset();
                node.next = Atomic::null();
                node.is_data = is_data;
                *node.refs.get_mut() = 2;
                *node.unlinked.get_mut() = false;
                Owned::from_usize(p as usize)
            }
        } else {
            self.cache.note_alloc();
            QNode::new(is_data, 2)
        }
    }

    /// Diagnostic: nodes heap-allocated over the queue's lifetime.
    pub fn nodes_allocated(&self) -> usize {
        self.cache.allocs()
    }

    /// Diagnostic: allocations avoided by recycling dead nodes.
    pub fn nodes_recycled(&self) -> usize {
        self.cache.reuses()
    }

    /// Advances `head` from `h` to `nh`, releasing the old dummy's
    /// structure reference. Returns true if this thread's CAS won.
    fn advance_head<'g>(
        &self,
        h: Shared<'g, QNode<T, R>>,
        nh: Shared<'g, QNode<T, R>>,
        guard: &'g R::Guard,
    ) -> bool {
        if self
            .head
            .compare_exchange(h, nh, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            synq_obs::probe!(QueueHeadAdvances);
            // Help a lagging tail off `h` before retiring it, so `tail`
            // never references a retired node (Michael's rule). Without
            // this a bounded-slot backend could free `h` while `tail`
            // still points at it, and a later tail-load's source
            // re-validation would wrongly pass. Tail moves only forward
            // along the chain, so once past `h` it can never return.
            let t = self.tail.load(Ordering::Acquire, guard);
            if t.ptr_eq(&h) {
                let _ =
                    self.tail
                        .compare_exchange(t, nh, Ordering::Release, Ordering::Relaxed, guard);
            }
            self.release_structure_ref(h, guard);
            true
        } else {
            false
        }
    }

    fn release_structure_ref<'g>(&self, node: Shared<'g, QNode<T, R>>, guard: &'g R::Guard) {
        // SAFETY: node was just unlinked by our CAS (which proves it was
        // live, and the caller protected it before); it stays alive for the
        // backend's grace period.
        let node_ref = unsafe { node.deref() };
        let was = node_ref.unlinked.swap(true, Ordering::AcqRel);
        debug_assert!(!was, "structure reference released twice");
        let raw = node.as_raw() as usize;
        let cache = Arc::clone(&self.cache);
        // SAFETY: runs once no guard protects the node; the waiter's own
        // reference keeps the node alive beyond that if it is still waking
        // up. Running *inside* the retire closure satisfies the free-list
        // push contract, so the skeleton can go to the cache directly.
        unsafe {
            guard.defer_retire(raw, move || {
                // SAFETY (push): runs inside this retirement with exclusive
                // skeleton ownership, satisfying the free-list contract.
                QNode::release(raw as *const QNode<T, R>, |p| cache.push(p));
            });
        }
    }

    /// Releases a reference from outside any retire closure (the waiter's
    /// own reference). If it is the last, the item is dropped now but the
    /// skeleton's return to the free list is itself deferred — re-pushing
    /// before the node is unprotected would reintroduce free-list ABA.
    fn release_direct(&self, ptr: *const QNode<T, R>) {
        // SAFETY: caller owns the reference being dropped. The dispose
        // closure defers the free-list push until the node is unprotected,
        // so it satisfies the push contract; the skeleton is exclusively
        // ours.
        unsafe {
            QNode::release(ptr, |p| {
                let cache = Arc::clone(&self.cache);
                let addr = p as usize;
                let guard = R::pin();
                guard.defer_retire(addr, move || cache.push(addr as *mut QNode<T, R>));
            });
        }
    }

    /// Absorbs leading cancelled nodes. Called by every arriving operation
    /// and by cancelling waiters; this is the cleaning strategy (see module
    /// docs). Returns true if it advanced the head at all.
    fn absorb_cancelled(&self, guard: &R::Guard) -> bool {
        let mut advanced = false;
        let mut h = self.head.load(Ordering::Acquire, guard);
        loop {
            // SAFETY: head is never null (dummy invariant) and protected.
            let h_ref = unsafe { h.deref() };
            let hn = h_ref.next.load(Ordering::Acquire, guard);
            // Snapshot re-check (module docs): `hn` came through a node
            // field, so prove `h` was still the head — hence unretired,
            // hence `hn` unretired — after `hn`'s protection published.
            let reread = self.head.load(Ordering::Acquire, guard);
            if !h.ptr_eq(&reread) {
                h = reread;
                continue;
            }
            // SAFETY: validated just above.
            let Some(hn_ref) = (unsafe { hn.as_ref() }) else {
                return advanced;
            };
            if !hn_ref.slot.is_cancelled() {
                return advanced;
            }
            if self.advance_head(h, hn, guard) {
                // Our CAS installed `hn` as the head: continue from it
                // directly instead of re-reading `head` (which a competing
                // absorber may already have moved further — the stale
                // re-read would just fail its next CAS anyway).
                advanced = true;
                h = hn;
            } else {
                h = self.head.load(Ordering::Acquire, guard);
            }
        }
    }

    fn transfer_impl(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        let is_data = item.is_some();
        match self.start_impl(item, deadline, token) {
            RawStart::Done(outcome) => outcome,
            // Wait without holding a reclaimer guard.
            RawStart::Published(node_raw) => self.await_fulfill(node_raw, is_data, deadline, token),
        }
    }

    /// The lock-free phase of one transfer: match a waiting counterpart or
    /// publish a node at the tail. Never waits; `deadline`/`token` are
    /// consulted only for the fail-fast checks before publication (pass
    /// [`Deadline::Never`] and `None` to always publish, as poll-mode
    /// callers do — they apply their own checks on each poll).
    fn start_impl(
        &self,
        mut item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> RawStart<T, R> {
        let is_data = item.is_some();
        // The node is allocated at most once per call and reused across
        // retries (the paper's pragmatics: avoid per-retry allocation).
        let mut node: Option<Owned<QNode<T, R>>> = None;

        loop {
            let guard = R::pin();
            self.absorb_cancelled(&guard);

            let h = self.head.load(Ordering::Acquire, &guard);
            let t = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: head/tail never null; protected by the guard.
            let t_ref = unsafe { t.deref() };

            if h.ptr_eq(&t) || t_ref.is_data == is_data {
                // Empty queue, or queue holds our own mode: append & wait.
                let n = t_ref.next.load(Ordering::Acquire, &guard);
                if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard)) {
                    continue; // inconsistent snapshot
                }
                if !n.is_null() {
                    // Lagging tail: help. (`n` is compared and CASed, never
                    // dereferenced, so no extra validation is needed.)
                    let _ = self.tail.compare_exchange(
                        t,
                        n,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    continue;
                }
                // We would have to wait. Fail fast for `offer`/`poll` and
                // for already-tripped cancellation tokens.
                if deadline.is_now() {
                    return RawStart::Done(TransferOutcome::Timeout(item));
                }
                if token.is_some_and(|tk| tk.is_cancelled()) {
                    return RawStart::Done(TransferOutcome::Cancelled(item));
                }
                let owned = match node.take() {
                    Some(n) => n,
                    None => self.alloc_node(is_data, &guard),
                };
                // (Re-)arm the node for this attempt.
                if is_data {
                    // SAFETY: we own the node; slot is empty (fresh node or
                    // item reclaimed after a failed CAS below).
                    unsafe {
                        owned
                            .slot
                            .put_item(item.take().expect("data transfer has item"))
                    };
                }
                let node_raw = match t_ref.next.compare_exchange(
                    Shared::null(),
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        synq_obs::probe!(QueueAppendCas);
                        let _ = self.tail.compare_exchange(
                            t,
                            published,
                            Ordering::Release,
                            Ordering::Relaxed,
                            &guard,
                        );
                        published.as_raw()
                    }
                    Err(e) => {
                        // Reclaim the item and retry with the same node.
                        synq_obs::probe!(QueueAppendCasFail);
                        crate::contention::note_cas_fail();
                        let owned = e.new;
                        if is_data {
                            // SAFETY: node unpublished; we wrote the slot
                            // above and nobody else can see it.
                            item = Some(unsafe { owned.slot.reclaim_item() });
                        }
                        node = Some(owned);
                        continue;
                    }
                };
                drop(guard);
                return RawStart::Published(node_raw);
            }

            // Complementary mode at the front: match `head.next`.
            let m = h_ref_next(h, &guard);
            // Snapshot re-check (module docs): `m` came through a node
            // field; `h` still being the head proves both snapshots are
            // consistent and `m` was unretired when its protection
            // published.
            if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard))
                || !h.ptr_eq(&self.head.load(Ordering::Acquire, &guard))
            {
                continue;
            }
            let Some(m_shared) = m else { continue };
            // SAFETY: m reachable from head, validated above.
            let m_ref = unsafe { m_shared.deref() };
            debug_assert_ne!(m_ref.is_data, is_data, "dual invariant violated");

            let matched = if m_ref.slot.try_claim() {
                synq_obs::probe!(QueueClaimCas);
                if is_data {
                    // Give our item to the waiting consumer.
                    // SAFETY: winning the claim grants slot write access.
                    unsafe {
                        m_ref
                            .slot
                            .put_item(item.take().expect("data transfer has item"))
                    };
                } else {
                    // Take the waiting producer's item.
                    // SAFETY: winning the claim grants slot read access.
                    item = Some(unsafe { m_ref.slot.take_item() });
                }
                m_ref.slot.complete();
                true
            } else {
                synq_obs::probe!(QueueClaimCasFail);
                crate::contention::note_cas_fail();
                false
            };
            // Advance past m whether we matched it or lost the race
            // (cancelled / claimed by someone else) — paper Figure 1 step D.
            let _ = self.advance_head(h, m_shared, &guard);
            if matched {
                return RawStart::Done(TransferOutcome::Transferred(item));
            }
        }
    }

    /// Waits on our own freshly appended node. Touches only that node (we
    /// hold a reference on it), so no reclaimer guard is held while
    /// waiting — parked threads never stall reclamation. The
    /// spin-then-park loop and the cancel arbitration are the shared
    /// [`WaitSlot`] engine's.
    fn await_fulfill(
        &self,
        node_raw: *const QNode<T, R>,
        is_data: bool,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        // SAFETY: we hold one of the node's references until `release`.
        let node = unsafe { &*node_raw };
        let verdict = node.slot.await_outcome(deadline, token, &self.spin);
        self.finish_wait(node_raw, is_data, verdict)
    }

    /// Epilogue shared by the blocking and poll-mode wait loops: resolves a
    /// terminal [`WaitOutcome`] on our own node into a transfer outcome,
    /// helps dequeue the node, and drops the waiter's reference.
    fn finish_wait(
        &self,
        node_raw: *const QNode<T, R>,
        is_data: bool,
        verdict: WaitOutcome,
    ) -> TransferOutcome<T> {
        // SAFETY: we hold one of the node's references until `release`.
        let node = unsafe { &*node_raw };
        let outcome = match verdict {
            WaitOutcome::Matched(_) => {
                let item = if is_data {
                    None
                } else {
                    // SAFETY: matcher wrote the slot before MATCHED.
                    Some(unsafe { node.slot.take_item() })
                };
                TransferOutcome::Transferred(item)
            }
            verdict => {
                // We won the cancel CAS. Give the cancelled prefix (which
                // now includes our node) a chance to be reclaimed.
                let guard = R::pin();
                self.absorb_cancelled(&guard);
                drop(guard);
                let item = if is_data {
                    // SAFETY: cancellation wins back item ownership.
                    Some(unsafe { node.slot.take_item() })
                } else {
                    None
                };
                if verdict == WaitOutcome::Cancelled {
                    TransferOutcome::Cancelled(item)
                } else {
                    TransferOutcome::Timeout(item)
                }
            }
        };

        // Help dequeue our own node if it is next in line (paper Listing 5
        // lines 17–19), then drop the waiter's reference. `hn` is only
        // compared against our own pointer, never dereferenced.
        if matches!(outcome, TransferOutcome::Transferred(_)) {
            let guard = R::pin();
            let h = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: head never null.
            let hn = unsafe { h.deref() }.next.load(Ordering::Acquire, &guard);
            if hn.as_raw() == node_raw {
                let _ = self.advance_head(h, hn, &guard);
            }
        }
        // Balanced with the creation refcount of 2.
        self.release_direct(node_raw);
        outcome
    }

    /// Racy peek for the striped router's rescan: is any linked node a
    /// still-`WAITING` producer (`is_data`) / consumer (`!is_data`)? Walks
    /// the whole chain — a cancelled front node must not hide a live waiter
    /// behind it, or two waiters on sibling lanes could miss each other
    /// forever. Staleness in both directions is possible by the time the
    /// caller acts; the striped retract protocol tolerates both.
    pub(crate) fn has_waiting(&self, is_data: bool) -> bool {
        let guard = R::pin();
        'restart: loop {
            let h = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: head never null; structure-field protection.
            let mut prev = unsafe { h.deref() };
            loop {
                let next = prev.next.load(Ordering::Acquire, &guard);
                // Head re-anchor (module docs): the queue retires nodes
                // only as the head advances past them, so while the head
                // is *unchanged* — conclusive, because popped nodes are
                // never re-linked and the slot protecting `h` prevents
                // address reuse — every node reached from it is unpopped,
                // structure-referenced, and alive. Each restart means the
                // head advanced, so the loop is lock-free.
                if !self.head.load(Ordering::Acquire, &guard).ptr_eq(&h) {
                    continue 'restart;
                }
                // SAFETY: protected, and validated live just above.
                let Some(n) = (unsafe { next.as_ref() }) else {
                    return false;
                };
                if n.is_data == is_data && n.slot.is_waiting() {
                    return true;
                }
                prev = n;
            }
        }
    }

    /// Diagnostic: number of linked nodes (excluding the dummy). O(n); used
    /// by tests and the cleaning ablation, not by the algorithm.
    pub fn linked_nodes(&self) -> usize {
        let guard = R::pin();
        'restart: loop {
            let h = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: head never null; structure-field protection.
            let mut prev = unsafe { h.deref() };
            let mut count = 0;
            loop {
                let next = prev.next.load(Ordering::Acquire, &guard);
                // Head re-anchor (see `has_waiting`).
                if !self.head.load(Ordering::Acquire, &guard).ptr_eq(&h) {
                    continue 'restart;
                }
                // SAFETY: protected, and validated live just above.
                let Some(n) = (unsafe { next.as_ref() }) else {
                    return count;
                };
                count += 1;
                prev = n;
            }
        }
    }
}

/// Loads `h.next`, returning `None` (retry) if it is null. The result is
/// protected but not yet validated — callers must re-check `head` before
/// dereferencing (see the module docs).
fn h_ref_next<'g, T, R: Reclaimer>(
    h: Shared<'g, QNode<T, R>>,
    guard: &'g R::Guard,
) -> Option<Shared<'g, QNode<T, R>>> {
    // SAFETY: h is the protected head.
    let next = unsafe { h.deref() }.next.load(Ordering::Acquire, guard);
    if next.is_null() {
        None
    } else {
        Some(next)
    }
}

impl<T: Send, R: Reclaimer> Transferer<T> for SyncDualQueue<T, R> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        self.transfer_impl(item, deadline, token)
    }
}

/// A published-but-unresolved queue transfer (see
/// [`PollTransferer::start_transfer`]).
///
/// Polling drives the node's [`WaitSlot`] poll-mode wait loop; dropping an
/// unresolved permit cancels exactly like a timed-out blocking waiter
/// (`WAITING → CANCELLED` CAS, head absorption, reference release), so the
/// futures built on top are safe to drop at any point. A producer's
/// unsent item — or an item a fulfiller deposited that the dropped
/// consumer will never read — is dropped exactly once by the node's final
/// reference release.
pub struct QueuePermit<T: Send, R: Reclaimer = Epoch> {
    queue: Arc<SyncDualQueue<T, R>>,
    node: *const QNode<T, R>,
    is_data: bool,
    /// Set when `poll_transfer` returned `Ready`: the waiter reference has
    /// been released and `node` must not be touched again.
    done: bool,
}

// SAFETY: the permit is a waiter's handle on its own node — the same
// references a blocking waiter thread holds — and the queue is `Sync`; the
// raw pointer is kept alive by the reference count.
unsafe impl<T: Send, R: Reclaimer> Send for QueuePermit<T, R> {}

impl<T: Send, R: Reclaimer> QueuePermit<T, R> {
    /// Resolves the permit by blocking — the same spin-then-park wait a
    /// blocking `transfer` performs, on the already-published node. The
    /// striped router uses this to downgrade a poll-mode publication into a
    /// blocking wait once its post-publish rescan comes up empty.
    pub(crate) fn wait(
        mut self,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        self.done = true;
        // SAFETY: `done` was false, so the waiter reference is still held.
        let node = unsafe { &*self.node };
        let verdict = node.slot.await_outcome(deadline, token, &self.queue.spin);
        self.queue.finish_wait(self.node, self.is_data, verdict)
    }
}

impl<T: Send, R: Reclaimer> PendingTransfer<T> for QueuePermit<T, R> {
    fn poll_transfer(
        &mut self,
        waker: &Waker,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> Poll<TransferOutcome<T>> {
        assert!(!self.done, "QueuePermit polled after completion");
        // SAFETY: `done` is false, so the waiter reference is still held.
        let node = unsafe { &*self.node };
        match node.slot.poll_outcome(waker, deadline, token) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(verdict) => {
                self.done = true;
                Poll::Ready(self.queue.finish_wait(self.node, self.is_data, verdict))
            }
        }
    }
}

impl<T: Send, R: Reclaimer> Drop for QueuePermit<T, R> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // SAFETY: the waiter reference is still held.
        let node = unsafe { &*self.node };
        if node.slot.try_cancel() {
            // Cancel won: retract like a timed-out waiter, settling the
            // unsent item now (the blocking path hands it back to the
            // caller; a dropped future has no caller, so drop it here).
            if self.is_data {
                // SAFETY: cancellation wins back item ownership.
                drop(unsafe { node.slot.take_item() });
            }
            let guard = R::pin();
            self.queue.absorb_cancelled(&guard);
            drop(guard);
        }
        // Cancel lost: a fulfiller claimed (or already matched) the node.
        // Nothing to retract — an item it deposited for us is likewise
        // dropped by the final release, which the retirement orders after
        // the fulfiller's protection, so a mid-`put_item` fulfiller is
        // safe.
        self.queue.release_direct(self.node);
    }
}

impl<T: Send, R: Reclaimer> std::fmt::Debug for QueuePermit<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuePermit")
            .field("is_data", &self.is_data)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<T: Send, R: Reclaimer> PollTransferer<T> for SyncDualQueue<T, R> {
    type Permit = QueuePermit<T, R>;

    fn start_transfer(this: &Arc<Self>, item: Option<T>) -> StartTransfer<T, QueuePermit<T, R>> {
        let is_data = item.is_some();
        // Never/None: poll-mode callers apply deadline and cancellation on
        // each poll; the lock-free phase must always publish.
        match this.start_impl(item, Deadline::Never, None) {
            RawStart::Done(outcome) => StartTransfer::Complete(outcome),
            RawStart::Published(node) => StartTransfer::Pending(QueuePermit {
                queue: Arc::clone(this),
                node,
                is_data,
                done: false,
            }),
        }
    }
}

impl<T, R: Reclaimer> Drop for SyncDualQueue<T, R> {
    fn drop(&mut self) {
        // Exclusive access: every waiter has returned (they hold &self via
        // Arc or borrow), so all remaining references are the structure's.
        // SAFETY: exclusive access per above.
        let guard = unsafe { R::unprotected() };
        let mut p = self.head.load(Ordering::Relaxed, &guard);
        while !p.is_null() {
            // SAFETY: exclusive access; chain nodes each hold exactly the
            // structure reference now, so free them outright (the cache
            // drains itself when its last Arc drops).
            let node = unsafe { p.deref() };
            let next = node.next.load(Ordering::Relaxed, &guard);
            unsafe { QNode::release(p.as_raw(), |n| QNode::dealloc(n)) };
            p = next;
        }
    }
}

impl<T, R: Reclaimer> std::fmt::Debug for SyncDualQueue<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("SyncDualQueue { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{SyncChannel, TimedSyncChannel};
    use std::sync::Arc;
    use std::thread;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_and_offer_on_empty_fail() {
        let q: SyncDualQueue<u32> = SyncDualQueue::new();
        assert_eq!(q.poll(), None);
        assert_eq!(q.offer(7), Err(7));
        assert_eq!(q.linked_nodes(), 0);
    }

    #[test]
    fn put_take_pair() {
        let q = Arc::new(SyncDualQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(99u32);
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn take_then_put() {
        let q = Arc::new(SyncDualQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.put(5u64));
        assert_eq!(q.take(), 5);
        t.join().unwrap();
    }

    #[test]
    fn offer_succeeds_with_waiting_consumer() {
        let q = Arc::new(SyncDualQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        // Wait until the consumer's reservation is linked.
        while q.linked_nodes() == 0 {
            thread::yield_now();
        }
        // A short retry loop: the reservation is linked, but may still be
        // settling; offer must succeed almost immediately.
        let mut v = 42u32;
        loop {
            match q.offer(v) {
                Ok(()) => break,
                Err(back) => {
                    v = back;
                    thread::yield_now();
                }
            }
        }
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn poll_timeout_expires_empty() {
        let q: SyncDualQueue<u8> = SyncDualQueue::new();
        let start = Instant::now();
        assert_eq!(q.poll_timeout(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(30));
        // The cancelled reservation must not linger once absorbed.
        let _ = q.poll(); // triggers absorption
        assert_eq!(q.linked_nodes(), 0);
    }

    #[test]
    fn offer_timeout_returns_item() {
        let q: SyncDualQueue<String> = SyncDualQueue::new();
        let item = "payload".to_string();
        let back = q
            .offer_timeout(item, Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(back, "payload");
    }

    #[test]
    fn fifo_order_among_waiting_producers() {
        let q = Arc::new(SyncDualQueue::new());
        let mut producers = Vec::new();
        for i in 0..5u32 {
            let q2 = Arc::clone(&q);
            producers.push(thread::spawn(move || q2.put(i)));
            // Ensure deterministic arrival order.
            while q.linked_nodes() < (i + 1) as usize {
                thread::yield_now();
            }
        }
        // Consume: must come out 0,1,2,3,4 (fairness).
        for expect in 0..5u32 {
            assert_eq!(q.take(), expect);
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn cancellation_interrupts_waiting_take() {
        let q: Arc<SyncDualQueue<u8>> = Arc::new(SyncDualQueue::new());
        let token = CancelToken::new();
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take_with(Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(30));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(None) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_returns_item_to_producer() {
        let q: Arc<SyncDualQueue<Vec<u8>>> = Arc::new(SyncDualQueue::new());
        let token = CancelToken::new();
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.put_with(vec![1, 2, 3], Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(30));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(Some(v)) => assert_eq!(v, vec![1, 2, 3]),
            other => panic!("expected Cancelled(item), got {other:?}"),
        }
    }

    #[test]
    fn timeout_storm_is_absorbed() {
        // The paper's buildup scenario: high offer rate, tiny patience, no
        // consumers. Arrivals must absorb the cancelled prefix.
        let q: SyncDualQueue<u32> = SyncDualQueue::new();
        for i in 0..200 {
            let _ = q.offer_timeout(i, Duration::from_micros(1));
        }
        // After the storm at most a handful of nodes may remain linked
        // (the last arrivals, already cancelled but not yet absorbed).
        let _ = q.poll();
        assert!(
            q.linked_nodes() <= 2,
            "cancelled nodes built up: {}",
            q.linked_nodes()
        );
    }

    #[test]
    fn values_conserved_under_stress() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER: usize = 500;
        let q = Arc::new(SyncDualQueue::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.put(p * PER + i);
                }
            }));
        }
        let sums: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sum = 0usize;
                    for _ in 0..(PRODUCERS * PER / CONSUMERS) {
                        sum += q.take();
                    }
                    sum
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = sums.into_iter().map(|h| h.join().unwrap()).sum();
        let expected: usize = (0..PRODUCERS * PER).sum();
        assert_eq!(total, expected);
        assert_eq!(q.linked_nodes(), 0);
    }

    #[test]
    fn drop_frees_unmatched_data_nodes() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q: SyncDualQueue<D> = SyncDualQueue::new();
            // Timed-out offers leave cancelled nodes whose items were
            // reclaimed by the producer; the nodes themselves are freed on
            // drop at the latest.
            for _ in 0..5 {
                let r = q.offer_timeout(D, Duration::from_micros(1));
                drop(r); // drops the returned D
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn hazard_backend_put_take_pair() {
        let q: Arc<SyncDualQueue<u32, synq_reclaim::Hazard>> = Arc::new(SyncDualQueue::new_in());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(7);
        assert_eq!(t.join().unwrap(), 7);
        assert_eq!(q.linked_nodes(), 0);
    }
}
