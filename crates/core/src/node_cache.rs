//! A bounded, intrusive free list that recycles dead queue/stack nodes.
//!
//! The paper's pragmatics section singles out allocation as a hidden cost of
//! the dual structures: every transfer that has to wait allocates a node,
//! and under a steady handoff load the structures churn through one node per
//! transfer pair. This module keeps a small per-structure stash of dead node
//! *skeletons* (item already dropped, state torn down) threaded through the
//! nodes' own `next` fields, so the steady state allocates nothing.
//!
//! # Safety protocol (free-list ABA)
//!
//! The cache is a Treiber stack, and a naive concurrent Treiber pop is
//! ABA-unsafe: between a popper's read of `head = A` (with `A.next = B`) and
//! its CAS, `A` could be popped by another thread, recycled through the
//! structure, freed again, and re-pushed — with a different successor — and
//! the stale CAS would corrupt the list. We rule this out with the same
//! reclamation machinery that protects the structures themselves:
//!
//! * **Pops happen only under a reclaimer guard** ([`NodeCache::pop`] takes
//!   the guard and routes the head read through [`Shield::protect`];
//!   `transfer_impl` holds its guard across the pop).
//! * **Pushes happen only from retire closures** (`Shield::defer_retire`
//!   keyed on the node's address, or with exclusive access during
//!   teardown). A node's return to the free list therefore waits until no
//!   guard protects it.
//!
//! With both rules, the ABA interleaving above is impossible under either
//! backend. Epoch: a popper pinned at epoch `E` observed `A` on the list
//! *during* its pin, so `A`'s next re-push sits in a bag sealed at epoch ≥
//! `E`, which cannot expire until the global epoch reaches `E + 2` — and
//! the popper's own published pin prevents the epoch from advancing past
//! `E + 1`. Hazard: `protect` publishes `A`'s address in a slot before the
//! CAS, and the re-push *is* `A`'s retire closure, which the scan cannot
//! run while the slot holds `A` — so if the CAS succeeds, `A` was never
//! re-pushed in between. The same argument covers reading `A.next` (the
//! node cannot be freed mid-pop) and the overflow `dealloc` in
//! [`NodeCache::push`].
//!
//! The cache is bounded ([`NODE_CACHE_CAP`]): a push that would exceed the
//! bound frees the node instead, so a burst of timed-out waiters cannot pin
//! memory forever. Dropping the cache (when the owning structure and every
//! pending deferral are gone) frees whatever is left.

use std::sync::atomic::{AtomicUsize, Ordering};
use synq_primitives::CachePadded;
use synq_reclaim::Shield;

/// Default bound on the number of skeletons a cache retains; overflow is
/// freed. [`NodeCache::with_capacity`] lets a structure size this down —
/// striped structures give each lane a proportionally smaller stash so K
/// lanes together pin no more memory than one unstriped structure.
pub(crate) const NODE_CACHE_CAP: usize = 64;

/// Node types that can ride the free list, which is threaded through the
/// node's own link field (no extra allocation, no size overhead).
pub(crate) trait Recyclable: Sized {
    /// Reads the intrusive link.
    ///
    /// # Safety
    ///
    /// `ptr` must be a node currently or formerly on the free list, kept
    /// alive by the module protocol (caller is pinned, or owns the node).
    unsafe fn free_next(ptr: *mut Self) -> *mut Self;

    /// Writes the intrusive link.
    ///
    /// # Safety
    ///
    /// The caller must own `ptr` exclusively.
    unsafe fn set_free_next(ptr: *mut Self, next: *mut Self);

    /// Frees the node's allocation.
    ///
    /// # Safety
    ///
    /// The caller must own `ptr` exclusively and the item slot must be
    /// empty (dropped or moved out).
    unsafe fn dealloc(ptr: *mut Self);
}

/// Per-structure free list of dead node skeletons, plus allocation
/// diagnostics. Shared (via `Arc`) between the structure and the deferred
/// closures that return nodes to it.
pub(crate) struct NodeCache<N: Recyclable> {
    /// Treiber-stack head, stored as a bare pointer word so pops can route
    /// it through [`Shield::protect`]. Padded: pushes and pops hammer this
    /// word while the owning structure's own hot words live nearby in the
    /// same arc'd allocation graph.
    head: CachePadded<AtomicUsize>,
    /// Upper bound on the list length (reserved at push time).
    len: AtomicUsize,
    /// Retention bound: a push that would exceed this frees the node.
    cap: usize,
    /// Fresh heap allocations made by the owning structure (diagnostic).
    allocs: AtomicUsize,
    /// Pops served from the cache instead of the allocator (diagnostic).
    reuses: AtomicUsize,
    _marker: std::marker::PhantomData<*mut N>,
}

// SAFETY: the raw node pointers are owned by the cache (list members) and
// only handed out under the module's exclusivity protocol.
unsafe impl<N: Recyclable> Send for NodeCache<N> {}
unsafe impl<N: Recyclable> Sync for NodeCache<N> {}

impl<N: Recyclable> NodeCache<N> {
    /// A cache retaining at most `cap` skeletons (0 disables retention:
    /// every push frees immediately). [`NODE_CACHE_CAP`] is the standard
    /// bound for unstriped structures.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        NodeCache {
            head: CachePadded::new(AtomicUsize::new(0)),
            len: AtomicUsize::new(0),
            cap,
            allocs: AtomicUsize::new(0),
            reuses: AtomicUsize::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// Pops a dead skeleton, transferring exclusive ownership to the caller.
    ///
    /// # Safety
    ///
    /// `guard` must be an active guard of the backend the owning structure
    /// retires through, held for the duration of the call (an unprotected
    /// guard requires exclusive access to the structure).
    pub(crate) unsafe fn pop<G: Shield>(&self, guard: &G) -> Option<*mut N> {
        loop {
            let head = guard.protect::<N>(&self.head, Ordering::Acquire) as *mut N;
            if head.is_null() {
                return None;
            }
            // SAFETY: `head` stays allocated and off-list while protected
            // (pushes, and hence frees, are its retire closure — module
            // docs), so its link is stable until our CAS.
            let next = unsafe { N::free_next(head) };
            if self
                .head
                .compare_exchange_weak(
                    head as usize,
                    next as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.len.fetch_sub(1, Ordering::Relaxed);
                self.reuses.fetch_add(1, Ordering::Relaxed);
                synq_obs::probe!(NodeCacheHits);
                return Some(head);
            }
        }
    }

    /// Donates a dead skeleton (item slot already empty). Frees it instead
    /// if the cache is full.
    ///
    /// # Safety
    ///
    /// The caller must own `ptr` exclusively, and must be running inside a
    /// retire closure (`Shield::defer_retire` keyed on `ptr`'s address, so
    /// the node is unprotected and unreachable) — or hold exclusive access
    /// to the whole structure.
    pub(crate) unsafe fn push(&self, ptr: *mut N) {
        // Reserve a slot first so `len` never undercounts the list.
        if self.len.fetch_add(1, Ordering::Relaxed) >= self.cap {
            self.len.fetch_sub(1, Ordering::Relaxed);
            // SAFETY: exclusive ownership per our contract; freeing here is
            // covered by the same grace period as a push would be.
            unsafe { N::dealloc(ptr) };
            return;
        }
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: we own `ptr` until the CAS publishes it.
            unsafe { N::set_free_next(ptr, head as *mut N) };
            match self.head.compare_exchange_weak(
                head,
                ptr as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Records a fresh heap allocation by the owning structure.
    pub(crate) fn note_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        synq_obs::probe!(NodeCacheMisses);
    }

    /// Total fresh allocations over the structure's lifetime.
    pub(crate) fn allocs(&self) -> usize {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Total allocations avoided by recycling.
    pub(crate) fn reuses(&self) -> usize {
        self.reuses.load(Ordering::Relaxed)
    }
}

impl<N: Recyclable> Drop for NodeCache<N> {
    fn drop(&mut self) {
        // Last reference: the structure and every deferred closure are
        // gone, so nothing can push or pop concurrently.
        let mut p = *self.head.get_mut() as *mut N;
        while !p.is_null() {
            // SAFETY: exclusive access; list members have empty item slots.
            let next = unsafe { N::free_next(p) };
            unsafe { N::dealloc(p) };
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use synq_reclaim::Guard;

    fn unprot() -> Guard {
        // SAFETY: every test here is single-threaded over its own cache.
        unsafe { synq_reclaim::unprotected() }
    }

    // Each test runs on its own thread, so a thread-local keeps the
    // counters independent under the parallel test runner.
    thread_local! {
        static LIVE: Cell<isize> = const { Cell::new(0) };
    }

    fn live() -> isize {
        LIVE.with(Cell::get)
    }

    struct TestNode {
        link: *mut TestNode,
    }

    impl Recyclable for TestNode {
        unsafe fn free_next(ptr: *mut Self) -> *mut Self {
            unsafe { (*ptr).link }
        }
        unsafe fn set_free_next(ptr: *mut Self, next: *mut Self) {
            unsafe { (*ptr).link = next };
        }
        unsafe fn dealloc(ptr: *mut Self) {
            LIVE.with(|c| c.set(c.get() - 1));
            drop(unsafe { Box::from_raw(ptr) });
        }
    }

    fn alloc_node() -> *mut TestNode {
        LIVE.with(|c| c.set(c.get() + 1));
        Box::into_raw(Box::new(TestNode {
            link: std::ptr::null_mut(),
        }))
    }

    #[test]
    fn push_pop_roundtrip_and_counters() {
        let cache: NodeCache<TestNode> = NodeCache::with_capacity(NODE_CACHE_CAP);
        assert!(unsafe { cache.pop(&unprot()) }.is_none());
        let a = alloc_node();
        let b = alloc_node();
        // SAFETY: single-threaded test — exclusivity is trivial.
        unsafe {
            cache.push(a);
            cache.push(b);
        }
        // LIFO order.
        let g = unprot();
        assert_eq!(unsafe { cache.pop(&g) }, Some(b));
        assert_eq!(unsafe { cache.pop(&g) }, Some(a));
        assert!(unsafe { cache.pop(&g) }.is_none());
        assert_eq!(cache.reuses(), 2);
        unsafe {
            TestNode::dealloc(a);
            TestNode::dealloc(b);
        }
        assert_eq!(live(), 0);
    }

    #[test]
    fn overflow_is_freed_not_cached() {
        let cache: NodeCache<TestNode> = NodeCache::with_capacity(NODE_CACHE_CAP);
        for _ in 0..(NODE_CACHE_CAP + 10) {
            // SAFETY: single-threaded test.
            unsafe { cache.push(alloc_node()) };
        }
        // Only the cap survives; the overflow was freed on arrival.
        assert_eq!(live(), NODE_CACHE_CAP as isize);
        drop(cache);
        assert_eq!(live(), 0);
    }

    #[test]
    fn drop_drains_everything() {
        let cache: NodeCache<TestNode> = NodeCache::with_capacity(NODE_CACHE_CAP);
        for _ in 0..5 {
            // SAFETY: single-threaded test.
            unsafe { cache.push(alloc_node()) };
        }
        assert_eq!(live(), 5);
        drop(cache);
        assert_eq!(live(), 0);
    }

    #[test]
    fn custom_capacity_bounds_retention() {
        let cache: NodeCache<TestNode> = NodeCache::with_capacity(3);
        for _ in 0..10 {
            // SAFETY: single-threaded test.
            unsafe { cache.push(alloc_node()) };
        }
        assert_eq!(live(), 3);
        drop(cache);
        assert_eq!(live(), 0);

        let none: NodeCache<TestNode> = NodeCache::with_capacity(0);
        // SAFETY: single-threaded test.
        unsafe { none.push(alloc_node()) };
        assert_eq!(live(), 0);
        assert!(unsafe { none.pop(&unprot()) }.is_none());
    }

    #[test]
    fn head_word_is_padded() {
        assert!(std::mem::align_of::<NodeCache<TestNode>>() >= 128);
        assert!(std::mem::size_of::<NodeCache<TestNode>>() >= 128);
    }
}
