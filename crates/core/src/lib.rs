//! # synq — scalable synchronous queues
//!
//! A from-scratch Rust implementation of the two nonblocking,
//! contention-free synchronous queues of **Scherer, Lea & Scott, "Scalable
//! Synchronous Queues", PPoPP 2006** — the algorithms adopted into Java 6's
//! `java.util.concurrent.SynchronousQueue`.
//!
//! A *synchronous* queue pairs producers and consumers with no buffering:
//! both sides wait for one another, "shake hands", and leave in pairs. The
//! two algorithms are *dual* data structures — the underlying list may hold
//! either data (waiting producers) or, symmetrically, *reservations*
//! (waiting consumers), never both at once:
//!
//! * [`SyncDualQueue`] — the **fair** variant: strict FIFO pairing, built
//!   on an M&S-queue skeleton (paper Listing 5 / Figure 1).
//! * [`SyncDualStack`] — the **unfair** variant: LIFO pairing via
//!   *fulfilling* nodes that annihilate with the reservation beneath them
//!   (paper Listing 6 / Figure 2). Unfairness improves locality by keeping
//!   recently active threads "hot".
//!
//! Both support the full rich interface the paper calls for: blocking
//! `put`/`take`, non-blocking `offer`/`poll`, timed variants with a
//! *patience* interval, and asynchronous cancellation (Java's interrupts)
//! via [`CancelToken`]. All waiting is *local*: a waiter spins briefly on
//! its own node and then parks; unsuccessful follow-ups make no remote
//! memory accesses (the paper's contention-freedom property).
//!
//! The usual entry point is the [`SynchronousQueue`] facade, which selects
//! fair or unfair mode at construction like the Java class:
//!
//! ```
//! use synq::SynchronousQueue;
//! use std::sync::Arc;
//! use std::thread;
//!
//! let q = Arc::new(SynchronousQueue::fair());
//! let q2 = Arc::clone(&q);
//! let consumer = thread::spawn(move || q2.take());
//! q.put(42);
//! assert_eq!(consumer.join().unwrap(), 42);
//! ```
//!
//! Node reclamation uses epoch-based reclamation ([`synq_reclaim`]) plus a
//! per-node reference count so that waiters can *unpin while parked* —
//! a sleeping thread never stalls global memory reclamation.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod channel;
pub mod combiner;
pub mod contention;
pub mod dual_queue;
pub mod dual_stack;
mod node_cache;
pub mod pollable;
pub mod queue;
pub mod striped;
pub mod transferer;

pub use channel::{SyncChannel, TimedSyncChannel};
pub use combiner::{CombinerPermit, CombinerSyncQueue, CombinerSyncStack};
pub use dual_queue::{QueuePermit, SyncDualQueue};
pub use dual_stack::{StackPermit, SyncDualStack};
pub use pollable::{PendingTransfer, PollTransferer, StartTransfer};
pub use queue::SynchronousQueue;
pub use striped::{Striped, StripedLane, StripedPermit, StripedSyncQueue, StripedSyncStack};
pub use synq_primitives::{CancelToken, SpinPolicy};
pub use transferer::{Deadline, TransferOutcome, Transferer};
