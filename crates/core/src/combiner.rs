//! Flat-combining rendezvous: publish your request, let one thread pair
//! everybody (DESIGN.md §4.13).
//!
//! The dual structures ([`SyncDualQueue`](crate::SyncDualQueue)) and the
//! striped lanes ([`crate::striped`]) fight contention by *diffracting*
//! threads across CAS points. Delegation-style combining is the other major
//! answer: every thread publishes its put/take request into a per-thread
//! **publication record** on an intrusive list, and whichever thread wins a
//! single combiner-lock CAS *sweeps* the list, pairing waiting putters with
//! takers in one pass and completing each handoff directly through the
//! record's [`WaitSlot`] claim CAS. Everyone else spins-then-parks on their
//! own cache line. One thread doing all the work sounds like a scalability
//! sin, but under oversubscription (threads ≫ cores) it is exactly right:
//! the combiner is the one thread the scheduler is currently running, and a
//! batch of N handoffs costs one lock acquisition instead of N contended
//! CAS storms against sleeping waiters.
//!
//! # Publication-record state machine
//!
//! Each record carries a request word `req` alongside its `WaitSlot`:
//!
//! ```text
//!            owner CAS                owner store (op resolved)
//!   EMPTY ──────────────▶ (seq<<2)|dir ──────────────▶ EMPTY
//!     │  combiner CAS                 │ owner store (one-shot record)
//!     ▼  (age_limit quiet sweeps)     ▼
//!   DEAD  (graveyard; owner re-enrolls)   RETIRED  (combiner frees)
//! ```
//!
//! Only the owner moves a pending word back to `EMPTY`/`RETIRED`; only the
//! combiner moves `EMPTY` to `DEAD` — the CAS arbitrates aging against a
//! concurrent republish, so the request word is never recycled under a
//! racing writer. The wait/handoff half is entirely the `WaitSlot` protocol
//! the rest of the workspace already uses: the combiner claims a pending
//! request (`try_claim`), reads its direction from the armed item cell,
//! pairs it, and `complete`s/`fulfill`s; leftovers are `unclaim`ed back to
//! `WAITING` so their owners keep waiting for the next sweep.
//!
//! # Combiner election and liveness
//!
//! A publisher (1) arms its slot, (2) makes its record pending with a
//! `SeqCst` CAS, (3) bumps the global `pub_seq`, and (4) attempts the
//! combiner lock **at least once** before waiting. A combiner releases by
//! storing the lock open and then *re-reading* `pub_seq`: if it moved since
//! the pre-sweep snapshot, some publisher may have failed the lock during
//! the sweep, so the combiner re-elects itself (or observes that somebody
//! else already has). In the `SeqCst` total order a publisher whose lock
//! attempt failed ordered its `pub_seq` bump before that failed attempt,
//! which sits before the holder's release and post-release re-check — so
//! every published request is observed by some sweep. Parking is therefore
//! safe with no timeout crutch.
//!
//! # Memory reclamation (or: why there is none)
//!
//! The blocking path caches one record per (thread × structure) and reuses
//! it forever — steady-state transfers are allocation-free and the record's
//! cache line stays hot in its owner's cache. Aged-out records cannot be
//! freed early under *any* deferred-reclamation scheme: a cached owner may
//! return after an arbitrary absence and dereference its pointer long after
//! any grace period, so `DEAD` records move to a lock-guarded graveyard and
//! are freed only when the structure drops (the owner observes `DEAD` and
//! re-enrolls). One-shot records (the poll/async path, where one task may
//! hold many pending permits) end in `RETIRED`, the owner's promise never
//! to touch the record again — the next sweep unlinks and frees them
//! immediately, soundly, because list surgery is serialized by the combiner
//! lock. The `R: Reclaimer` parameter exists for family-signature parity
//! with the other structures and is honestly unused: the combiner performs
//! zero deferred reclamation by construction.

use crate::transferer::{Deadline, TransferOutcome};
use crate::{PendingTransfer, PollTransferer, StartTransfer};
use core::task::{Poll, Waker};
use std::cell::{RefCell, UnsafeCell};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use synq_primitives::wait_slot::{CLAIMED, MATCHED, WAITING};
use synq_primitives::{CachePadded, CancelToken, SpinPolicy, WaitOutcome, WaitSlot};
use synq_reclaim::{Epoch, Reclaimer};

/// `req`: no request published; the record may age.
const EMPTY_REQ: usize = 0;
/// `req`: aged out by a combiner; the owner must re-enroll.
const DEAD: usize = 1;
/// `req`: a one-shot record's owner is done; the next sweep frees it.
const RETIRED: usize = 2;
/// Low request-word bits: the publisher is a producer (item armed).
const DIR_PUT: usize = 1;
/// Low request-word bits: the publisher is a consumer.
const DIR_TAKE: usize = 2;
/// Quiet (request-free) sweeps before a record is aged out of the list.
const DEFAULT_AGE_LIMIT: u32 = 64;
/// Per-thread publication-record cache entries kept across all combiner
/// structures; evicted entries simply age out of their lists.
const TL_CACHE_CAP: usize = 32;

/// One thread's publication record: the request word, the combiner's aging
/// counter, the intrusive link, and the wait/handoff slot. Padded to its
/// own cache-line pair so a spinning owner never false-shares with its
/// neighbors on the list.
#[repr(align(128))]
struct Record<T> {
    /// Request word (`EMPTY_REQ`/`DEAD`/`RETIRED` or `(seq << 2) | dir`).
    /// All accesses are `SeqCst`: the word participates in the combiner
    /// election's total-order argument (module docs).
    req: AtomicUsize,
    /// Consecutive sweeps that found `req == EMPTY_REQ`. Touched only by
    /// the lock-holding combiner.
    idle: AtomicU32,
    /// Next record in the intrusive list. Written once before publication;
    /// interior rewrites only by the lock-holding combiner.
    next: AtomicPtr<Record<T>>,
    /// The wait/handoff half — the same four-state protocol every other
    /// structure uses.
    slot: WaitSlot<T>,
}

impl<T> Record<T> {
    /// A fresh record, slot armed for `item` and request word already
    /// pending (fresh records become visible atomically via the list push).
    fn boxed(item: Option<T>, word: usize) -> Box<Self> {
        let slot = match item {
            Some(v) => WaitSlot::with_item(v),
            None => WaitSlot::new(),
        };
        Box::new(Record {
            req: AtomicUsize::new(word),
            idle: AtomicU32::new(0),
            next: AtomicPtr::new(ptr::null_mut()),
            slot,
        })
    }
}

/// Lock-guarded sweep workspace, reused across sweeps to keep the combiner
/// allocation-free in steady state.
struct Scratch<T> {
    /// Claimed producer requests, `(seq, record)`.
    putters: Vec<(usize, *mut Record<T>)>,
    /// Claimed consumer requests, `(seq, record)`.
    takers: Vec<(usize, *mut Record<T>)>,
}

std::thread_local! {
    /// This thread's cached publication records: `(structure id, record)`.
    /// Records are only ever dereferenced after matching the structure id,
    /// and ids are process-unique, so entries for dropped structures are
    /// dead weight, never dangling derefs.
    static TL_RECORDS: RefCell<Vec<(u64, *mut ())>> = const { RefCell::new(Vec::new()) };
}

/// Process-unique structure ids for the thread-local record cache.
static NEXT_CORE_ID: AtomicU64 = AtomicU64::new(1);

/// The combining engine shared by [`CombinerSyncQueue`] and
/// [`CombinerSyncStack`]; `lifo` selects the pairing order inside a sweep.
struct CombinerCore<T> {
    /// The combiner lock: 0 open, 1 held. `SeqCst` both ways (election
    /// argument in the module docs).
    lock: CachePadded<AtomicUsize>,
    /// Publication counter: bumped after every publish; the release
    /// re-check compares it against the pre-sweep snapshot.
    pub_seq: CachePadded<AtomicU64>,
    /// Head of the intrusive publication list (push-only for publishers;
    /// unlinks only under the lock).
    head: CachePadded<AtomicPtr<Record<T>>>,
    /// Request sequence numbers (FIFO/LIFO order within a sweep).
    seq: AtomicU64,
    /// Sweep workspace; touched only under the lock.
    scratch: UnsafeCell<Scratch<T>>,
    /// Aged-out records, kept until `Drop` (module docs explain why they
    /// cannot be freed earlier). Touched only under the lock.
    graveyard: UnsafeCell<Vec<*mut Record<T>>>,
    /// Always-compiled sweep counter (the bench self-checks read these
    /// without `--features stats`).
    sweeps: AtomicU64,
    /// Always-compiled claimed-requests counter.
    swept_requests: AtomicU64,
    /// Process-unique id keying the thread-local record cache.
    id: u64,
    /// Pair newest-first (stack) instead of oldest-first (queue).
    lifo: bool,
    /// Wait strategy for unpaired publishers.
    spin: SpinPolicy,
    /// Quiet sweeps before a record ages out.
    age_limit: u32,
}

// SAFETY: the UnsafeCells (scratch, graveyard) and all interior list links
// are accessed only while holding the combiner lock; records move between
// threads only through the WaitSlot claim protocol and the SeqCst request
// word. T: Send suffices because only ownership of T crosses threads.
unsafe impl<T: Send> Send for CombinerCore<T> {}
unsafe impl<T: Send> Sync for CombinerCore<T> {}

impl<T: Send> CombinerCore<T> {
    fn new(lifo: bool, spin: SpinPolicy, age_limit: u32) -> Self {
        CombinerCore {
            lock: CachePadded::new(AtomicUsize::new(0)),
            pub_seq: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            seq: AtomicU64::new(1),
            scratch: UnsafeCell::new(Scratch {
                putters: Vec::new(),
                takers: Vec::new(),
            }),
            graveyard: UnsafeCell::new(Vec::new()),
            sweeps: AtomicU64::new(0),
            swept_requests: AtomicU64::new(0),
            id: NEXT_CORE_ID.fetch_add(1, Ordering::Relaxed),
            lifo,
            spin,
            age_limit: age_limit.max(1),
        }
    }

    /// A fresh request word: `(seq << 2) | dir`, skipping the (wrap-only)
    /// collisions with the three control values.
    fn next_req_word(&self, is_put: bool) -> usize {
        let dir = if is_put { DIR_PUT } else { DIR_TAKE };
        loop {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed) as usize;
            let word = (seq << 2) | dir;
            if word > RETIRED {
                return word;
            }
        }
    }

    fn try_lock(&self) -> bool {
        self.lock
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// This thread's cached record for this structure, if any.
    fn cached_record(&self) -> Option<*mut Record<T>> {
        TL_RECORDS.with(|c| {
            c.borrow()
                .iter()
                .find(|&&(id, _)| id == self.id)
                .map(|&(_, p)| p.cast::<Record<T>>())
        })
    }

    fn remember_cached(&self, rec: *mut Record<T>) {
        TL_RECORDS.with(|c| {
            let mut v = c.borrow_mut();
            if v.len() >= TL_CACHE_CAP {
                // Evicting merely forgets the pointer; the record ages out
                // of its structure's list on its own.
                v.remove(0);
            }
            v.push((self.id, rec.cast::<()>()));
        });
    }

    fn forget_cached(&self, rec: *mut Record<T>) {
        let erased = rec.cast::<()>();
        TL_RECORDS.with(|c| {
            c.borrow_mut()
                .retain(|&(id, p)| !(id == self.id && p == erased))
        });
    }

    /// Pushes a fresh, already-pending record at the head of the list.
    fn enroll(&self, rec: Box<Record<T>>) -> *mut Record<T> {
        let ptr = Box::into_raw(rec);
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: we still exclusively own the unpublished record. A
            // stale `head` value is fine: if the CAS succeeds the value
            // *is* the current head, whatever record now sits there.
            unsafe { (*ptr).next.store(head, Ordering::Relaxed) };
            match self
                .head
                .compare_exchange_weak(head, ptr, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        synq_obs::probe!(CombinerRecordEnrolls);
        ptr
    }

    /// Unlinks `cur` (whose predecessor in this walk is `prev`, possibly
    /// null for the head position). Returns false when `cur` was at the
    /// head but lost the CAS to a concurrent enroll — a later sweep will
    /// find it interior, with a stable predecessor. Caller holds the lock.
    fn unlink(&self, prev: *mut Record<T>, cur: *mut Record<T>, next: *mut Record<T>) -> bool {
        if prev.is_null() {
            self.head
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        } else {
            // SAFETY: interior links are rewritten only by the lock holder,
            // and `prev` is still linked (this walk retained it).
            unsafe { (*prev).next.store(next, Ordering::Release) };
            true
        }
    }

    /// One full pass over the publication list: age the quiet, free the
    /// retired, claim the pending, pair putters with takers, hand back the
    /// leftovers. Caller holds the combiner lock.
    fn sweep(&self) {
        // SAFETY: the combiner lock serializes sweeps; scratch is touched
        // only here.
        let scratch = unsafe { &mut *self.scratch.get() };
        scratch.putters.clear();
        scratch.takers.clear();

        let mut prev: *mut Record<T> = ptr::null_mut();
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: linked records stay allocated until this lock holder
            // frees them (RETIRED) or the structure drops (list+graveyard).
            let rec = unsafe { &*cur };
            let next = rec.next.load(Ordering::Acquire);
            match rec.req.load(Ordering::SeqCst) {
                EMPTY_REQ => {
                    let quiet = rec.idle.load(Ordering::Relaxed) + 1;
                    rec.idle.store(quiet, Ordering::Relaxed);
                    // The CAS arbitrates against a concurrent republish: if
                    // the owner wins, the record is pending and stays.
                    if quiet >= self.age_limit
                        && rec
                            .req
                            .compare_exchange(EMPTY_REQ, DEAD, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        && self.unlink(prev, cur, next)
                    {
                        synq_obs::probe!(CombinerRecordAged);
                        // SAFETY: lock held; the record is now unreachable
                        // from the list and parked in the graveyard.
                        unsafe { (*self.graveyard.get()).push(cur) };
                        cur = next;
                        continue;
                    }
                }
                DEAD => {
                    // Deferred unlink: the aging sweep lost the head CAS.
                    if self.unlink(prev, cur, next) {
                        synq_obs::probe!(CombinerRecordAged);
                        // SAFETY: as above.
                        unsafe { (*self.graveyard.get()).push(cur) };
                        cur = next;
                        continue;
                    }
                }
                RETIRED => {
                    // One-shot record whose owner is done. Freeing under the
                    // lock is sound: only lock holders traverse the list,
                    // and the RETIRED store was the owner's last access.
                    if self.unlink(prev, cur, next) {
                        drop(unsafe { Box::from_raw(cur) });
                        cur = next;
                        continue;
                    }
                }
                word => {
                    rec.idle.store(0, Ordering::Relaxed);
                    if rec.slot.try_claim() {
                        // Direction comes from the *slot*, not the request
                        // word: the owner may have cancelled and republished
                        // since we loaded `word`, and the claim's
                        // exclusivity makes the armed-item check accurate
                        // for whichever request we actually caught.
                        let entry = (word >> 2, cur);
                        if rec.slot.has_item() {
                            scratch.putters.push(entry);
                        } else {
                            scratch.takers.push(entry);
                        }
                    }
                }
            }
            prev = cur;
            cur = next;
        }

        // Pair in arrival order (queue) or newest-first (stack). The
        // sequence makes the batch FIFO/LIFO *within* a sweep; across
        // sweeps fairness is per-batch (DESIGN §4.13).
        scratch.putters.sort_unstable_by_key(|&(seq, _)| seq);
        scratch.takers.sort_unstable_by_key(|&(seq, _)| seq);
        if self.lifo {
            scratch.putters.reverse();
            scratch.takers.reverse();
        }
        let pairs = scratch.putters.len().min(scratch.takers.len());
        for i in 0..pairs {
            let p = scratch.putters[i].1;
            let t = scratch.takers[i].1;
            // SAFETY: we hold both claims; the putter's cell is filled
            // (that is what bucketed it) and the taker's is empty.
            unsafe {
                let v = (*p).slot.take_item();
                (*p).slot.complete();
                (*t).slot.fulfill(v);
            }
        }
        // Hand unpaired claims back. Their owners' mailboxes are untouched,
        // so a later sweep's `complete` still wakes a parked waiter.
        for &(_, rec) in scratch.putters[pairs..]
            .iter()
            .chain(&scratch.takers[pairs..])
        {
            // SAFETY: our claim, uncompleted, cell exactly as claimed.
            unsafe { (*rec).slot.unclaim() };
        }

        let claimed = (scratch.putters.len() + scratch.takers.len()) as u64;
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        self.swept_requests.fetch_add(claimed, Ordering::Relaxed);
        synq_obs::probe!(CombinerSweeps);
        if claimed > 0 {
            synq_obs::probe!(CombinerRequests, claimed);
        }
        scratch.putters.clear();
        scratch.takers.clear();
    }

    /// Sweeps and releases the lock, re-electing while publications landed
    /// mid-sweep (the liveness half of the election protocol — module
    /// docs). Caller holds the lock.
    fn combine(&self) {
        loop {
            let snap = self.pub_seq.load(Ordering::SeqCst);
            self.sweep();
            self.lock.store(0, Ordering::SeqCst);
            if self.pub_seq.load(Ordering::SeqCst) == snap {
                return;
            }
            // New publications during the sweep: their owners may have seen
            // the lock held and gone to wait. Re-elect ourselves — or leave
            // it to whoever beat us to the lock.
            if !self.try_lock() {
                return;
            }
        }
    }

    /// The resolved-handoff epilogue: a producer's item went to its taker;
    /// a consumer collects the deposited item.
    fn matched_outcome(&self, rec: &Record<T>, is_put: bool) -> TransferOutcome<T> {
        if is_put {
            TransferOutcome::Transferred(None)
        } else {
            // SAFETY: the terminal MATCHED state (Acquire-read by our
            // caller) licenses the item read; the combiner deposited it.
            TransferOutcome::Transferred(Some(unsafe { rec.slot.take_item() }))
        }
    }

    /// After *winning* the cancel CAS: no fulfiller touched the cell, so a
    /// producer's armed item is still ours to hand back.
    fn reclaim_after_cancel(&self, rec: &Record<T>, is_put: bool) -> Option<T> {
        // SAFETY: the won cancel grants cell exclusivity; producers armed
        // the cell at publish time.
        is_put.then(|| unsafe { rec.slot.take_item() })
    }

    /// The blocking transfer: publish on the cached (or a fresh) record,
    /// attempt to combine, then wait on the slot.
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        let is_put = item.is_some();
        let mut item = item;

        // Publish. The loop only repeats when a cached record turns out to
        // have been aged out (DEAD) — at most twice per call in practice.
        let rec: *mut Record<T> = loop {
            let Some(ptr) = self.cached_record() else {
                let word = self.next_req_word(is_put);
                let fresh = Record::boxed(item.take(), word);
                let ptr = self.enroll(fresh);
                self.remember_cached(ptr);
                break ptr;
            };
            // SAFETY: a cached record stays allocated while the structure
            // lives (aged records go to the graveyard, freed only at Drop)
            // and the structure is alive for the duration of `&self`.
            let rec = unsafe { &*ptr };
            if rec.req.load(Ordering::SeqCst) == DEAD {
                self.forget_cached(ptr);
                continue;
            }
            // SAFETY: we own this record between ops; its slot is terminal
            // (or fresh) and its request word is EMPTY. Arm the cell
            // *before* reopening so a claim landing the instant the slot
            // reopens sees a fully armed request.
            unsafe {
                rec.slot.recycle();
                if let Some(v) = item.take() {
                    rec.slot.put_item(v);
                }
                rec.slot.reopen();
            }
            let word = self.next_req_word(is_put);
            match rec
                .req
                .compare_exchange(EMPTY_REQ, word, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    synq_obs::probe!(CombinerRecordRecycles);
                    break ptr;
                }
                Err(_) => {
                    // Aged out between the load and the CAS. The record is
                    // DEAD and we abandon it — but a straggling sweep that
                    // loaded our *previous* request word may have claimed
                    // the reopened slot first. Sweeps are serialized and
                    // the aging sweep postdates every sweep that could
                    // still hold that stale word, so one check decides:
                    self.forget_cached(ptr);
                    if rec.slot.state() == WAITING {
                        // No straggler; take the item back and re-enroll.
                        if is_put {
                            // SAFETY: slot reopened but never published as
                            // pending; no claim can land anymore.
                            item = Some(unsafe { rec.slot.reclaim_item() });
                        }
                        continue;
                    }
                    // A straggler completed the rendezvous — report it. The
                    // record stays DEAD (graveyard-bound); don't touch req.
                    let slot_state = rec.slot.await_completion();
                    debug_assert_eq!(slot_state, MATCHED);
                    return self.matched_outcome(rec, is_put);
                }
            }
        };
        self.pub_seq.fetch_add(1, Ordering::SeqCst);

        // A publisher must attempt the lock at least once before waiting.
        let combined = if self.try_lock() {
            self.combine();
            true
        } else {
            synq_obs::probe!(CombinerLockFails);
            false
        };

        // SAFETY: pending/cached records stay allocated (see above).
        let rec = unsafe { &*rec };
        let out = if rec.slot.state() == MATCHED {
            if combined {
                synq_obs::probe!(CombinerSelfService);
            } else {
                synq_obs::probe!(CombinerDelegated);
            }
            self.matched_outcome(rec, is_put)
        } else {
            match rec.slot.await_outcome(deadline, token, &self.spin) {
                WaitOutcome::Matched(_) => {
                    synq_obs::probe!(CombinerDelegated);
                    self.matched_outcome(rec, is_put)
                }
                WaitOutcome::TimedOut => {
                    TransferOutcome::Timeout(self.reclaim_after_cancel(rec, is_put))
                }
                WaitOutcome::Cancelled => {
                    TransferOutcome::Cancelled(self.reclaim_after_cancel(rec, is_put))
                }
            }
        };
        // Hand the record back to the ageable pool. A plain store suffices:
        // while pending, only the owner writes this word.
        rec.req.store(EMPTY_REQ, Ordering::SeqCst);
        out
    }

    /// Poll-mode phase one: publish a *one-shot* record (a task may hold
    /// many pending permits, so the per-thread cache does not apply),
    /// combine once, and either complete or hand out a permit.
    fn start_poll(self: &Arc<Self>, item: Option<T>) -> StartTransfer<T, CombinerPermit<T>> {
        let is_put = item.is_some();
        let word = self.next_req_word(is_put);
        let ptr = self.enroll(Record::boxed(item, word));
        self.pub_seq.fetch_add(1, Ordering::SeqCst);
        if self.try_lock() {
            self.combine();
        } else {
            synq_obs::probe!(CombinerLockFails);
        }
        // SAFETY: a record with a pending request word is never freed
        // (sweeps free only RETIRED ones).
        let rec = unsafe { &*ptr };
        if rec.slot.state() == MATCHED {
            synq_obs::probe!(CombinerSelfService);
            let out = self.matched_outcome(rec, is_put);
            // The RETIRED store is our promise never to touch the record
            // again; the next sweep unlinks and frees it.
            rec.req.store(RETIRED, Ordering::SeqCst);
            StartTransfer::Complete(out)
        } else {
            StartTransfer::Pending(CombinerPermit {
                core: Arc::clone(self),
                rec: ptr,
                is_put,
                done: false,
            })
        }
    }

    /// Records currently linked in the publication list (waiters, idle
    /// cached records, not-yet-reaped retirees). Diagnostic only; takes the
    /// combiner lock to keep the walk sound against concurrent frees.
    fn linked_records(&self) -> usize {
        while !self.try_lock() {
            std::hint::spin_loop();
        }
        let mut n = 0usize;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            n += 1;
            // SAFETY: lock held; linked records stay allocated.
            cur = unsafe { (*cur).next.load(Ordering::Acquire) };
        }
        // Release through the full protocol: publishers that failed the
        // lock while we held it are owed a sweep (or a pub_seq re-check).
        self.combine();
        n
    }
}

impl<T> Drop for CombinerCore<T> {
    fn drop(&mut self) {
        // Exclusive access: blocked callers borrow the structure and
        // permits hold an Arc to this core, so none can exist here. Every
        // record is owned by the list or the graveyard (never both: a
        // record enters the graveyard only as it is unlinked).
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; reading next before the free.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
        for rec in self.graveyard.get_mut().drain(..) {
            // SAFETY: graveyard records were unlinked under the lock and
            // abandoned by their owners (they observed DEAD).
            drop(unsafe { Box::from_raw(rec) });
        }
    }
}

/// A published, not-yet-resolved poll-mode transfer on a combiner
/// structure. Dropping it cancels the request and settles any in-slot item
/// exactly once (the PR 3 drop-conservation contract).
pub struct CombinerPermit<T: Send> {
    core: Arc<CombinerCore<T>>,
    rec: *mut Record<T>,
    is_put: bool,
    done: bool,
}

// SAFETY: the permit owns its one-shot record's request (records move
// between threads only via the WaitSlot protocol), and the Arc keeps the
// structure — and therefore the record's allocation — alive.
unsafe impl<T: Send> Send for CombinerPermit<T> {}

impl<T: Send> std::fmt::Debug for CombinerPermit<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("CombinerPermit { .. }")
    }
}

impl<T: Send> CombinerPermit<T> {
    /// After winning the cancel CAS: a producer's armed item comes back.
    fn take_back(&self, slot: &WaitSlot<T>) -> Option<T> {
        // SAFETY: the won cancel grants cell exclusivity.
        self.is_put.then(|| unsafe { slot.take_item() })
    }
}

impl<T: Send> PendingTransfer<T> for CombinerPermit<T> {
    fn poll_transfer(
        &mut self,
        waker: &Waker,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> Poll<TransferOutcome<T>> {
        assert!(!self.done, "CombinerPermit polled after completion");
        // SAFETY: the pending request word keeps the record alive until our
        // terminal RETIRED store below (or in Drop).
        let slot = unsafe { &(*self.rec).slot };
        let mut polled = slot.poll_outcome(waker, deadline, token);
        let mut helped = false;
        if polled.is_pending() {
            // Help combine: on a single-threaded executor nobody else will.
            if self.core.try_lock() {
                self.core.combine();
                helped = true;
                polled = slot.poll_outcome(waker, deadline, token);
            } else {
                synq_obs::probe!(CombinerLockFails);
            }
        }
        match polled {
            Poll::Pending => Poll::Pending,
            Poll::Ready(out) => {
                let result = match out {
                    WaitOutcome::Matched(_) => {
                        if helped {
                            synq_obs::probe!(CombinerSelfService);
                        } else {
                            synq_obs::probe!(CombinerDelegated);
                        }
                        self.core
                            .matched_outcome(unsafe { &*self.rec }, self.is_put)
                    }
                    WaitOutcome::TimedOut => TransferOutcome::Timeout(self.take_back(slot)),
                    WaitOutcome::Cancelled => TransferOutcome::Cancelled(self.take_back(slot)),
                };
                self.done = true;
                // Promise never to touch the record again; the next sweep
                // unlinks and frees it.
                unsafe { (*self.rec).req.store(RETIRED, Ordering::SeqCst) };
                Poll::Ready(result)
            }
        }
    }
}

impl<T: Send> Drop for CombinerPermit<T> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // SAFETY: pending request word keeps the record alive until the
        // RETIRED store below.
        let slot = unsafe { &(*self.rec).slot };
        loop {
            if slot.try_cancel() {
                // Cancel won: settle a producer's armed item immediately
                // (drop-conservation; nobody else will ever read the cell).
                if self.is_put {
                    // SAFETY: won cancel grants cell exclusivity.
                    drop(unsafe { slot.take_item() });
                }
                break;
            }
            match slot.state() {
                // A sweep holds the claim; completion or unclaim is
                // imminent (no user code runs inside a sweep).
                CLAIMED => std::thread::yield_now(),
                // Unclaimed again — retry the cancel.
                WAITING => std::hint::spin_loop(),
                // Matched: the handoff completed while we were dropping. A
                // producer's item went to its taker; settle a consumer's
                // deposited item here.
                _ => {
                    if !self.is_put {
                        // SAFETY: terminal MATCHED licenses the item read.
                        drop(unsafe { slot.take_item() });
                    }
                    break;
                }
            }
        }
        unsafe { (*self.rec).req.store(RETIRED, Ordering::SeqCst) };
    }
}

/// Declares one public combiner structure (queue or stack) with the shared
/// constructor family, diagnostics, and trait impls.
macro_rules! combiner_structure {
    (
        $(#[$doc:meta])*
        $name:ident, lifo: $lifo:expr, ctor_doc: $ctor:literal
    ) => {
        $(#[$doc])*
        pub struct $name<T: Send, R: Reclaimer = Epoch> {
            core: Arc<CombinerCore<T>>,
            /// Honestly unused: combining performs no deferred reclamation
            /// (module docs). Kept so the family signature matches the
            /// other structures and generic code can instantiate any
            /// backend.
            _reclaimer: PhantomData<fn() -> R>,
        }

        impl<T: Send> $name<T> {
            #[doc = concat!("A new ", $ctor, " with the default (epoch) reclaimer marker and adaptive spinning.")]
            ///
            /// ```
            #[doc = concat!("use synq::", stringify!($name), ";")]
            /// use std::sync::Arc;
            ///
            #[doc = concat!("let q: Arc<", stringify!($name), "<u32>> = Arc::new(", stringify!($name), "::new());")]
            /// let q2 = Arc::clone(&q);
            /// let t = std::thread::spawn(move || q2.take());
            /// q.put(7);
            /// assert_eq!(t.join().unwrap(), 7);
            /// use synq::SyncChannel; // put/take come from the channel trait
            /// ```
            pub fn new() -> Self {
                Self::new_in()
            }

            /// As [`Self::new`] with an explicit wait strategy (ablations).
            pub fn with_spin(spin: SpinPolicy) -> Self {
                Self::with_spin_in(spin)
            }

            /// As [`Self::with_spin`] with an explicit record age limit:
            /// the number of consecutive request-free sweeps after which a
            /// cached publication record is unlinked (its owner re-enrolls
            /// on its next call). Clamped to at least 1.
            pub fn with_config(spin: SpinPolicy, age_limit: u32) -> Self {
                Self::with_config_in(spin, age_limit)
            }
        }

        impl<T: Send, R: Reclaimer> $name<T, R> {
            #[doc = concat!("A new ", $ctor, " under reclaimer marker `R`.")]
            ///
            /// The marker is signature-compatibility only — see the type's
            /// field docs — so every backend behaves identically:
            ///
            /// ```
            #[doc = concat!("use synq::", stringify!($name), ";")]
            /// use synq_reclaim::Hazard;
            /// use std::sync::Arc;
            ///
            #[doc = concat!("let q: Arc<", stringify!($name), "<u32, Hazard>> = Arc::new(", stringify!($name), "::new_in());")]
            /// let q2 = Arc::clone(&q);
            /// let t = std::thread::spawn(move || q2.take());
            /// q.put(9);
            /// assert_eq!(t.join().unwrap(), 9);
            /// use synq::SyncChannel;
            /// ```
            pub fn new_in() -> Self {
                Self::with_spin_in(SpinPolicy::adaptive())
            }

            /// As [`Self::new_in`] with an explicit wait strategy.
            pub fn with_spin_in(spin: SpinPolicy) -> Self {
                Self::with_config_in(spin, DEFAULT_AGE_LIMIT)
            }

            /// As [`Self::with_config`] under reclaimer marker `R`.
            pub fn with_config_in(spin: SpinPolicy, age_limit: u32) -> Self {
                $name {
                    core: Arc::new(CombinerCore::new($lifo, spin, age_limit)),
                    _reclaimer: PhantomData,
                }
            }

            /// Publication records currently linked (waiters, idle cached
            /// records, not-yet-reaped retirees). Diagnostic only; briefly
            /// takes the combiner lock.
            pub fn linked_records(&self) -> usize {
                self.core.linked_records()
            }

            /// Total combiner sweeps so far (always compiled, unlike the
            /// `combiner.*` probes).
            pub fn sweeps(&self) -> u64 {
                self.core.sweeps.load(Ordering::Relaxed)
            }

            /// Total pending requests claimed by sweeps so far;
            /// `swept_requests() / sweeps()` is the mean combining batch.
            pub fn swept_requests(&self) -> u64 {
                self.core.swept_requests.load(Ordering::Relaxed)
            }
        }

        impl<T: Send> Default for $name<T> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<T: Send, R: Reclaimer> std::fmt::Debug for $name<T, R> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("reclaimer", &R::NAME)
                    .finish_non_exhaustive()
            }
        }

        impl<T: Send, R: Reclaimer> crate::Transferer<T> for $name<T, R> {
            fn transfer(
                &self,
                item: Option<T>,
                deadline: Deadline,
                token: Option<&CancelToken>,
            ) -> TransferOutcome<T> {
                self.core.transfer(item, deadline, token)
            }
        }

        impl<T: Send, R: Reclaimer> PollTransferer<T> for $name<T, R> {
            type Permit = CombinerPermit<T>;

            fn start_transfer(this: &Arc<Self>, item: Option<T>) -> StartTransfer<T, Self::Permit> {
                this.core.start_poll(item)
            }
        }
    };
}

combiner_structure! {
    /// The **fair** flat-combining synchronous queue: requests published to
    /// per-thread records, batch-paired oldest-first by whichever thread
    /// holds the combiner lock (module docs; DESIGN.md §4.13).
    ///
    /// Strongest under oversubscription (threads ≫ cores): the running
    /// thread combines on behalf of the sleeping ones, so a batch of N
    /// handoffs costs one lock acquisition instead of N contended wakeup
    /// chains. Fairness is FIFO *within a sweep batch* — weaker than
    /// [`SyncDualQueue`](crate::SyncDualQueue)'s global FIFO, comparable to
    /// the striped variants' per-lane FIFO.
    CombinerSyncQueue, lifo: false, ctor_doc: "combining queue (FIFO pairing within each sweep)"
}

combiner_structure! {
    /// The **unfair** flat-combining synchronous stack: as
    /// [`CombinerSyncQueue`] but pairing newest-first within each sweep,
    /// keeping recently active threads hot (the dual-stack rationale).
    CombinerSyncStack, lifo: true, ctor_doc: "combining stack (LIFO pairing within each sweep)"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{SyncChannel, TimedSyncChannel};
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;
    use synq_reclaim::Hazard;

    #[test]
    fn constructs_and_reports_debug_for_both_backends() {
        let q: CombinerSyncQueue<u8> = CombinerSyncQueue::new();
        assert!(format!("{q:?}").contains("epoch"));
        let s: CombinerSyncStack<u8, Hazard> = CombinerSyncStack::new_in();
        assert!(format!("{s:?}").contains("hazard"));
    }

    #[test]
    fn offer_poll_fail_fast_on_empty() {
        let q: CombinerSyncQueue<u32> = CombinerSyncQueue::new();
        assert_eq!(q.poll(), None);
        assert_eq!(q.offer(3), Err(3));
        let s: CombinerSyncStack<u32> = CombinerSyncStack::new();
        assert_eq!(s.poll(), None);
        assert_eq!(s.offer(4), Err(4));
    }

    #[test]
    fn blocking_pair_roundtrip_queue_and_stack() {
        let q: Arc<CombinerSyncQueue<u64>> = Arc::new(CombinerSyncQueue::new());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.take());
        q.put(41);
        assert_eq!(t.join().unwrap(), 41);

        let s: Arc<CombinerSyncStack<u64>> = Arc::new(CombinerSyncStack::new());
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || s2.put(42));
        assert_eq!(s.take(), 42);
        t.join().unwrap();
    }

    #[test]
    fn offer_finds_a_waiting_taker() {
        let q: Arc<CombinerSyncQueue<u32>> = Arc::new(CombinerSyncQueue::new());
        let q2 = Arc::clone(&q);
        let taker = std::thread::spawn(move || q2.take());
        // Wait until the taker's record is published and parked.
        while q.linked_records() == 0 {
            std::thread::yield_now();
        }
        let mut v = 5;
        loop {
            match q.offer(v) {
                Ok(()) => break,
                Err(back) => {
                    v = back;
                    std::thread::yield_now();
                }
            }
        }
        assert_eq!(taker.join().unwrap(), 5);
    }

    #[test]
    fn timed_expiry_returns_item_and_none() {
        let q: CombinerSyncQueue<String> = CombinerSyncQueue::new();
        assert_eq!(
            q.offer_timeout("v".into(), Duration::from_millis(5)),
            Err("v".to_string())
        );
        assert_eq!(q.poll_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn cancellation_token_interrupts_a_waiter() {
        let q: Arc<CombinerSyncQueue<u32>> = Arc::new(CombinerSyncQueue::new());
        let token = Arc::new(CancelToken::new());
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.take_with(Deadline::Never, Some(&token)));
        std::thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(None) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn sweep_pairs_fifo_for_queue_lifo_for_stack() {
        // Two one-shot producer records published without a taker, then a
        // taker whose own sweep pairs the batch: the queue hands out the
        // oldest publication, the stack the newest — deterministically,
        // on one thread.
        let q: Arc<CombinerSyncQueue<u32>> = Arc::new(CombinerSyncQueue::new());
        let StartTransfer::Pending(_p1) = CombinerSyncQueue::start_transfer(&q, Some(1)) else {
            panic!("no taker yet: first producer must pend");
        };
        let StartTransfer::Pending(_p2) = CombinerSyncQueue::start_transfer(&q, Some(2)) else {
            panic!("no taker yet: second producer must pend");
        };
        assert_eq!(q.poll(), Some(1), "queue pairs oldest-first");
        assert_eq!(q.poll(), Some(2));

        let s: Arc<CombinerSyncStack<u32>> = Arc::new(CombinerSyncStack::new());
        let StartTransfer::Pending(_p1) = CombinerSyncStack::start_transfer(&s, Some(1)) else {
            panic!("first producer must pend");
        };
        let StartTransfer::Pending(_p2) = CombinerSyncStack::start_transfer(&s, Some(2)) else {
            panic!("second producer must pend");
        };
        assert_eq!(s.poll(), Some(2), "stack pairs newest-first");
        assert_eq!(s.poll(), Some(1));
    }

    #[test]
    fn dropping_pending_permit_cancels_and_record_is_reaped() {
        let q: Arc<CombinerSyncQueue<u32>> = Arc::new(CombinerSyncQueue::new());
        let StartTransfer::Pending(permit) = CombinerSyncQueue::start_transfer(&q, None) else {
            panic!("expected a pending reservation");
        };
        assert!(q.linked_records() >= 1);
        drop(permit);
        // The reservation is cancelled: an offer finds nobody (its own
        // sweep also unlinks and frees the retired one-shot record).
        assert_eq!(q.offer(1), Err(1));
        // Only this thread's cached blocking record can remain.
        assert!(q.linked_records() <= 1);
    }

    #[test]
    fn dropping_pending_producer_permit_settles_item() {
        let payload = Arc::new(());
        let q: Arc<CombinerSyncQueue<Arc<()>>> = Arc::new(CombinerSyncQueue::new());
        let StartTransfer::Pending(permit) =
            CombinerSyncQueue::start_transfer(&q, Some(Arc::clone(&payload)))
        else {
            panic!("expected a pending publication");
        };
        drop(permit);
        assert_eq!(
            Arc::strong_count(&payload),
            1,
            "dropping a pending send settles its item immediately"
        );
    }

    #[test]
    fn quiet_records_age_out_of_the_list() {
        let q: Arc<CombinerSyncQueue<u32>> =
            Arc::new(CombinerSyncQueue::with_config(SpinPolicy::adaptive(), 2));
        // A worker leaves its cached record behind.
        {
            let q2 = Arc::clone(&q);
            std::thread::spawn(move || assert_eq!(q2.poll(), None))
                .join()
                .unwrap();
        }
        assert!(q.linked_records() >= 1);
        // Each poll sweeps; after the age limit of quiet sweeps the
        // worker's record is gone and only this thread's remains.
        for _ in 0..8 {
            assert_eq!(q.poll(), None);
        }
        assert_eq!(q.linked_records(), 1);
    }

    #[test]
    fn always_on_counters_track_sweeps_and_batches() {
        let q: Arc<CombinerSyncQueue<u64>> = Arc::new(CombinerSyncQueue::new());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            for i in 0..50 {
                q2.put(i);
            }
        });
        for _ in 0..50 {
            let _ = q.take();
        }
        t.join().unwrap();
        assert!(q.sweeps() > 0, "transfers must have swept");
        assert!(
            q.swept_requests() >= q.sweeps(),
            "every completed pair implies claimed requests"
        );
    }

    #[test]
    fn stress_contended_pairs_conserve_values() {
        let q: Arc<CombinerSyncQueue<u64>> = Arc::new(CombinerSyncQueue::new());
        let pairs = 4;
        let per = 500;
        let sum = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..pairs {
            let q2 = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q2.put((p * per + i) as u64);
                }
            }));
            let q2 = Arc::clone(&q);
            let sum2 = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                for _ in 0..per {
                    sum2.fetch_add(q2.take() as usize, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = (pairs * per) as usize;
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn stress_mixed_blocking_and_poll_mode() {
        // Blocking putters against poll-mode (permit) takers, interleaved.
        let q: Arc<CombinerSyncQueue<u64>> = Arc::new(CombinerSyncQueue::new());
        let q2 = Arc::clone(&q);
        let n = 200u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                q2.put(i);
            }
        });
        let mut got = 0u64;
        let waker = Waker::noop();
        let mut pending: Vec<CombinerPermit<u64>> = Vec::new();
        while got < n {
            match CombinerSyncQueue::start_transfer(&q, None) {
                StartTransfer::Complete(TransferOutcome::Transferred(Some(_))) => got += 1,
                StartTransfer::Complete(other) => panic!("unexpected {other:?}"),
                StartTransfer::Pending(p) => pending.push(p),
            }
            // Drive any pending permits one poll each.
            pending.retain_mut(|p| match p.poll_transfer(waker, Deadline::Never, None) {
                Poll::Ready(TransferOutcome::Transferred(Some(_))) => {
                    got += 1;
                    false
                }
                Poll::Ready(other) => panic!("unexpected {other:?}"),
                Poll::Pending => true,
            });
        }
        producer.join().unwrap();
        assert!(pending.is_empty() || got == n);
        // Unresolved reservations (if any) cancel on drop.
    }
}
