//! The `SynchronousQueue` facade: fair or unfair mode behind one type,
//! mirroring `java.util.concurrent.SynchronousQueue`.

use crate::combiner::CombinerSyncQueue;
use crate::dual_queue::SyncDualQueue;
use crate::dual_stack::SyncDualStack;
use crate::transferer::{Deadline, TransferOutcome, Transferer};
use std::time::Duration;
use synq_primitives::{CancelToken, SpinPolicy};

enum Inner<T: Send> {
    Fair(SyncDualQueue<T>),
    Unfair(SyncDualStack<T>),
    Combining(CombinerSyncQueue<T>),
}

/// A synchronous queue: every `put` waits for a `take` and vice versa.
///
/// Construction selects the pairing policy, as in Java:
///
/// * [`SynchronousQueue::new`] / [`SynchronousQueue::unfair`] — LIFO
///   pairing via the synchronous dual stack (better locality; the Java
///   default).
/// * [`SynchronousQueue::fair`] — strict FIFO pairing via the synchronous
///   dual queue (no starvation; the paper shows fairness costs little with
///   these algorithms).
///
/// The queue itself never holds data: `len()` is always 0 and `peek()`
/// always `None`, just like the Java class.
///
/// # Examples
///
/// Timed rendezvous with a patience interval:
///
/// ```
/// use synq::SynchronousQueue;
/// use std::time::Duration;
///
/// let q: SynchronousQueue<u32> = SynchronousQueue::new();
/// // No consumer shows up in time:
/// assert_eq!(q.offer_timeout(5, Duration::from_millis(10)), Err(5));
/// assert_eq!(q.poll(), None);
/// ```
pub struct SynchronousQueue<T: Send> {
    inner: Inner<T>,
}

impl<T: Send> Default for SynchronousQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> SynchronousQueue<T> {
    /// Unfair (stack-based) mode — the default, as in Java.
    pub fn new() -> Self {
        Self::unfair()
    }

    /// Unfair (LIFO, dual-stack) mode.
    pub fn unfair() -> Self {
        SynchronousQueue {
            inner: Inner::Unfair(SyncDualStack::new()),
        }
    }

    /// Fair (FIFO, dual-queue) mode.
    pub fn fair() -> Self {
        SynchronousQueue {
            inner: Inner::Fair(SyncDualQueue::new()),
        }
    }

    /// Fair mode with an explicit spin policy (ablations).
    pub fn fair_with_spin(spin: SpinPolicy) -> Self {
        SynchronousQueue {
            inner: Inner::Fair(SyncDualQueue::with_spin(spin)),
        }
    }

    /// Unfair mode with an explicit spin policy (ablations).
    pub fn unfair_with_spin(spin: SpinPolicy) -> Self {
        SynchronousQueue {
            inner: Inner::Unfair(SyncDualStack::with_spin(spin)),
        }
    }

    /// Combining (flat-combining, FIFO-within-a-sweep) mode — the
    /// delegation alternative to both CAS-based modes, strongest under
    /// oversubscription (see [`CombinerSyncQueue`]).
    pub fn combining() -> Self {
        SynchronousQueue {
            inner: Inner::Combining(CombinerSyncQueue::new()),
        }
    }

    /// Combining mode with an explicit spin policy (ablations).
    pub fn combining_with_spin(spin: SpinPolicy) -> Self {
        SynchronousQueue {
            inner: Inner::Combining(CombinerSyncQueue::with_spin(spin)),
        }
    }

    /// True if this queue pairs FIFO (the combining mode is FIFO within
    /// each sweep batch).
    pub fn is_fair(&self) -> bool {
        matches!(self.inner, Inner::Fair(_) | Inner::Combining(_))
    }

    /// True if this queue delegates pairing to a combiner thread.
    pub fn is_combining(&self) -> bool {
        matches!(self.inner, Inner::Combining(_))
    }

    /// Transfers `value`, waiting for a consumer.
    pub fn put(&self, value: T) {
        match self.transfer(Some(value), Deadline::Never, None) {
            TransferOutcome::Transferred(_) => {}
            _ => unreachable!("untimed put cannot fail"),
        }
    }

    /// Receives a value, waiting for a producer.
    pub fn take(&self) -> T {
        match self.transfer(None, Deadline::Never, None) {
            TransferOutcome::Transferred(Some(v)) => v,
            _ => unreachable!("untimed take cannot fail"),
        }
    }

    /// Transfers `value` only if a consumer is already waiting.
    pub fn offer(&self, value: T) -> Result<(), T> {
        match self.transfer(Some(value), Deadline::Now, None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned on failure")),
        }
    }

    /// Receives only if a producer is already waiting.
    pub fn poll(&self) -> Option<T> {
        self.transfer(None, Deadline::Now, None).into_inner()
    }

    /// `offer` with patience.
    pub fn offer_timeout(&self, value: T, patience: Duration) -> Result<(), T> {
        match self.transfer(Some(value), Deadline::after(patience), None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("item returned on failure")),
        }
    }

    /// `poll` with patience.
    pub fn poll_timeout(&self, patience: Duration) -> Option<T> {
        self.transfer(None, Deadline::after(patience), None)
            .into_inner()
    }

    /// A synchronous queue buffers nothing: always 0.
    pub fn len(&self) -> usize {
        0
    }

    /// A synchronous queue buffers nothing: always true.
    pub fn is_empty(&self) -> bool {
        true
    }

    /// A synchronous queue buffers nothing: always `None`.
    pub fn peek(&self) -> Option<&T> {
        None
    }

    /// Number of nodes currently linked in the underlying structure
    /// (waiters + not-yet-absorbed cancelled nodes). Diagnostic only.
    pub fn linked_nodes(&self) -> usize {
        match &self.inner {
            Inner::Fair(q) => q.linked_nodes(),
            Inner::Unfair(s) => s.linked_nodes(),
            Inner::Combining(c) => c.linked_records(),
        }
    }
}

impl<T: Send> Transferer<T> for SynchronousQueue<T> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        match &self.inner {
            Inner::Fair(q) => q.transfer(item, deadline, token),
            Inner::Unfair(s) => s.transfer(item, deadline, token),
            Inner::Combining(c) => c.transfer(item, deadline, token),
        }
    }
}

impl<T: Send> std::fmt::Debug for SynchronousQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match self.inner {
            Inner::Fair(_) => "fair",
            Inner::Unfair(_) => "unfair",
            Inner::Combining(_) => "combining",
        };
        f.debug_struct("SynchronousQueue")
            .field("mode", &mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn default_is_unfair_like_java() {
        let q: SynchronousQueue<u8> = SynchronousQueue::new();
        assert!(!q.is_fair());
        assert!(SynchronousQueue::<u8>::fair().is_fair());
    }

    #[test]
    fn java_like_empty_views() {
        let q: SynchronousQueue<u8> = SynchronousQueue::new();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert!(q.peek().is_none());
    }

    #[test]
    fn both_modes_transfer() {
        for q in [
            SynchronousQueue::fair(),
            SynchronousQueue::unfair(),
            SynchronousQueue::combining(),
        ] {
            let q = Arc::new(q);
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || q2.take());
            q.put(11u32);
            assert_eq!(t.join().unwrap(), 11);
        }
    }

    #[test]
    fn offer_poll_fail_on_empty_in_both_modes() {
        for q in [
            SynchronousQueue::<u8>::fair(),
            SynchronousQueue::<u8>::unfair(),
            SynchronousQueue::<u8>::combining(),
        ] {
            assert_eq!(q.poll(), None);
            assert_eq!(q.offer(3), Err(3));
        }
    }

    #[test]
    fn timeout_roundtrip_both_modes() {
        for q in [
            SynchronousQueue::<u8>::fair(),
            SynchronousQueue::<u8>::unfair(),
            SynchronousQueue::<u8>::combining(),
        ] {
            assert_eq!(q.poll_timeout(Duration::from_millis(5)), None);
            assert_eq!(q.offer_timeout(9, Duration::from_millis(5)), Err(9));
        }
    }

    #[test]
    fn spin_policy_constructors() {
        let q = SynchronousQueue::<u8>::fair_with_spin(SpinPolicy::park_immediately());
        assert!(q.is_fair());
        let q = SynchronousQueue::<u8>::unfair_with_spin(SpinPolicy::fixed(4));
        assert!(!q.is_fair());
        let q = SynchronousQueue::<u8>::combining_with_spin(SpinPolicy::fixed(4));
        assert!(q.is_combining() && q.is_fair());
    }

    #[test]
    fn combining_mode_reports_itself() {
        let q: SynchronousQueue<u8> = SynchronousQueue::combining();
        assert!(q.is_combining());
        assert!(format!("{q:?}").contains("combining"));
        assert!(!SynchronousQueue::<u8>::fair().is_combining());
        assert_eq!(q.linked_nodes(), 0);
    }
}
