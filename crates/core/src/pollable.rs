//! Poll-mode (two-phase) transfer entry points.
//!
//! The blocking [`Transferer`](crate::Transferer) interface folds the whole
//! rendezvous — reserve, wait, resolve — into one call, because a thread
//! can simply park in the middle. An async task cannot: it must *return*
//! while waiting and be re-polled later. This module splits the protocol at
//! exactly the seam the paper's algorithms already have:
//!
//! 1. [`PollTransferer::start_transfer`] runs the lock-free part — match a
//!    waiting counterpart (done, no suspension) or publish a node — and
//!    returns either the finished outcome or a [`PendingTransfer`] *permit*
//!    standing for the published node.
//! 2. [`PendingTransfer::poll_transfer`] drives the published node's
//!    [`WaitSlot`](synq_primitives::WaitSlot) through its poll-mode wait
//!    loop: it registers the task's `Waker` and reports `Pending`, or
//!    resolves the terminal state into a
//!    [`TransferOutcome`] exactly as the blocking
//!    `awaitFulfill` epilogue would.
//!
//! # Cancel safety
//!
//! Dropping a permit whose transfer has not resolved runs the *same*
//! `try_cancel` CAS a timed-out thread waiter runs, and the node's
//! reference-counted release drops an unconsumed in-slot item exactly once
//! — whether the cancel won (a producer's unsent item) or lost (a
//! fulfiller's deposited item that the dropped consumer will never read).
//! This is what makes `synq-async`'s futures safe to drop at every protocol
//! state; the permit, not the future, owns the obligation.

use crate::transferer::{Deadline, TransferOutcome};
use core::task::{Poll, Waker};
use std::sync::Arc;
use synq_primitives::CancelToken;

/// First phase of a poll-mode transfer: finished outright, or pending on a
/// published node.
#[derive(Debug)]
pub enum StartTransfer<T, P> {
    /// The transfer resolved without waiting (a counterpart was already
    /// there). Same payload convention as
    /// [`TransferOutcome`].
    Complete(TransferOutcome<T>),
    /// A node was published; drive the permit to resolution (or drop it to
    /// cancel).
    Pending(P),
}

/// A published, not-yet-resolved transfer: the poll-mode stand-in for a
/// thread parked in `awaitFulfill`.
///
/// A permit must be either polled to `Ready` or dropped; both paths settle
/// item ownership exactly once (see the [module docs](self)).
///
/// `Unpin` is a supertrait by design: a permit only *points at* its node
/// (which never moves), so moving the permit itself is always fine — and
/// it lets the futures built on top be `Unpin` without pin projection.
pub trait PendingTransfer<T: Send>: Send + Unpin {
    /// Makes one pass of the wait protocol. Registers `waker` and returns
    /// `Pending`, or resolves: `Transferred` when matched, and
    /// `Timeout`/`Cancelled` — with a producer's item handed back — only
    /// after winning the cancel CAS against any racing fulfiller.
    ///
    /// `Pending` with an unexpired [`Deadline::At`] relies on the caller to
    /// arrange a wake at the deadline (there is no timer down here).
    ///
    /// # Panics
    ///
    /// May panic if called again after returning `Ready` (the future
    /// contract: a resolved future is never re-polled).
    fn poll_transfer(
        &mut self,
        waker: &Waker,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> Poll<TransferOutcome<T>>;
}

/// A synchronous transfer point that can start transfers without suspending
/// the calling thread — the capability `synq-async` builds futures from.
///
/// Implemented by [`SyncDualQueue`](crate::SyncDualQueue) (fair) and
/// [`SyncDualStack`](crate::SyncDualStack) (unfair). The receiver is an
/// `Arc` because the returned permit keeps the structure alive for as long
/// as its node may be reachable.
pub trait PollTransferer<T: Send>: Send + Sync + Sized {
    /// The permit type standing for this structure's published nodes.
    type Permit: PendingTransfer<T>;

    /// Runs the lock-free phase of one transfer: `Some(v)` acts as a
    /// producer, `None` as a consumer. Never blocks and never waits —
    /// when no counterpart is available it publishes a wait node and
    /// returns [`StartTransfer::Pending`].
    fn start_transfer(this: &Arc<Self>, item: Option<T>) -> StartTransfer<T, Self::Permit>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::TimedSyncChannel;
    use crate::{CombinerSyncQueue, CombinerSyncStack, SyncDualQueue, SyncDualStack};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Waker;

    fn counting_waker(hits: Arc<AtomicUsize>) -> Waker {
        struct W(Arc<AtomicUsize>);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        Waker::from(Arc::new(W(hits)))
    }

    /// Exercises the full poll-mode rendezvous generically: pending
    /// consumer, fulfilling producer, wakeup, Ready with the item.
    fn pending_consumer_is_woken_and_resolves<Q: PollTransferer<u32>>(q: Arc<Q>) {
        let StartTransfer::Pending(mut permit) = Q::start_transfer(&q, None) else {
            panic!("empty structure must publish a reservation");
        };
        let hits = Arc::new(AtomicUsize::new(0));
        let waker = counting_waker(Arc::clone(&hits));
        assert!(permit
            .poll_transfer(&waker, Deadline::Never, None)
            .is_pending());
        // Fulfill from this same thread (never blocks: a reservation waits).
        match Q::start_transfer(&q, Some(77)) {
            StartTransfer::Complete(TransferOutcome::Transferred(None)) => {}
            StartTransfer::Complete(other) => {
                panic!("producer must complete against the reservation: {other:?}")
            }
            StartTransfer::Pending(_) => panic!("producer must not publish a second node"),
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1, "exactly one wakeup");
        match permit.poll_transfer(&waker, Deadline::Never, None) {
            Poll::Ready(TransferOutcome::Transferred(Some(77))) => {}
            other => panic!("expected the item, got {other:?}"),
        }
    }

    #[test]
    fn queue_pending_consumer_is_woken_and_resolves() {
        pending_consumer_is_woken_and_resolves(Arc::new(SyncDualQueue::new()));
    }

    #[test]
    fn stack_pending_consumer_is_woken_and_resolves() {
        pending_consumer_is_woken_and_resolves(Arc::new(SyncDualStack::new()));
    }

    #[test]
    fn combiner_queue_pending_consumer_is_woken_and_resolves() {
        pending_consumer_is_woken_and_resolves(Arc::new(CombinerSyncQueue::new()));
    }

    #[test]
    fn combiner_stack_pending_consumer_is_woken_and_resolves() {
        pending_consumer_is_woken_and_resolves(Arc::new(CombinerSyncStack::new()));
    }

    #[test]
    fn queue_dropping_pending_permit_cancels_reservation() {
        let q: Arc<SyncDualQueue<u32>> = Arc::new(SyncDualQueue::new());
        let StartTransfer::Pending(permit) = SyncDualQueue::start_transfer(&q, None) else {
            panic!("expected a pending reservation");
        };
        drop(permit);
        // The reservation is gone: an offer finds nobody.
        assert_eq!(q.offer(1), Err(1));
        assert_eq!(q.linked_nodes(), 0);
    }

    #[test]
    fn stack_dropping_pending_permit_cancels_reservation() {
        let s: Arc<SyncDualStack<u32>> = Arc::new(SyncDualStack::new());
        let StartTransfer::Pending(permit) = SyncDualStack::start_transfer(&s, None) else {
            panic!("expected a pending reservation");
        };
        drop(permit);
        assert_eq!(s.offer(1), Err(1));
        assert_eq!(s.linked_nodes(), 0);
    }

    #[test]
    fn combiner_dropping_pending_permit_cancels_reservation() {
        let q: Arc<CombinerSyncQueue<u32>> = Arc::new(CombinerSyncQueue::new());
        let StartTransfer::Pending(permit) = CombinerSyncQueue::start_transfer(&q, None) else {
            panic!("expected a pending reservation");
        };
        drop(permit);
        assert_eq!(q.offer(1), Err(1));
    }

    #[test]
    fn combiner_producer_permit_poll_deadline_times_out_with_item() {
        let q: Arc<CombinerSyncQueue<String>> = Arc::new(CombinerSyncQueue::new());
        let StartTransfer::Pending(mut permit) =
            CombinerSyncQueue::start_transfer(&q, Some("v".to_string()))
        else {
            panic!("expected a pending publication");
        };
        let waker = counting_waker(Arc::new(AtomicUsize::new(0)));
        match permit.poll_transfer(&waker, Deadline::Now, None) {
            Poll::Ready(TransferOutcome::Timeout(Some(s))) => assert_eq!(s, "v"),
            other => panic!("expected Timeout with the item back, got {other:?}"),
        }
    }

    #[test]
    fn combiner_producer_permit_poll_cancel_token_returns_item() {
        let s: Arc<CombinerSyncStack<String>> = Arc::new(CombinerSyncStack::new());
        let StartTransfer::Pending(mut permit) =
            CombinerSyncStack::start_transfer(&s, Some("w".to_string()))
        else {
            panic!("expected a pending publication");
        };
        let token = CancelToken::new();
        token.canceller().cancel();
        let waker = counting_waker(Arc::new(AtomicUsize::new(0)));
        match permit.poll_transfer(&waker, Deadline::Never, Some(&token)) {
            Poll::Ready(TransferOutcome::Cancelled(Some(s))) => assert_eq!(s, "w"),
            other => panic!("expected Cancelled with the item back, got {other:?}"),
        }
    }

    #[test]
    fn queue_producer_permit_poll_deadline_times_out_with_item() {
        let q: Arc<SyncDualQueue<String>> = Arc::new(SyncDualQueue::new());
        let StartTransfer::Pending(mut permit) =
            SyncDualQueue::start_transfer(&q, Some("v".to_string()))
        else {
            panic!("expected a pending publication");
        };
        let waker = counting_waker(Arc::new(AtomicUsize::new(0)));
        match permit.poll_transfer(&waker, Deadline::Now, None) {
            Poll::Ready(TransferOutcome::Timeout(Some(s))) => assert_eq!(s, "v"),
            other => panic!("expected Timeout with the item back, got {other:?}"),
        }
    }

    #[test]
    fn stack_producer_permit_poll_cancel_token_returns_item() {
        let s: Arc<SyncDualStack<String>> = Arc::new(SyncDualStack::new());
        let StartTransfer::Pending(mut permit) =
            SyncDualStack::start_transfer(&s, Some("w".to_string()))
        else {
            panic!("expected a pending publication");
        };
        let token = CancelToken::new();
        token.canceller().cancel();
        let waker = counting_waker(Arc::new(AtomicUsize::new(0)));
        match permit.poll_transfer(&waker, Deadline::Never, Some(&token)) {
            Poll::Ready(TransferOutcome::Cancelled(Some(s))) => assert_eq!(s, "w"),
            other => panic!("expected Cancelled with the item back, got {other:?}"),
        }
    }
}
