//! Striped handoff lanes: contention-adaptive multi-lane dual structures.
//!
//! Every structure in this crate serializes all threads through one
//! head/tail CAS point — exactly the bottleneck the paper's §5 throughput
//! curves flatten on. [`Striped`] splits that point into `K` independent
//! *lanes*, each a complete dual queue or dual stack, and routes each
//! thread through three phases:
//!
//! 1. **Affine fast path + fail-fast scan.** The thread's affine lane
//!    (dense per-thread hint from [`synq_primitives::lane_hint`], plus a
//!    thread-local *diffraction offset*, see [`crate::contention`]) is
//!    tried first with a non-waiting transfer; on a miss the remaining
//!    lanes are scanned the same way. A waiter anywhere is therefore
//!    always found by any arriving counterpart before it publishes.
//! 2. **Publish.** With no counterpart anywhere, the thread publishes a
//!    wait node on its affine lane via the structure's poll-mode entry
//!    point (so the publication can still be retracted).
//! 3. **Rescan & retract.** A counterpart may have published on a sibling
//!    lane concurrently (it scanned before we published; we scanned before
//!    it published). A `SeqCst` fence followed by a rescan of the sibling
//!    lanes closes this store-buffering race: of two concurrent
//!    publishers, at least one is guaranteed to observe the other (both
//!    fence between their publish-CAS and their rescan loads — Dekker's
//!    argument). Whoever sees a counterpart retracts its own publication
//!    (the same `WAITING → CANCELLED` CAS a timed-out waiter runs; if the
//!    retract loses, a fulfiller already claimed us and we simply finish)
//!    and restarts from phase 1, where the scan will find the counterpart.
//!    Only when the rescan comes up empty does the thread settle into the
//!    ordinary [`WaitSlot`](synq_primitives::WaitSlot) wait.
//!
//! Two threads that keep retracting in lockstep restart the loop under
//! exponential backoff, which breaks the symmetry probabilistically (the
//! same argument as CAS retry loops; there is no bound, but each round is
//! independent and the no-progress window shrinks geometrically).
//!
//! # Semantics and the fairness trade-off
//!
//! Exactly-one-pairing is preserved: every handoff still resolves through
//! exactly one `WaitSlot` claim on exactly one lane, so each send pairs
//! with exactly one receive. What striping weakens is *global ordering*:
//! the fair variant [`StripedSyncQueue`] is FIFO **per lane** but not
//! across lanes — a later producer on a hot lane can be taken before an
//! earlier producer parked on a sibling lane, because consumers scan
//! lanes in their own affinity order. This is the classic
//! throughput-for-fairness trade: the paper's §5 fair queue preserves
//! strict FIFO by funnelling everyone through one tail and pays for it
//! with a flat throughput curve; striping buys back scalability by
//! letting disjoint thread groups rendezvous on disjoint cache lines.
//! `lanes = 1` recovers the exact single-structure semantics (and, within
//! noise, its performance — the router collapses to one fail-fast
//! attempt followed by an ordinary publish). [`StripedSyncStack`] was
//! unfair to begin with; striping merely adds another source of
//! reordering.
//!
//! # Memory layout
//!
//! Each lane is its own `Arc` allocation and both lane types are ≥128-byte
//! aligned (their own `CachePadded` layout guarantees, asserted in their
//! modules), so no two lanes' hot words share a cache line. Per-lane node
//! caches are sized down by the lane count so K lanes together retain no
//! more dead skeletons than one unstriped structure.

use crate::contention;
use crate::node_cache::NODE_CACHE_CAP;
use crate::pollable::{PendingTransfer, PollTransferer, StartTransfer};
use crate::transferer::{Deadline, TransferOutcome, Transferer};
use crate::{SyncChannel, SyncDualQueue, SyncDualStack, TimedSyncChannel};
use core::task::{Poll, Waker};
use std::marker::PhantomData;
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;
use synq_primitives::backoff::{ncpus, Backoff};
use synq_primitives::lane_hint::lane_hint;
use synq_primitives::{CancelToken, SpinPolicy};

/// Most lanes [`Striped::new`] will pick on a large machine; explicit
/// [`Striped::with_lanes`] can exceed this.
const MAX_DEFAULT_LANES: usize = 8;

/// Floor for per-lane node-cache retention, so tiny caches still absorb a
/// burst of timed-out waiters.
const MIN_LANE_CACHE: usize = 8;

mod sealed {
    pub trait Sealed {}
    impl<T: Send> Sealed for crate::SyncDualQueue<T> {}
    impl<T: Send> Sealed for crate::SyncDualStack<T> {}
}

/// A dual structure that can serve as one lane of a [`Striped`] router.
///
/// Sealed: the router's liveness argument leans on lane internals (the
/// full-chain `has_waiting` walk, the retractable poll-mode publication),
/// so only the in-crate dual queue and dual stack qualify.
pub trait StripedLane<T: Send>:
    sealed::Sealed + Transferer<T> + PollTransferer<T> + Send + Sync
{
    /// Builds one lane with the given spin policy and node-cache bound.
    fn make_lane(spin: SpinPolicy, cache_capacity: usize) -> Self;

    /// Racy peek: does this lane hold a still-waiting node of the given
    /// mode (`true` = producer)? See the lane types' `has_waiting`.
    fn lane_has_waiting(&self, is_data: bool) -> bool;

    /// Resolves a published permit by blocking (the structure's ordinary
    /// spin-then-park wait on the already-published node).
    fn wait_permit(
        permit: Self::Permit,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T>;

    /// True once any transfer has published a node on this lane (used by
    /// diagnostics and the scalability bench to count exercised lanes).
    fn lane_was_used(&self) -> bool;
}

impl<T: Send> StripedLane<T> for SyncDualQueue<T> {
    fn make_lane(spin: SpinPolicy, cache_capacity: usize) -> Self {
        SyncDualQueue::with_config(spin, cache_capacity)
    }

    fn lane_has_waiting(&self, is_data: bool) -> bool {
        self.has_waiting(is_data)
    }

    fn wait_permit(
        permit: Self::Permit,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        permit.wait(deadline, token)
    }

    fn lane_was_used(&self) -> bool {
        // The permanent dummy accounts for one allocation on every queue.
        self.nodes_allocated() > 1 || self.nodes_recycled() > 0
    }
}

impl<T: Send> StripedLane<T> for SyncDualStack<T> {
    fn make_lane(spin: SpinPolicy, cache_capacity: usize) -> Self {
        SyncDualStack::with_config(spin, cache_capacity)
    }

    fn lane_has_waiting(&self, is_data: bool) -> bool {
        self.has_waiting(is_data)
    }

    fn wait_permit(
        permit: Self::Permit,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        permit.wait(deadline, token)
    }

    fn lane_was_used(&self) -> bool {
        self.nodes_allocated() > 0 || self.nodes_recycled() > 0
    }
}

/// K independent dual-structure lanes behind a contention-adaptive router.
///
/// Use the [`StripedSyncQueue`] / [`StripedSyncStack`] aliases. The module
/// docs describe the routing protocol and its fairness trade-off.
///
/// # Examples
///
/// ```
/// use synq::{StripedSyncQueue, SyncChannel};
/// use std::sync::Arc;
/// use std::thread;
///
/// let q = Arc::new(StripedSyncQueue::with_lanes(4));
/// let q2 = Arc::clone(&q);
/// let t = thread::spawn(move || q2.take());
/// q.put(7u32);
/// assert_eq!(t.join().unwrap(), 7);
/// ```
pub struct Striped<T: Send, S: StripedLane<T>> {
    lanes: Box<[Arc<S>]>,
    _marker: PhantomData<fn(T) -> T>,
}

/// The striped **fair** variant: K dual-queue lanes, FIFO per lane.
pub type StripedSyncQueue<T> = Striped<T, SyncDualQueue<T>>;

/// The striped **unfair** variant: K dual-stack lanes.
pub type StripedSyncStack<T> = Striped<T, SyncDualStack<T>>;

/// Result of the router's lock-free phase.
enum StripedStart<T, P> {
    Done(TransferOutcome<T>),
    Waiting(P),
}

impl<T: Send, S: StripedLane<T>> Striped<T, S> {
    /// A striped structure with one lane per hardware thread, rounded up
    /// to a power of two and capped at 8 (lane counts beyond the core
    /// count only dilute the scan). One core means one lane — striping a
    /// uniprocessor is pure overhead.
    pub fn new() -> Self {
        Self::with_lanes(ncpus().min(MAX_DEFAULT_LANES).next_power_of_two())
    }

    /// A striped structure with exactly `lanes` lanes (adaptive spin).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn with_lanes(lanes: usize) -> Self {
        Self::with_config(lanes, SpinPolicy::adaptive())
    }

    /// A striped structure with an explicit lane count and spin policy.
    /// Each lane's node cache is sized to `NODE_CACHE_CAP / lanes`
    /// (floored at 8) so the striped whole retains about as many dead
    /// skeletons as one unstriped structure.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn with_config(lanes: usize, spin: SpinPolicy) -> Self {
        assert!(lanes > 0, "a striped structure needs at least one lane");
        let cache_cap = (NODE_CACHE_CAP / lanes).clamp(MIN_LANE_CACHE, NODE_CACHE_CAP);
        Striped {
            lanes: (0..lanes)
                // Lanes clone the policy, so a calibrated policy keeps one
                // shared per-structure spin estimate across all lanes.
                .map(|_| Arc::new(S::make_lane(spin.clone(), cache_cap)))
                .collect(),
            _marker: PhantomData,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Number of lanes on which at least one node has ever been published
    /// (diagnostic; the scalability bench asserts >1 under contention).
    pub fn lanes_exercised(&self) -> usize {
        self.lanes.iter().filter(|l| l.lane_was_used()).count()
    }

    /// The calling thread's current lane of first resort.
    fn base_lane(&self) -> usize {
        (lane_hint().wrapping_add(contention::offset())) % self.lanes.len()
    }

    /// The router (module docs): fail-fast scan, publish on the affine
    /// lane, fence + rescan, retract on sighting a counterpart. Returns
    /// either a finished outcome or a permit parked-to-be on the affine
    /// lane. CAS-failure feedback for the diffraction policy is applied
    /// around this call in `start_striped`.
    fn route(
        &self,
        mut item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> StripedStart<T, S::Permit> {
        let is_data = item.is_some();
        let n = self.lanes.len();
        let backoff = Backoff::new();
        loop {
            if token.is_some_and(|tk| tk.is_cancelled()) {
                return StripedStart::Done(TransferOutcome::Cancelled(item));
            }
            let base = self.base_lane();
            // Phase 1: fail-fast scan, affine lane first. Any waiter
            // already published anywhere is matched here.
            for k in 0..n {
                match self.lanes[(base + k) % n].transfer(item, Deadline::Now, None) {
                    TransferOutcome::Transferred(payload) => {
                        if k == 0 {
                            synq_obs::probe!(StripedLaneHits);
                        } else {
                            synq_obs::probe!(StripedScans);
                        }
                        return StripedStart::Done(TransferOutcome::Transferred(payload));
                    }
                    // `Timeout` hands a producer's item straight back;
                    // `Cancelled` cannot happen (no token passed down).
                    miss => item = miss.into_inner(),
                }
            }
            // Phase 2: nobody is waiting anywhere. A non-waiting call is
            // done; a timed call whose patience already ran out likewise.
            if deadline.expired() {
                return StripedStart::Done(TransferOutcome::Timeout(item));
            }
            let lane = &self.lanes[base % n];
            let mut permit = match S::start_transfer(lane, item) {
                StartTransfer::Complete(outcome) => {
                    // A counterpart arrived on our lane while we published.
                    if outcome.is_success() {
                        synq_obs::probe!(StripedLaneHits);
                    }
                    return StripedStart::Done(outcome);
                }
                StartTransfer::Pending(permit) => permit,
            };
            // Phase 3: close the cross-lane race. Our publish-CAS is
            // ordered before these sibling loads by the SeqCst fence; a
            // concurrent publisher on a sibling lane fences symmetrically,
            // so at least one of us observes the other (store-buffering /
            // Dekker). That one retracts and rematches through phase 1.
            fence(Ordering::SeqCst);
            let counterpart = (1..n).any(|k| self.lanes[(base + k) % n].lane_has_waiting(!is_data));
            if !counterpart {
                return StripedStart::Waiting(permit);
            }
            match permit.poll_transfer(Waker::noop(), Deadline::Now, None) {
                Poll::Ready(TransferOutcome::Timeout(back)) => {
                    // Retract won: our node is cancelled and off the lane.
                    // Restart; the phase-1 scan will find the counterpart.
                    synq_obs::probe!(StripedRetracts);
                    item = back;
                    backoff.spin();
                }
                Poll::Ready(outcome) => {
                    // A fulfiller beat our retract: the transfer happened.
                    return StripedStart::Done(outcome);
                }
                Poll::Pending => {
                    // CLAIMED: a fulfiller is mid-match on our node; the
                    // wait below resolves immediately. (The no-op waker it
                    // registered is benign: both wait paths re-publish
                    // their real handle and re-check the state.)
                    return StripedStart::Waiting(permit);
                }
            }
        }
    }

    /// `route` plus the thread-local CAS-failure feedback that drives the
    /// diffraction policy ([`crate::contention`]).
    fn start_striped(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> StripedStart<T, S::Permit> {
        let fails_before = contention::cas_fails();
        let result = self.route(item, deadline, token);
        contention::feedback(contention::cas_fails() - fails_before);
        result
    }
}

impl<T: Send, S: StripedLane<T>> Default for Striped<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, S: StripedLane<T>> Transferer<T> for Striped<T, S> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        match self.start_striped(item, deadline, token) {
            StripedStart::Done(outcome) => outcome,
            StripedStart::Waiting(permit) => S::wait_permit(permit, deadline, token),
        }
    }
}

/// A published, not-yet-resolved striped transfer: a thin wrapper over the
/// affine lane's own permit (the node lives on that lane; later arrivals
/// find it through their phase-1 scans).
pub struct StripedPermit<T: Send, S: StripedLane<T>> {
    inner: S::Permit,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send, S: StripedLane<T>> PendingTransfer<T> for StripedPermit<T, S> {
    fn poll_transfer(
        &mut self,
        waker: &Waker,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> Poll<TransferOutcome<T>> {
        self.inner.poll_transfer(waker, deadline, token)
    }
}

impl<T: Send, S: StripedLane<T>> std::fmt::Debug for StripedPermit<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("StripedPermit { .. }")
    }
}

impl<T: Send, S: StripedLane<T>> PollTransferer<T> for Striped<T, S> {
    type Permit = StripedPermit<T, S>;

    fn start_transfer(this: &Arc<Self>, item: Option<T>) -> StartTransfer<T, Self::Permit> {
        // Never/None: poll-mode callers apply deadline and cancellation on
        // each poll. The router still runs its scan/publish/rescan dance,
        // so cross-lane races are closed before the permit is handed out;
        // afterwards the permit behaves exactly like the lane's own
        // (dropping it cancels, polling it resolves).
        match this.start_striped(item, Deadline::Never, None) {
            StripedStart::Done(outcome) => StartTransfer::Complete(outcome),
            StripedStart::Waiting(inner) => StartTransfer::Pending(StripedPermit {
                inner,
                _marker: PhantomData,
            }),
        }
    }
}

// Hand-written (rather than `impl_channels_via_transferer!`, which only
// fits single-parameter types): the same bodies, generic over the lane.
impl<T: Send, S: StripedLane<T>> SyncChannel<T> for Striped<T, S> {
    fn put(&self, value: T) {
        match self.transfer(Some(value), Deadline::Never, None) {
            TransferOutcome::Transferred(_) => {}
            _ => unreachable!("untimed, uncancellable put cannot fail"),
        }
    }

    fn take(&self) -> T {
        match self.transfer(None, Deadline::Never, None) {
            TransferOutcome::Transferred(Some(v)) => v,
            _ => unreachable!("untimed, uncancellable take cannot fail"),
        }
    }
}

impl<T: Send, S: StripedLane<T>> TimedSyncChannel<T> for Striped<T, S> {
    fn offer(&self, value: T) -> Result<(), T> {
        match self.transfer(Some(value), Deadline::Now, None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("failed put returns the item")),
        }
    }

    fn poll(&self) -> Option<T> {
        self.transfer(None, Deadline::Now, None).into_inner()
    }

    fn offer_timeout(&self, value: T, patience: std::time::Duration) -> Result<(), T> {
        match self.transfer(Some(value), Deadline::after(patience), None) {
            TransferOutcome::Transferred(_) => Ok(()),
            other => Err(other.into_inner().expect("failed put returns the item")),
        }
    }

    fn poll_timeout(&self, patience: std::time::Duration) -> Option<T> {
        self.transfer(None, Deadline::after(patience), None)
            .into_inner()
    }

    fn put_with(
        &self,
        value: T,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        self.transfer(Some(value), deadline, token)
    }

    fn take_with(&self, deadline: Deadline, token: Option<&CancelToken>) -> TransferOutcome<T> {
        self.transfer(None, deadline, token)
    }
}

impl<T: Send, S: StripedLane<T>> std::fmt::Debug for Striped<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Striped")
            .field("lanes", &self.lanes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn constructors_and_lane_counts() {
        let q: StripedSyncQueue<u32> = StripedSyncQueue::with_lanes(4);
        assert_eq!(q.lanes(), 4);
        assert_eq!(q.lanes_exercised(), 0);
        let s: StripedSyncStack<u32> = StripedSyncStack::with_lanes(2);
        assert_eq!(s.lanes(), 2);
        let d: StripedSyncQueue<u32> = StripedSyncQueue::new();
        assert!(d.lanes() >= 1);
        assert!(d.lanes().is_power_of_two());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let _ = StripedSyncQueue::<u32>::with_lanes(0);
    }

    #[test]
    fn offer_poll_on_empty_fail_without_publishing() {
        let q: StripedSyncQueue<u32> = StripedSyncQueue::with_lanes(4);
        assert_eq!(q.poll(), None);
        assert_eq!(q.offer(9), Err(9));
        assert_eq!(q.lanes_exercised(), 0, "fail-fast must not publish");
    }

    #[test]
    fn put_take_pair_queue() {
        let q = Arc::new(StripedSyncQueue::with_lanes(4));
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(41u32);
        assert_eq!(t.join().unwrap(), 41);
    }

    #[test]
    fn put_take_pair_stack() {
        let s = Arc::new(StripedSyncStack::with_lanes(4));
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || s2.put("x"));
        assert_eq!(s.take(), "x");
        t.join().unwrap();
    }

    #[test]
    fn timed_poll_expires() {
        let q: StripedSyncQueue<u8> = StripedSyncQueue::with_lanes(2);
        assert_eq!(q.poll_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn offer_timeout_returns_item() {
        let q: StripedSyncQueue<String> = StripedSyncQueue::with_lanes(2);
        let back = q
            .offer_timeout("payload".into(), Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(back, "payload");
    }

    #[test]
    fn cancellation_interrupts_waiting_take() {
        let q: Arc<StripedSyncQueue<u8>> = Arc::new(StripedSyncQueue::with_lanes(4));
        let token = CancelToken::new();
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take_with(Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(None) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_returns_item_to_producer() {
        let q: Arc<StripedSyncQueue<Vec<u8>>> = Arc::new(StripedSyncQueue::with_lanes(4));
        let token = CancelToken::new();
        let canceller = token.canceller();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.put_with(vec![1, 2], Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(Some(v)) => assert_eq!(v, vec![1, 2]),
            other => panic!("expected Cancelled(item), got {other:?}"),
        }
    }

    #[test]
    fn cross_lane_rendezvous_under_stress() {
        // Many producers and consumers on more lanes than threads: every
        // value must arrive exactly once even though the sides routinely
        // publish on different lanes.
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER: usize = 250;
        let q = Arc::new(StripedSyncQueue::with_lanes(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.put(p * PER + i);
                }
            }));
        }
        let sums: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sum = 0usize;
                    for _ in 0..(PRODUCERS * PER / CONSUMERS) {
                        sum += q.take();
                    }
                    sum
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = sums.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..PRODUCERS * PER).sum::<usize>());
    }

    #[test]
    fn stack_values_conserved_under_stress() {
        const PAIRS: usize = 4;
        const PER: usize = 250;
        let s = Arc::new(StripedSyncStack::with_lanes(4));
        let producers: Vec<_> = (0..PAIRS)
            .map(|p| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    for i in 0..PER {
                        s.put(p * PER + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..PAIRS)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || (0..PER).map(|_| s.take()).sum::<usize>())
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..PAIRS * PER).sum::<usize>());
    }

    #[test]
    fn per_lane_fifo_is_preserved_with_one_lane() {
        // lanes = 1 must recover the exact FIFO semantics of the plain
        // dual queue (global order == per-lane order).
        let q = Arc::new(StripedSyncQueue::with_lanes(1));
        let mut producers = Vec::new();
        for i in 0..5u32 {
            let q2 = Arc::clone(&q);
            producers.push(thread::spawn(move || q2.put(i)));
            while q.lanes[0].linked_nodes() < (i + 1) as usize {
                thread::yield_now();
            }
        }
        for expect in 0..5u32 {
            assert_eq!(q.take(), expect);
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn poll_mode_pending_consumer_is_woken_and_resolves() {
        // The generic poll-mode rendezvous, through the striped router.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q: Arc<StripedSyncQueue<u32>> = Arc::new(StripedSyncQueue::with_lanes(4));
        let StartTransfer::Pending(mut permit) = StripedSyncQueue::start_transfer(&q, None) else {
            panic!("empty structure must publish a reservation");
        };
        let hits = Arc::new(AtomicUsize::new(0));
        struct W(Arc<AtomicUsize>);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let waker = Waker::from(Arc::new(W(Arc::clone(&hits))));
        assert!(permit
            .poll_transfer(&waker, Deadline::Never, None)
            .is_pending());
        // A producer must find the reservation during its phase-1 scan,
        // whatever lane it is affine to.
        match StripedSyncQueue::start_transfer(&q, Some(77)) {
            StartTransfer::Complete(TransferOutcome::Transferred(None)) => {}
            other => panic!("producer must complete against the reservation: {other:?}"),
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1, "exactly one wakeup");
        match permit.poll_transfer(&waker, Deadline::Never, None) {
            Poll::Ready(TransferOutcome::Transferred(Some(77))) => {}
            other => panic!("expected the item, got {other:?}"),
        }
    }

    #[test]
    fn dropping_pending_permit_cancels_reservation() {
        let q: Arc<StripedSyncQueue<u32>> = Arc::new(StripedSyncQueue::with_lanes(4));
        let StartTransfer::Pending(permit) = StripedSyncQueue::start_transfer(&q, None) else {
            panic!("expected a pending reservation");
        };
        drop(permit);
        assert_eq!(q.offer(1), Err(1), "cancelled reservation must be gone");
    }
}
