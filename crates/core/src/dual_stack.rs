//! The synchronous dual stack — the paper's **unfair** algorithm
//! (Listing 6 / Figure 2), with time-out and cancellation support in the
//! style of the Java 6 production version (`TransferStack`).
//!
//! # Algorithm
//!
//! The stack is a singly linked list with one `head` pointer (the Treiber
//! skeleton). It holds either data nodes (waiting producers) or request
//! nodes (waiting consumers) — plus, transiently, a single *fulfilling*
//! node of the opposite type on top. Three cases on arrival:
//!
//! 1. **Empty or same mode** — push our node and wait for a counterpart to
//!    set its `match` pointer (spin on our own node, then park).
//! 2. **Complementary mode on top** — push a node marked `FULFILLING`
//!    above it, then *annihilate*: CAS the reservation's `match` to our
//!    fulfilling node and pop both together (Figure 2 steps B–D).
//! 3. **Fulfilling node on top** — *help* the fulfiller complete its match
//!    and pop, then retry our own operation. Helping is what makes the
//!    algorithm lock-free: no thread can block another's progress.
//!
//! The request linearizes at the head-CAS that pushes our node (case 1) or
//! our fulfilling node (case 2); the follow-up linearizes at the `match`
//! CAS (paper §3.3).
//!
//! # Cancellation and cleaning
//!
//! A waiter cancels by CASing its node's state word `WAITING → CANCELLED`
//! — the same word a fulfiller CASes its own address into, so
//! match-vs-cancel is arbitrated by a single CAS exactly as in the Java
//! code (which CASes the `match` pointer to self; here the shared
//! [`WaitSlot`] engine reserves the low state values and uses the
//! fulfiller's address as the match *token*). Cancelled nodes are reclaimed when
//! they surface at the top of the stack: every arriving operation (and the
//! canceller itself) first pops cancelled top nodes, and fulfillers skip
//! over cancelled nodes beneath them (`cas_next`), releasing them. As in
//! the [queue](crate::dual_queue), we do not unsplice cancelled nodes from
//! the *middle* of the stack from arbitrary positions — that is only
//! memory-safe under a tracing GC — but the skip-from-fulfiller path plus
//! top absorption bounds buildup the same way (experiment A4).
//!
//! # Memory lifetime
//!
//! As in the queue: refcount 2 per node (structure + owner), structure side
//! released by a deferred retirement through the selected [`Reclaimer`]
//! backend (`R`, defaulting to [`Epoch`]). One extra wrinkle (absent from
//! the GC'd Java version): the waiter must read the *fulfiller's* item
//! after waking, possibly long after the fulfiller popped both nodes — so
//! the thread whose CAS installs a match first takes an extra reference on
//! the fulfilling node *on the waiter's behalf*; the waiter releases it
//! after reading.
//!
//! Unlike the queue, the stack removes nodes from *mid-chain* (a fulfiller
//! or helper skips cancelled nodes beneath the fulfilling top), so the
//! bounded-protection backends need stronger validation than the queue's
//! snapshot re-check:
//!
//! * **Skips rewrite the link before retiring its target**, so
//!   [`Shield::protect`]'s own source re-check (publish, re-read, loop)
//!   already rules out dereferencing a skip victim.
//! * **A matched reservation can be retired without its predecessor's
//!   `next` changing** (the dead fulfilling node still points at it).
//!   Two defenses: the *fulfiller* — the only thread that must read the
//!   matched node's item — is made the sole releaser of the matched
//!   node's structure reference (helpers and the waiter's help-pop leave
//!   it), so the node is refcount-live until the fulfiller is done with
//!   it; and *helpers* re-validate that the fulfilling node is still the
//!   head before dereferencing below it (a popped node is never re-pushed,
//!   and the protecting slot prevents its address from being recycled, so
//!   `head == h` is unambiguous).
//! * **Chain walks** (`has_waiting`, `linked_nodes`)
//!   re-read `head` after every hop and restart when it moved: with the
//!   head stable, every link-validated node reached from it is unpopped
//!   (the stack pops only at the top), and nodes retired before the walk
//!   began are unreachable from the current head.

use crate::node_cache::{NodeCache, Recyclable};
use crate::pollable::{PendingTransfer, PollTransferer, StartTransfer};
use crate::transferer::{Deadline, TransferOutcome, Transferer};
use core::task::{Poll, Waker};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use synq_primitives::{CachePadded, CancelToken, SpinPolicy, WaitOutcome, WaitSlot};
use synq_reclaim::{Atomic, Epoch, Owned, Pointer, Reclaimer, Shared, Shield};

/// Result of the lock-free phase: resolved outright, or a node pushed that
/// some counterpart must now fulfill.
enum RawStart<T, R: Reclaimer> {
    Done(TransferOutcome<T>),
    Published(*const SNode<T, R>),
}

/// Node is a waiting consumer.
const REQUEST: usize = 0;
/// Node is a waiting producer (carries an item).
const DATA: usize = 1;
/// Node is actively fulfilling the node beneath it (ORed with the mode).
const FULFILLING: usize = 2;

struct SNode<T, R: Reclaimer> {
    /// `REQUEST`, `DATA`, possibly `| FULFILLING`. Set before publication.
    mode: usize,
    /// The wait-node protocol. The stack's fulfillers match a reservation
    /// by storing their own node's address as the match *token* (the
    /// Java `TransferStack` CASes a `match` pointer; the reserved control
    /// states play the null/self roles).
    slot: WaitSlot<T>,
    next: Atomic<SNode<T, R>, R>,
    refs: AtomicUsize,
    /// Set exactly once, by the thread that releases the structure
    /// reference — the guard against a double release when racing
    /// removers (a skip and an absorb, or the fulfiller's explicit
    /// release and a cancelled-path absorb) both reach the same node.
    unlinked: AtomicBool,
}

impl<T, R: Reclaimer> SNode<T, R> {
    fn new(mode: usize) -> Owned<SNode<T, R>> {
        Owned::new(SNode {
            mode,
            slot: WaitSlot::new(),
            next: Atomic::null(),
            refs: AtomicUsize::new(2),
            unlinked: AtomicBool::new(false),
        })
    }

    fn is_fulfilling(&self) -> bool {
        self.mode & FULFILLING != 0
    }

    /// Drops one reference. When it was the last, drops any unconsumed item
    /// eagerly and hands the dead skeleton to `dispose` (cache or free).
    unsafe fn release(ptr: *const SNode<T, R>, dispose: impl FnOnce(*mut SNode<T, R>)) {
        // SAFETY: caller owns one reference.
        let node = unsafe { &*ptr };
        if node.refs.fetch_sub(1, Ordering::Release) == 1 {
            std::sync::atomic::fence(Ordering::Acquire);
            // SAFETY: last reference (see QNode::release for the argument).
            let node = unsafe { &mut *(ptr as *mut SNode<T, R>) };
            node.slot.drop_pending_item();
            dispose(ptr as *mut SNode<T, R>);
        }
    }

    /// Frees the allocation of a dead skeleton (item slot empty).
    ///
    /// # Safety
    ///
    /// Caller must own `ptr` exclusively.
    unsafe fn dealloc(ptr: *mut SNode<T, R>) {
        drop(unsafe { Box::from_raw(ptr) });
    }
}

impl<T, R: Reclaimer> Recyclable for SNode<T, R> {
    unsafe fn free_next(ptr: *mut Self) -> *mut Self {
        // The free list reuses the node's own `next` field as its link.
        // SAFETY: the free list hands out exclusively owned nodes; no
        // protection is needed to read our own link.
        let guard = unsafe { R::unprotected() };
        // SAFETY: `ptr` is alive per the trait contract.
        unsafe { (*ptr).next.load(Ordering::Acquire, &guard).as_raw() as *mut Self }
    }

    unsafe fn set_free_next(ptr: *mut Self, next: *mut Self) {
        // SAFETY: exclusive ownership per the trait contract.
        unsafe {
            (*ptr)
                .next
                .store(Shared::from_raw(next as *const Self), Ordering::Release)
        };
    }

    unsafe fn dealloc(ptr: *mut Self) {
        // SAFETY: per the trait contract.
        unsafe { SNode::dealloc(ptr) };
    }
}

/// The unfair (LIFO) synchronous queue — "based on a LIFO stack".
///
/// # Examples
///
/// ```
/// use synq::{SyncDualStack, SyncChannel, TimedSyncChannel};
/// use std::sync::Arc;
/// use std::thread;
///
/// let q = Arc::new(SyncDualStack::new());
/// assert_eq!(q.poll(), None);
/// let q2 = Arc::clone(&q);
/// let t = thread::spawn(move || q2.take());
/// q.put(7u32);
/// assert_eq!(t.join().unwrap(), 7);
/// ```
///
/// A reclamation backend other than the default epoch collector is selected
/// with the second type parameter (see [`Reclaimer`]):
///
/// ```
/// use synq::{SyncDualStack, TimedSyncChannel};
/// use synq_reclaim::Hazard;
///
/// let s: SyncDualStack<u32, Hazard> = SyncDualStack::new_in();
/// assert_eq!(s.poll(), None);
/// ```
pub struct SyncDualStack<T, R: Reclaimer = Epoch> {
    /// The single contended word of the structure: padded so the free-list
    /// head and spin policy beside it never ride its cache line.
    head: CachePadded<Atomic<SNode<T, R>, R>>,
    /// Free list of dead node skeletons, shared with the deferred
    /// reclamation closures that refill it.
    cache: Arc<NodeCache<SNode<T, R>>>,
    spin: SpinPolicy,
}

// Layout: `head` must own its line(s).
const _: () = assert!(std::mem::align_of::<SyncDualStack<u8>>() >= 128);
const _: () = assert!(std::mem::size_of::<SyncDualStack<u8>>() >= 128);

// SAFETY: as for SyncDualQueue.
unsafe impl<T: Send, R: Reclaimer> Send for SyncDualStack<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for SyncDualStack<T, R> {}

impl<T: Send, R: Reclaimer> Default for SyncDualStack<T, R> {
    fn default() -> Self {
        Self::new_in()
    }
}

impl<T: Send> SyncDualStack<T> {
    /// Creates an empty stack with the adaptive spin policy and the
    /// default epoch reclaimer. (Kept non-generic so bare
    /// `SyncDualStack::new()` call sites infer the default backend; use
    /// [`SyncDualStack::new_in`] to pick another.)
    pub fn new() -> Self {
        Self::with_spin(SpinPolicy::adaptive())
    }

    /// Creates an empty stack with an explicit spin policy (ablation A1).
    pub fn with_spin(spin: SpinPolicy) -> Self {
        Self::with_config(spin, crate::node_cache::NODE_CACHE_CAP)
    }

    /// Creates an empty stack with an explicit spin policy and node-cache
    /// retention bound. Striped structures size each lane's cache down so K
    /// lanes together pin no more skeletons than one unstriped stack.
    pub fn with_config(spin: SpinPolicy, cache_capacity: usize) -> Self {
        Self::with_config_in(spin, cache_capacity)
    }
}

impl<T: Send, R: Reclaimer> SyncDualStack<T, R> {
    /// Creates an empty stack with the adaptive spin policy under the
    /// reclamation backend `R`. The backend defaults to epoch, so the
    /// plain [`SyncDualStack::new`] is `new_in` with `R = Epoch`:
    ///
    /// ```
    /// use synq::{SyncChannel, SyncDualStack};
    /// use synq_reclaim::Hazard;
    ///
    /// let s: SyncDualStack<u32, Hazard> = SyncDualStack::new_in();
    /// std::thread::scope(|sc| {
    ///     sc.spawn(|| s.put(7));
    ///     sc.spawn(|| assert_eq!(s.take(), 7));
    /// });
    /// ```
    pub fn new_in() -> Self {
        Self::with_config_in(SpinPolicy::adaptive(), crate::node_cache::NODE_CACHE_CAP)
    }

    /// Creates an empty stack with an explicit spin policy and node-cache
    /// retention bound under the reclamation backend `R`.
    pub fn with_config_in(spin: SpinPolicy, cache_capacity: usize) -> Self {
        SyncDualStack {
            head: CachePadded::new(Atomic::null()),
            cache: Arc::new(NodeCache::with_capacity(cache_capacity)),
            spin,
        }
    }

    /// Gets a node for this transfer: a recycled skeleton when one is
    /// available, a fresh allocation otherwise. `guard` witnesses the
    /// protection the free-list pop requires.
    fn alloc_node(&self, mode: usize, guard: &R::Guard) -> Owned<SNode<T, R>> {
        // SAFETY: protected, per `guard`.
        if let Some(p) = unsafe { self.cache.pop(guard) } {
            // SAFETY: the pop transferred exclusive ownership of a dead
            // skeleton (item slot empty); re-arm every field in place.
            unsafe {
                let node = &mut *p;
                node.mode = mode;
                node.slot.reset();
                node.next = Atomic::null();
                *node.refs.get_mut() = 2;
                *node.unlinked.get_mut() = false;
                Owned::from_usize(p as usize)
            }
        } else {
            self.cache.note_alloc();
            SNode::new(mode)
        }
    }

    /// Diagnostic: nodes heap-allocated over the stack's lifetime.
    pub fn nodes_allocated(&self) -> usize {
        self.cache.allocs()
    }

    /// Diagnostic: allocations avoided by recycling dead nodes.
    pub fn nodes_recycled(&self) -> usize {
        self.cache.reuses()
    }

    /// Releases a reference from outside any deferral (an owner or
    /// waiter-held reference). If it is the last, the item is dropped now
    /// but the skeleton's return to the free list is itself deferred —
    /// re-pushing before the backend's grace window would reintroduce
    /// free-list ABA.
    fn release_direct(&self, ptr: *const SNode<T, R>) {
        // SAFETY: caller owns the reference being dropped. The dispose
        // closure defers the free-list push until the node is unprotected,
        // so it satisfies the push contract; the skeleton is exclusively
        // ours.
        unsafe {
            SNode::release(ptr, |p| {
                let cache = Arc::clone(&self.cache);
                let addr = p as usize;
                let guard = R::pin();
                guard.defer_retire(addr, move || cache.push(addr as *mut SNode<T, R>));
            });
        }
    }

    /// Pops `h`, releasing its structure reference, if it is still the
    /// head.
    fn pop_head<'g>(
        &self,
        h: Shared<'g, SNode<T, R>>,
        new_head: Shared<'g, SNode<T, R>>,
        guard: &'g R::Guard,
    ) -> bool {
        if self
            .head
            .compare_exchange(h, new_head, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            self.release_structure_ref(h, guard);
            true
        } else {
            false
        }
    }

    fn release_structure_ref<'g>(&self, node: Shared<'g, SNode<T, R>>, guard: &'g R::Guard) {
        // SAFETY: node protected by the guard (or refcount-live, see the
        // fulfiller's explicit release).
        let node_ref = unsafe { node.deref() };
        if node_ref.unlinked.swap(true, Ordering::AcqRel) {
            return; // already released by a racing remover
        }
        synq_obs::probe!(ReclaimRetired);
        let raw = node.as_raw() as usize;
        let cache = Arc::clone(&self.cache);
        // SAFETY: see QNode: the reference-count decrement itself is
        // deferred until no thread can hold a protected reference, and
        // running inside the deferral satisfies the free-list push
        // contract, so the skeleton can go to the cache directly.
        unsafe {
            guard.defer_retire(raw, move || {
                SNode::release(raw as *const SNode<T, R>, |p| cache.push(p));
            });
        }
    }

    /// Installs `f` as `m`'s match, waking `m`'s waiter. Returns true if
    /// `m` is matched to `f` (by us or a helper); false if `m` was
    /// cancelled. Takes one reference on `f` on the waiter's behalf when
    /// our CAS wins.
    fn try_match<'g>(
        &self,
        m: Shared<'g, SNode<T, R>>,
        f: Shared<'g, SNode<T, R>>,
        _guard: &'g R::Guard,
    ) -> bool {
        // SAFETY: both protected by the guard (callers validate `m`).
        let m_ref = unsafe { m.deref() };
        let f_ref = unsafe { f.deref() };
        // Speculative reference for m's waiter; revoked if the CAS fails.
        f_ref.refs.fetch_add(1, Ordering::AcqRel);
        match m_ref.slot.try_fulfill_token(f.as_raw() as usize) {
            Ok(()) => {
                synq_obs::probe!(StackMatchCas);
                true
            }
            Err(actual) => {
                // Revoke the reference we just added.
                synq_obs::probe!(StackMatchCasFail);
                crate::contention::note_cas_fail();
                self.release_direct(f.as_raw());
                actual == f.as_raw() as usize
            }
        }
    }

    /// Pops cancelled nodes off the top. The stack-side cleaning strategy.
    fn absorb_cancelled(&self, guard: &R::Guard) {
        loop {
            let h = self.head.load(Ordering::Acquire, guard);
            let Some(h_ref) = (unsafe { h.as_ref() }) else {
                return;
            };
            if !h_ref.slot.is_cancelled() {
                return;
            }
            // `next` is only installed as the new head, never dereferenced:
            // while `h` is still the head (the CAS below certifies it), a
            // node beneath a cancelled — non-fulfilling — top cannot be
            // removed, so its structure reference is intact.
            let next = h_ref.next.load(Ordering::Acquire, guard);
            let _ = self.pop_head(h, next, guard);
        }
    }

    fn transfer_impl(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        let is_data = item.is_some();
        match self.start_impl(item, deadline, token) {
            RawStart::Done(outcome) => outcome,
            // Wait without holding a reclaimer guard.
            RawStart::Published(node_raw) => self.await_fulfill(node_raw, is_data, deadline, token),
        }
    }

    /// The lock-free phase of one transfer: annihilate with a complementary
    /// waiter (helping any fulfiller in the way) or push a wait node. Never
    /// waits; `deadline`/`token` feed only the fail-fast checks before
    /// publication (pass [`Deadline::Never`] and `None` to always publish,
    /// as poll-mode callers do).
    fn start_impl(
        &self,
        mut item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> RawStart<T, R> {
        let is_data = item.is_some();
        let mode = if is_data { DATA } else { REQUEST };
        let mut node: Option<Owned<SNode<T, R>>> = None;

        loop {
            let guard = R::pin();
            self.absorb_cancelled(&guard);

            let h = self.head.load(Ordering::Acquire, &guard);
            let h_ref = unsafe { h.as_ref() };

            if h_ref.is_none_or_mode(mode) {
                // Case 1: empty or same mode — push and wait.
                if deadline.is_now() {
                    return RawStart::Done(TransferOutcome::Timeout(item));
                }
                if token.is_some_and(|tk| tk.is_cancelled()) {
                    return RawStart::Done(TransferOutcome::Cancelled(item));
                }
                let owned = match node.take() {
                    Some(mut n) => {
                        n.mode = mode;
                        n
                    }
                    None => self.alloc_node(mode, &guard),
                };
                if is_data {
                    // SAFETY: we own the unpublished node.
                    unsafe { owned.slot.put_item(item.take().expect("data item")) };
                }
                owned.next.store(h, Ordering::Relaxed);
                match self.head.compare_exchange(
                    h,
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        synq_obs::probe!(StackPushCas);
                        let raw = published.as_raw();
                        drop(guard);
                        return RawStart::Published(raw);
                    }
                    Err(e) => {
                        synq_obs::probe!(StackPushCasFail);
                        crate::contention::note_cas_fail();
                        let owned = e.new;
                        if is_data {
                            // SAFETY: unpublished node; reclaim the item.
                            item = Some(unsafe { owned.slot.reclaim_item() });
                        }
                        node = Some(owned);
                        continue;
                    }
                }
            }

            let h_ref = h_ref.expect("non-empty in cases 2/3");
            if !h_ref.is_fulfilling() {
                // Case 2: complementary waiter on top — push a fulfilling
                // node above it and annihilate the pair.
                let owned = match node.take() {
                    Some(mut n) => {
                        n.mode = mode | FULFILLING;
                        n
                    }
                    None => self.alloc_node(mode | FULFILLING, &guard),
                };
                if is_data {
                    // SAFETY: we own the unpublished node.
                    unsafe { owned.slot.put_item(item.take().expect("data item")) };
                }
                owned.next.store(h, Ordering::Relaxed);
                let f = match self.head.compare_exchange(
                    h,
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        synq_obs::probe!(StackPushCas);
                        published
                    }
                    Err(e) => {
                        synq_obs::probe!(StackPushCasFail);
                        crate::contention::note_cas_fail();
                        let owned = e.new;
                        if is_data {
                            // SAFETY: unpublished node.
                            item = Some(unsafe { owned.slot.reclaim_item() });
                        }
                        node = Some(owned);
                        continue;
                    }
                };
                // SAFETY: f protected by the guard; we also hold its owner
                // reference.
                let f_ref = unsafe { f.deref() };
                loop {
                    // `m` is safe to dereference under every backend:
                    // `protect` re-checks `f.next` after publishing, so a
                    // skip victim (link rewritten before its retirement)
                    // is never returned; and a *matched* `m` can only be
                    // retired by us, below — its structure reference is
                    // the fulfiller's to release.
                    let m = f_ref.next.load(Ordering::Acquire, &guard);
                    let Some(m_ref) = (unsafe { m.as_ref() }) else {
                        // Everything beneath us was cancelled and skipped:
                        // back out, reclaim our item, retry from scratch.
                        let _ = self.pop_head(f, Shared::null(), &guard);
                        if is_data {
                            // SAFETY: no match happened (next never null
                            // after a successful match), so the item is
                            // still exclusively ours.
                            // (`consumed` stays true so the node's drop
                            // does not double-free the moved-out item.)
                            item = Some(unsafe { f_ref.slot.take_item() });
                        }
                        // Our owner reference.
                        self.release_direct(f.as_raw());
                        break;
                    };
                    let mn = m_ref.next.load(Ordering::Acquire, &guard);
                    if self.try_match(m, f, &guard) {
                        let _ = self.pop_head(f, mn, &guard);
                        let out = if is_data {
                            TransferOutcome::Transferred(None)
                        } else {
                            // SAFETY: m matched to f grants us (f's owner)
                            // unique read access to m's item; m is
                            // refcount-live because its structure
                            // reference is released only below.
                            TransferOutcome::Transferred(Some(unsafe { m_ref.slot.take_item() }))
                        };
                        // The matched node's structure reference is the
                        // fulfiller's alone to release (helpers and the
                        // waiter's help-pop pop the pair without touching
                        // it). That keeps `m` alive for the item read
                        // above even when a helper popped the pair first.
                        self.release_structure_ref(m, &guard);
                        // Our owner reference on f.
                        self.release_direct(f.as_raw());
                        return RawStart::Done(out);
                    }
                    // m was cancelled: skip and release it.
                    if f_ref
                        .next
                        .compare_exchange(m, mn, Ordering::AcqRel, Ordering::Acquire, &guard)
                        .is_ok()
                    {
                        self.release_structure_ref(m, &guard);
                    }
                }
                continue;
            }

            // Case 3: someone else's fulfilling node on top — help it.
            let m = h_ref.next.load(Ordering::Acquire, &guard);
            // Re-validate the root before touching `m`: if `h` was popped,
            // its fulfiller may retire the matched node without `h.next`
            // ever changing. Seeing `head == h` *after* the protecting
            // load above is conclusive — popped nodes are never re-pushed
            // and the slot keeps `h`'s address from being recycled — and
            // the fulfiller's release only happens once `h` is off the
            // head, so `m` is not yet retired and our protection holds.
            if !self.head.load(Ordering::Acquire, &guard).ptr_eq(&h) {
                continue;
            }
            match unsafe { m.as_ref() } {
                None => {
                    let _ = self.pop_head(h, Shared::null(), &guard);
                }
                Some(m_ref) => {
                    let mn = m_ref.next.load(Ordering::Acquire, &guard);
                    if self.try_match(m, h, &guard) {
                        synq_obs::probe!(StackHelped);
                        // Pop the pair; the matched node's structure
                        // reference is left for its fulfiller.
                        let _ = self.pop_head(h, mn, &guard);
                    } else if h_ref
                        .next
                        .compare_exchange(m, mn, Ordering::AcqRel, Ordering::Acquire, &guard)
                        .is_ok()
                    {
                        self.release_structure_ref(m, &guard);
                    }
                }
            }
        }
    }

    /// Waits on our freshly pushed node; touches only refcount-held nodes,
    /// so no reclaimer guard is held while waiting. The spin-then-park loop
    /// and the cancel arbitration are the shared [`WaitSlot`] engine's; the
    /// match token it reports back is the fulfilling node's address.
    fn await_fulfill(
        &self,
        node_raw: *const SNode<T, R>,
        is_data: bool,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        // SAFETY: we hold the owner reference.
        let node = unsafe { &*node_raw };
        let verdict = node.slot.await_outcome(deadline, token, &self.spin);
        self.finish_wait(node_raw, is_data, verdict)
    }

    /// Epilogue shared by the blocking and poll-mode wait loops: resolves a
    /// terminal [`WaitOutcome`] on our own node into a transfer outcome,
    /// helps pop the fulfilling pair, and drops the references we hold.
    fn finish_wait(
        &self,
        node_raw: *const SNode<T, R>,
        is_data: bool,
        verdict: WaitOutcome,
    ) -> TransferOutcome<T> {
        // SAFETY: we hold the owner reference.
        let node = unsafe { &*node_raw };
        match verdict {
            WaitOutcome::Matched(m_token) => {
                let m = m_token as *const SNode<T, R>;
                // Matched. Help pop the fulfilling pair if still on top.
                // Our own structure reference is NOT ours to release here:
                // the fulfiller keeps it alive until it has read our item
                // (or confirmed it need not), then releases it.
                {
                    let guard = R::pin();
                    let h = self.head.load(Ordering::Acquire, &guard);
                    if std::ptr::eq(h.as_raw(), m) {
                        // SAFETY: we hold a reference on our own node.
                        let our_next = node.next.load(Ordering::Acquire, &guard);
                        let _ = self.pop_head(h, our_next, &guard);
                    }
                }
                // SAFETY: the matcher took a reference on `m` for us.
                let m_ref = unsafe { &*m };
                let out = if is_data {
                    // Our item is read by m's owner; nothing to collect.
                    TransferOutcome::Transferred(None)
                } else {
                    // SAFETY: match grants us unique read access to the
                    // fulfiller's item.
                    TransferOutcome::Transferred(Some(unsafe { m_ref.slot.take_item() }))
                };
                // The reference taken on our behalf in try_match.
                self.release_direct(m);
                // Our owner reference.
                self.release_direct(node_raw);
                out
            }
            verdict => {
                // We won the cancel CAS.
                let guard = R::pin();
                self.absorb_cancelled(&guard);
                drop(guard);
                let item = if is_data {
                    // SAFETY: cancellation wins the item back.
                    Some(unsafe { node.slot.take_item() })
                } else {
                    None
                };
                // Our owner reference.
                self.release_direct(node_raw);
                if verdict == WaitOutcome::Cancelled {
                    TransferOutcome::Cancelled(item)
                } else {
                    TransferOutcome::Timeout(item)
                }
            }
        }
    }

    /// Racy peek for the striped router's rescan: is any linked node a
    /// still-`WAITING` producer (`is_data`) / consumer (`!is_data`)? Walks
    /// the whole chain — a fulfilling pair or cancelled nodes on top must
    /// not hide a live waiter beneath, or two waiters on sibling lanes
    /// could miss each other forever. Staleness in both directions is
    /// possible by the time the caller acts; the striped retract protocol
    /// tolerates both. (The mode equality below excludes `FULFILLING`
    /// nodes automatically.)
    pub(crate) fn has_waiting(&self, is_data: bool) -> bool {
        let mode = if is_data { DATA } else { REQUEST };
        let guard = R::pin();
        'restart: loop {
            let root = self.head.load(Ordering::Acquire, &guard);
            let mut p = root;
            // SAFETY: every hop below re-anchors on `head`: while the head
            // is unchanged (popped nodes are never re-pushed; the slot
            // protecting `root` prevents address reuse), all link-validated
            // nodes reached from it are unpopped and unskipped, hence
            // structure-referenced and alive.
            while let Some(n) = unsafe { p.as_ref() } {
                if n.mode == mode && n.slot.is_waiting() {
                    return true;
                }
                let next = n.next.load(Ordering::Acquire, &guard);
                if !self.head.load(Ordering::Acquire, &guard).ptr_eq(&root) {
                    continue 'restart;
                }
                p = next;
            }
            return false;
        }
    }

    /// Diagnostic: number of linked nodes. O(n), test/ablation use only.
    pub fn linked_nodes(&self) -> usize {
        let guard = R::pin();
        'restart: loop {
            let root = self.head.load(Ordering::Acquire, &guard);
            let mut n = 0;
            let mut p = root;
            while !p.is_null() {
                n += 1;
                // SAFETY: as in `has_waiting` — the head re-read below
                // keeps the chain anchored.
                let next = unsafe { p.deref() }.next.load(Ordering::Acquire, &guard);
                if !self.head.load(Ordering::Acquire, &guard).ptr_eq(&root) {
                    continue 'restart;
                }
                p = next;
            }
            return n;
        }
    }
}

/// Small extension so case-1 detection reads naturally.
trait HeadCase {
    fn is_none_or_mode(&self, mode: usize) -> bool;
}

impl<T, R: Reclaimer> HeadCase for Option<&SNode<T, R>> {
    fn is_none_or_mode(&self, mode: usize) -> bool {
        match self {
            None => true,
            Some(n) => n.mode == mode,
        }
    }
}

impl<T: Send, R: Reclaimer> Transferer<T> for SyncDualStack<T, R> {
    fn transfer(
        &self,
        item: Option<T>,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        self.transfer_impl(item, deadline, token)
    }
}

/// A pushed-but-unresolved stack transfer (see
/// [`PollTransferer::start_transfer`]).
///
/// Polling drives the node's [`WaitSlot`] poll-mode wait loop; dropping an
/// unresolved permit cancels exactly like a timed-out blocking waiter. If
/// the cancel CAS loses — a fulfiller already installed its match token —
/// the drop also releases the reference the fulfiller took on its own node
/// on our behalf, and any item it deposited there for us is dropped exactly
/// once by that node's final reference release.
pub struct StackPermit<T: Send, R: Reclaimer = Epoch> {
    stack: Arc<SyncDualStack<T, R>>,
    node: *const SNode<T, R>,
    is_data: bool,
    /// Set when `poll_transfer` returned `Ready`: the references have been
    /// released and `node` must not be touched again.
    done: bool,
}

// SAFETY: the permit is a waiter's handle on its own node — the same
// references a blocking waiter thread holds — and the stack is `Sync`; the
// raw pointer is kept alive by the reference count.
unsafe impl<T: Send, R: Reclaimer> Send for StackPermit<T, R> {}

impl<T: Send, R: Reclaimer> StackPermit<T, R> {
    /// Resolves the permit by blocking — the same spin-then-park wait a
    /// blocking `transfer` performs, on the already-pushed node. The
    /// striped router uses this to downgrade a poll-mode publication into a
    /// blocking wait once its post-publish rescan comes up empty.
    pub(crate) fn wait(
        mut self,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> TransferOutcome<T> {
        self.done = true;
        // SAFETY: `done` was false, so the owner reference is still held.
        let node = unsafe { &*self.node };
        let verdict = node.slot.await_outcome(deadline, token, &self.stack.spin);
        self.stack.finish_wait(self.node, self.is_data, verdict)
    }
}

impl<T: Send, R: Reclaimer> PendingTransfer<T> for StackPermit<T, R> {
    fn poll_transfer(
        &mut self,
        waker: &Waker,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> Poll<TransferOutcome<T>> {
        assert!(!self.done, "StackPermit polled after completion");
        // SAFETY: `done` is false, so the owner reference is still held.
        let node = unsafe { &*self.node };
        match node.slot.poll_outcome(waker, deadline, token) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(verdict) => {
                self.done = true;
                Poll::Ready(self.stack.finish_wait(self.node, self.is_data, verdict))
            }
        }
    }
}

impl<T: Send, R: Reclaimer> Drop for StackPermit<T, R> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // SAFETY: the owner reference is still held.
        let node = unsafe { &*self.node };
        if node.slot.try_cancel() {
            // Cancel won: retract like a timed-out waiter, settling the
            // unsent item now (the blocking path hands it back to the
            // caller; a dropped future has no caller, so drop it here).
            if self.is_data {
                // SAFETY: cancellation wins back item ownership.
                drop(unsafe { node.slot.take_item() });
            }
            let guard = R::pin();
            self.stack.absorb_cancelled(&guard);
            drop(guard);
        } else if let Some(m_token) = node.slot.matched_token() {
            // Cancel lost: a fulfiller matched us and took a reference on
            // its own node (the token) on our behalf. Release it without
            // reading the item — if it deposited one for us, that node's
            // final release drops it exactly once.
            self.stack.release_direct(m_token as *const SNode<T, R>);
        }
        // Our owner reference, in every case.
        self.stack.release_direct(self.node);
    }
}

impl<T: Send, R: Reclaimer> std::fmt::Debug for StackPermit<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackPermit")
            .field("is_data", &self.is_data)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<T: Send, R: Reclaimer> PollTransferer<T> for SyncDualStack<T, R> {
    type Permit = StackPermit<T, R>;

    fn start_transfer(this: &Arc<Self>, item: Option<T>) -> StartTransfer<T, StackPermit<T, R>> {
        let is_data = item.is_some();
        // Never/None: poll-mode callers apply deadline and cancellation on
        // each poll; the lock-free phase must always publish.
        match this.start_impl(item, Deadline::Never, None) {
            RawStart::Done(outcome) => StartTransfer::Complete(outcome),
            RawStart::Published(node) => StartTransfer::Pending(StackPermit {
                stack: Arc::clone(this),
                node,
                is_data,
                done: false,
            }),
        }
    }
}

impl<T, R: Reclaimer> Drop for SyncDualStack<T, R> {
    fn drop(&mut self) {
        // SAFETY: exclusive access — no protection needed.
        let guard = unsafe { R::unprotected() };
        let mut p = self.head.load(Ordering::Relaxed, &guard);
        while !p.is_null() {
            // SAFETY: exclusive access; remaining references are the
            // structure's.
            let node = unsafe { p.deref() };
            let next = node.next.load(Ordering::Relaxed, &guard);
            unsafe { SNode::release(p.as_raw(), |n| SNode::dealloc(n)) };
            p = next;
        }
    }
}

impl<T, R: Reclaimer> std::fmt::Debug for SyncDualStack<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("SyncDualStack { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{SyncChannel, TimedSyncChannel};
    use std::sync::Arc;
    use std::thread;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_and_offer_on_empty_fail() {
        let s: SyncDualStack<u32> = SyncDualStack::new();
        assert_eq!(s.poll(), None);
        assert_eq!(s.offer(1), Err(1));
        assert_eq!(s.linked_nodes(), 0);
    }

    #[test]
    fn put_take_pair() {
        let s = Arc::new(SyncDualStack::new());
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || s2.take());
        s.put(31u32);
        assert_eq!(t.join().unwrap(), 31);
    }

    #[test]
    fn hazard_backend_put_take_pair() {
        let s: Arc<SyncDualStack<u32, synq_reclaim::Hazard>> = Arc::new(SyncDualStack::new_in());
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || s2.take());
        s.put(47u32);
        assert_eq!(t.join().unwrap(), 47);
        assert_eq!(s.linked_nodes(), 0);
    }

    #[test]
    fn hazard_backend_timeout_storm_is_absorbed() {
        let s: SyncDualStack<u32, synq_reclaim::Hazard> = SyncDualStack::new_in();
        for i in 0..200 {
            let _ = s.offer_timeout(i, Duration::from_micros(1));
        }
        let _ = s.poll();
        assert!(
            s.linked_nodes() <= 2,
            "cancelled nodes built up: {}",
            s.linked_nodes()
        );
    }

    #[test]
    fn take_then_put() {
        let s = Arc::new(SyncDualStack::new());
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || s2.put("x"));
        assert_eq!(s.take(), "x");
        t.join().unwrap();
    }

    #[test]
    fn lifo_pairing_among_waiting_producers() {
        // With producers 0..4 stacked (0 pushed first), consumers must pair
        // with the most recent producer first.
        let s = Arc::new(SyncDualStack::new());
        let mut producers = Vec::new();
        for i in 0..4u32 {
            let s2 = Arc::clone(&s);
            producers.push(thread::spawn(move || s2.put(i)));
            while s.linked_nodes() < (i + 1) as usize {
                thread::yield_now();
            }
        }
        for expect in (0..4u32).rev() {
            assert_eq!(s.take(), expect);
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn poll_timeout_expires_and_absorbs() {
        let s: SyncDualStack<u8> = SyncDualStack::new();
        let start = Instant::now();
        assert_eq!(s.poll_timeout(Duration::from_millis(25)), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
        let _ = s.poll();
        assert_eq!(s.linked_nodes(), 0);
    }

    #[test]
    fn offer_timeout_returns_item() {
        let s: SyncDualStack<String> = SyncDualStack::new();
        let back = s
            .offer_timeout("v".to_string(), Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(back, "v");
    }

    #[test]
    fn timeout_storm_is_absorbed() {
        let s: SyncDualStack<u32> = SyncDualStack::new();
        for i in 0..200 {
            let _ = s.offer_timeout(i, Duration::from_micros(1));
        }
        let _ = s.poll();
        assert!(
            s.linked_nodes() <= 2,
            "cancelled nodes built up: {}",
            s.linked_nodes()
        );
    }

    #[test]
    fn cancellation_interrupts_waiting_take() {
        let s: Arc<SyncDualStack<u8>> = Arc::new(SyncDualStack::new());
        let token = CancelToken::new();
        let canceller = token.canceller();
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || s2.take_with(Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(25));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(None) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn values_conserved_under_stress() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER: usize = 500;
        let s = Arc::new(SyncDualStack::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    s.put(p * PER + i);
                }
            }));
        }
        let sums: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let mut sum = 0usize;
                    for _ in 0..(PRODUCERS * PER / CONSUMERS) {
                        sum += s.take();
                    }
                    sum
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = sums.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..PRODUCERS * PER).sum::<usize>());
        assert_eq!(s.linked_nodes(), 0);
    }

    #[test]
    fn hazard_backend_values_conserved_under_stress() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER: usize = 250;
        let s: Arc<SyncDualStack<usize, synq_reclaim::Hazard>> = Arc::new(SyncDualStack::new_in());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    s.put(p * PER + i);
                }
            }));
        }
        let sums: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let mut sum = 0usize;
                    for _ in 0..(PRODUCERS * PER / CONSUMERS) {
                        sum += s.take();
                    }
                    sum
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = sums.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..PRODUCERS * PER).sum::<usize>());
        assert_eq!(s.linked_nodes(), 0);
    }

    #[test]
    fn mixed_timed_and_untimed_under_contention() {
        // Producers use finite patience; consumers are patient. Every item
        // that a producer reports as transferred must be received exactly
        // once.
        use std::sync::atomic::AtomicUsize;
        const PRODUCERS: usize = 4;
        const PER: usize = 300;
        let s = Arc::new(SyncDualStack::new());
        let delivered = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..PRODUCERS {
            let s = Arc::clone(&s);
            let delivered = Arc::clone(&delivered);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    if s.offer_timeout(i, Duration::from_micros(200)).is_ok() {
                        delivered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        let stop = Arc::new(AtomicUsize::new(0));
        let consumer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut got = 0usize;
                loop {
                    if let Some(_v) = s.poll_timeout(Duration::from_millis(1)) {
                        got += 1;
                    } else if stop.load(Ordering::Relaxed) == 1 {
                        // Drain anything still in flight.
                        while s.poll_timeout(Duration::from_millis(5)).is_some() {
                            got += 1;
                        }
                        return got;
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        let got = consumer.join().unwrap();
        assert_eq!(got, delivered.load(Ordering::Relaxed));
    }

    #[test]
    fn drop_frees_pending_data() {
        static DROPS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let s: SyncDualStack<D> = SyncDualStack::new();
            for _ in 0..3 {
                let r = s.offer_timeout(D, Duration::from_micros(1));
                drop(r);
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }
}
