//! Treiber's lock-free stack (IBM technical report RJ 5118, 1986).
//!
//! The ancestor of the paper's dual stack: a singly linked list with a
//! single CAS-updated `head` pointer. Push and pop each retry one CAS under
//! contention; exponential backoff keeps the head cache line from
//! thrashing.

use std::mem::ManuallyDrop;
use std::sync::atomic::Ordering;
use synq_primitives::{Backoff, CachePadded};
use synq_reclaim::{Atomic, Epoch, Owned, Reclaimer, Shield};

struct Node<T, R: Reclaimer> {
    value: ManuallyDrop<T>,
    next: Atomic<Node<T, R>, R>,
}

/// A lock-free LIFO stack.
///
/// # Examples
///
/// ```
/// use synq_classic::TreiberStack;
///
/// let stack = TreiberStack::new();
/// stack.push(1);
/// stack.push(2);
/// assert_eq!(stack.pop(), Some(2));
/// assert_eq!(stack.pop(), Some(1));
/// assert_eq!(stack.pop(), None);
/// ```
///
/// A reclamation backend other than the default epoch collector is selected
/// with the second type parameter (see [`Reclaimer`]):
///
/// ```
/// use synq_classic::TreiberStack;
/// use synq_reclaim::Hazard;
///
/// let stack: TreiberStack<u32, Hazard> = TreiberStack::new_in();
/// stack.push(1);
/// assert_eq!(stack.pop(), Some(1));
/// ```
pub struct TreiberStack<T, R: Reclaimer = Epoch> {
    /// Padded: the single contended word of the whole structure.
    head: CachePadded<Atomic<Node<T, R>, R>>,
}

const _: () = assert!(std::mem::align_of::<TreiberStack<u8>>() >= 128);

impl<T, R: Reclaimer> Default for TreiberStack<T, R> {
    fn default() -> Self {
        Self::new_in()
    }
}

impl<T> TreiberStack<T> {
    /// Creates an empty stack under the default epoch reclaimer. (Kept
    /// non-generic so bare `TreiberStack::new()` call sites infer the
    /// default backend; use [`TreiberStack::new_in`] to pick another.)
    pub fn new() -> Self {
        Self::new_in()
    }
}

impl<T, R: Reclaimer> TreiberStack<T, R> {
    /// Creates an empty stack under the reclamation backend `R`.
    pub fn new_in() -> Self {
        TreiberStack {
            head: CachePadded::new(Atomic::null()),
        }
    }

    /// Pushes a value on top of the stack.
    pub fn push(&self, value: T) {
        let guard = R::pin();
        let mut node = Owned::new(Node {
            value: ManuallyDrop::new(value),
            next: Atomic::null(),
        });
        let backoff = Backoff::new();
        let mut head = self.head.load(Ordering::Relaxed, &guard);
        loop {
            node.next.store(head, Ordering::Relaxed);
            match self.head.compare_exchange(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
                &guard,
            ) {
                Ok(_) => return,
                Err(e) => {
                    head = e.current;
                    node = e.new;
                    backoff.spin();
                }
            }
        }
    }

    /// Pops the most recently pushed value, or `None` if empty.
    pub fn pop(&self) -> Option<T> {
        let guard = R::pin();
        let backoff = Backoff::new();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            let node = unsafe { head.as_ref() }?;
            let next = node.next.load(Ordering::Relaxed, &guard);
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, &guard)
                .is_ok()
            {
                // We own the node's value now; the node itself is retired
                // (the value was moved out, so the deferred Box drop frees
                // only the skeleton).
                let value = unsafe { std::ptr::read(&*node.value) };
                let addr = head.as_raw() as usize;
                unsafe {
                    guard.defer_retire(addr, move || drop(Box::from_raw(addr as *mut Node<T, R>)))
                };
                return Some(value);
            }
            backoff.spin();
        }
    }

    /// True if the stack was empty at the moment of the check.
    pub fn is_empty(&self) -> bool {
        let guard = R::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T, R: Reclaimer> Drop for TreiberStack<T, R> {
    fn drop(&mut self) {
        // SAFETY: exclusive access in Drop.
        let guard = unsafe { R::unprotected() };
        let mut head = self.head.load(Ordering::Relaxed, &guard);
        while !head.is_null() {
            // SAFETY: exclusive access; nodes were allocated by push.
            let mut owned = unsafe { head.into_owned() };
            head = owned.next.load(Ordering::Relaxed, &guard);
            unsafe { ManuallyDrop::drop(&mut owned.value) };
        }
    }
}

fn _assert_send_sync() {
    fn check<X: Send + Sync>() {}
    check::<TreiberStack<usize>>();
    check::<TreiberStack<usize, synq_reclaim::Hazard>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lifo_order_single_thread() {
        let s = TreiberStack::new();
        for i in 0..100 {
            s.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn pop_empty_is_none() {
        let s: TreiberStack<u8> = TreiberStack::new();
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn hazard_backend_lifo_order() {
        let s: TreiberStack<u32, synq_reclaim::Hazard> = TreiberStack::new_in();
        for i in 0..100 {
            s.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1_000;
        let s = Arc::new(TreiberStack::new());
        let popped = Arc::new(std::sync::Mutex::new(HashSet::new()));
        let pop_count = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for t in 0..THREADS {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in 0..PER_THREAD {
                    s.push(t * PER_THREAD + i);
                }
            }));
        }
        for _ in 0..THREADS {
            let s = Arc::clone(&s);
            let popped = Arc::clone(&popped);
            let pop_count = Arc::clone(&pop_count);
            handles.push(thread::spawn(move || {
                let mut local = Vec::new();
                while pop_count.load(Ordering::Relaxed) < THREADS * PER_THREAD {
                    if let Some(v) = s.pop() {
                        local.push(v);
                        pop_count.fetch_add(1, Ordering::Relaxed);
                    } else {
                        thread::yield_now();
                    }
                }
                popped.lock().unwrap().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let popped = popped.lock().unwrap();
        assert_eq!(popped.len(), THREADS * PER_THREAD, "duplicate or lost pops");
        assert!(s.pop().is_none());
    }

    #[test]
    fn drop_releases_remaining_values() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let s = TreiberStack::new();
            for _ in 0..10 {
                s.push(D);
            }
            drop(s.pop()); // one via pop
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }
}
