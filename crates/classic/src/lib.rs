//! Classic nonblocking data structures that the paper's synchronous queues
//! descend from.
//!
//! > "Our new algorithms add support for time-out and for bidirectional
//! > synchronous waiting to our previous nonblocking dual queue and dual
//! > stack algorithms \[19\] (those in turn were derived from the classic
//! > Treiber stack \[21\] and the M&S queue \[14\])."
//!
//! This crate provides that full lineage:
//!
//! * [`TreiberStack`] — Treiber's lock-free LIFO stack (1986).
//! * [`MsQueue`] — the Michael & Scott lock-free FIFO queue (1996).
//! * [`DualQueue`] — the *nonsynchronous* dual queue of Scherer & Scott
//!   (2004): consumers that arrive early insert *reservations*; producers
//!   never wait. Exposes the first-class request/follow-up API of the
//!   paper's Listing 2.
//! * [`DualStack`] — the nonsynchronous dual stack (same paper), LIFO.
//!
//! All four are lock-free and use [`synq_reclaim`] for safe memory
//! reclamation.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dual_queue;
pub mod dual_stack;
pub mod msqueue;
pub mod treiber;

pub use dual_queue::{DequeueTicket, DualQueue};
pub use dual_stack::{DualStack, PopTicket};
pub use msqueue::MsQueue;
pub use treiber::TreiberStack;
