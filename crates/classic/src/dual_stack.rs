//! The *nonsynchronous* dual stack of Scherer & Scott (DISC 2004) — the
//! direct ancestor of the paper's synchronous dual stack.
//!
//! A total LIFO stack in which early poppers insert *reservations* and
//! pushers never wait. Fulfillment uses the same annihilating-fulfilling-
//! node protocol as the synchronous version (Figure 2): a pusher finding a
//! reservation on top pushes a `FULFILLING` data node above it, any thread
//! can help complete the match, and the pair pops together. The returned
//! [`PopTicket`] exposes the request/follow-up/abort interface of the
//! paper's Listing 2.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use synq_primitives::{CachePadded, Parker, WaiterCell};
use synq_reclaim::{self as epoch, Atomic, Guard, Owned, Shared};

const REQUEST: usize = 0;
const DATA: usize = 1;
const FULFILLING: usize = 2;

struct Node<T> {
    mode: usize,
    /// null = waiting; self = cancelled; else = the fulfilling node.
    match_: AtomicPtr<Node<T>>,
    item: UnsafeCell<MaybeUninit<T>>,
    consumed: AtomicBool,
    next: Atomic<Node<T>>,
    waiter: WaiterCell,
    refs: AtomicUsize,
    unlinked: AtomicBool,
}

impl<T> Node<T> {
    fn new(mode: usize, refs: usize) -> Owned<Node<T>> {
        Owned::new(Node {
            mode,
            match_: AtomicPtr::new(ptr::null_mut()),
            item: UnsafeCell::new(MaybeUninit::uninit()),
            consumed: AtomicBool::new(false),
            next: Atomic::null(),
            waiter: WaiterCell::new(),
            refs: AtomicUsize::new(refs),
            unlinked: AtomicBool::new(false),
        })
    }

    fn is_fulfilling(&self) -> bool {
        self.mode & FULFILLING != 0
    }

    fn is_data(&self) -> bool {
        self.mode & DATA != 0
    }

    fn is_cancelled(&self) -> bool {
        std::ptr::eq(
            self.match_.load(Ordering::Acquire),
            self as *const _ as *mut _,
        )
    }

    unsafe fn take_item(&self) -> T {
        let was = self.consumed.swap(true, Ordering::AcqRel);
        debug_assert!(!was, "item taken twice");
        // SAFETY: caller holds exclusive slot access.
        unsafe { (*self.item.get()).assume_init_read() }
    }

    unsafe fn release(ptr_: *const Node<T>) {
        // SAFETY: caller owns one reference.
        let node = unsafe { &*ptr_ };
        if node.refs.fetch_sub(1, Ordering::Release) == 1 {
            std::sync::atomic::fence(Ordering::Acquire);
            // SAFETY: last reference.
            let mut owned = unsafe { Box::from_raw(ptr_ as *mut Node<T>) };
            if owned.is_data() && !*owned.consumed.get_mut() {
                // SAFETY: data nodes hold an item until consumed.
                unsafe { (*owned.item.get()).assume_init_drop() };
            }
            drop(owned);
        }
    }
}

/// Ticket returned by [`DualStack::pop_reserve`] (paper Listing 2).
pub struct PopTicket<'s, T: Send> {
    stack: &'s DualStack<T>,
    state: TicketState<T>,
}

enum TicketState<T> {
    Ready(Option<T>),
    Pending(*const Node<T>),
    Finished,
}

/// The nonsynchronous dual stack.
///
/// # Examples
///
/// ```
/// use synq_classic::DualStack;
///
/// let s = DualStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.try_pop(), Some(2)); // LIFO
/// let mut ticket = s.pop_reserve();  // early popper reserves
/// assert_eq!(ticket.try_followup(), Some(1));
/// ```
pub struct DualStack<T> {
    /// Padded: every operation CASes `head`, so it owns its line.
    head: CachePadded<Atomic<Node<T>>>,
}

const _: () = assert!(std::mem::align_of::<DualStack<u8>>() >= 128);

// SAFETY: same argument as synq::SyncDualStack.
unsafe impl<T: Send> Send for DualStack<T> {}
unsafe impl<T: Send> Sync for DualStack<T> {}

impl<T: Send> Default for DualStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> DualStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        DualStack {
            head: CachePadded::new(Atomic::null()),
        }
    }

    fn release_structure_ref<'g>(&self, node: Shared<'g, Node<T>>, guard: &'g Guard) {
        // SAFETY: protected by the guard.
        if unsafe { node.deref() }
            .unlinked
            .swap(true, Ordering::AcqRel)
        {
            return;
        }
        let raw = node.as_raw() as usize;
        // SAFETY: deferred past the grace period.
        unsafe {
            guard.defer_unchecked(move || Node::release(raw as *const Node<T>));
        }
    }

    fn pop_head<'g>(
        &self,
        h: Shared<'g, Node<T>>,
        new_head: Shared<'g, Node<T>>,
        extra: Option<Shared<'g, Node<T>>>,
        guard: &'g Guard,
    ) -> bool {
        if self
            .head
            .compare_exchange(h, new_head, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            self.release_structure_ref(h, guard);
            if let Some(m) = extra {
                self.release_structure_ref(m, guard);
            }
            true
        } else {
            false
        }
    }

    fn try_match<'g>(&self, m: Shared<'g, Node<T>>, f: Shared<'g, Node<T>>, _g: &'g Guard) -> bool {
        // SAFETY: both protected.
        let m_ref = unsafe { m.deref() };
        let f_ref = unsafe { f.deref() };
        f_ref.refs.fetch_add(1, Ordering::AcqRel);
        match m_ref.match_.compare_exchange(
            ptr::null_mut(),
            f.as_raw() as *mut Node<T>,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                m_ref.waiter.wake();
                true
            }
            Err(actual) => {
                // SAFETY: revoke the speculative reference.
                unsafe { Node::release(f.as_raw()) };
                std::ptr::eq(actual, f.as_raw())
            }
        }
    }

    fn absorb_cancelled(&self, guard: &Guard) {
        loop {
            let h = self.head.load(Ordering::Acquire, guard);
            let Some(h_ref) = (unsafe { h.as_ref() }) else {
                return;
            };
            if !h_ref.is_cancelled() {
                return;
            }
            let next = h_ref.next.load(Ordering::Acquire, guard);
            let _ = self.pop_head(h, next, None, guard);
        }
    }

    /// Runs the annihilation protocol with `f` (our fulfilling node, just
    /// pushed at the head). Returns the matched node's item for REQUEST
    /// fulfillers, `None` for DATA fulfillers, or `Err(())` if every node
    /// beneath was cancelled (caller retries).
    fn fulfill<'g>(&self, f: Shared<'g, Node<T>>, guard: &'g Guard) -> Result<Option<T>, ()> {
        // SAFETY: protected + we hold the owner reference.
        let f_ref = unsafe { f.deref() };
        loop {
            let m = f_ref.next.load(Ordering::Acquire, guard);
            let Some(m_ref) = (unsafe { m.as_ref() }) else {
                let _ = self.pop_head(f, Shared::null(), None, guard);
                return Err(());
            };
            let mn = m_ref.next.load(Ordering::Acquire, guard);
            if self.try_match(m, f, guard) {
                let _ = self.pop_head(f, mn, Some(m), guard);
                return Ok(if f_ref.is_data() {
                    None
                } else {
                    // SAFETY: the match grants unique read access.
                    Some(unsafe { m_ref.take_item() })
                });
            }
            // m cancelled: skip it.
            if f_ref
                .next
                .compare_exchange(m, mn, Ordering::AcqRel, Ordering::Acquire, guard)
                .is_ok()
            {
                self.release_structure_ref(m, guard);
            }
        }
    }

    /// Helps the fulfilling node at the head complete its match.
    fn help<'g>(&self, h: Shared<'g, Node<T>>, guard: &'g Guard) {
        // SAFETY: protected.
        let h_ref = unsafe { h.deref() };
        let m = h_ref.next.load(Ordering::Acquire, guard);
        match unsafe { m.as_ref() } {
            None => {
                let _ = self.pop_head(h, Shared::null(), None, guard);
            }
            Some(m_ref) => {
                let mn = m_ref.next.load(Ordering::Acquire, guard);
                if self.try_match(m, h, guard) {
                    let _ = self.pop_head(h, mn, Some(m), guard);
                } else if h_ref
                    .next
                    .compare_exchange(m, mn, Ordering::AcqRel, Ordering::Acquire, guard)
                    .is_ok()
                {
                    self.release_structure_ref(m, guard);
                }
            }
        }
    }

    /// Total push: fulfills the youngest reservation or buffers the value.
    /// Never waits.
    pub fn push(&self, value: T) {
        let mut value = Some(value);
        let mut node: Option<Owned<Node<T>>> = None;
        loop {
            let guard = epoch::pin();
            self.absorb_cancelled(&guard);
            let h = self.head.load(Ordering::Acquire, &guard);
            let h_ref = unsafe { h.as_ref() };

            match h_ref {
                None => {}
                Some(r) if r.is_fulfilling() => {
                    self.help(h, &guard);
                    continue;
                }
                Some(r) if !r.is_data() => {
                    // Reservation on top: push a fulfilling data node.
                    let owned = match node.take() {
                        Some(mut n) => {
                            n.mode = DATA | FULFILLING;
                            n.refs.store(2, Ordering::Relaxed);
                            n
                        }
                        None => Node::new(DATA | FULFILLING, 2),
                    };
                    // SAFETY: unpublished node.
                    unsafe {
                        (*owned.item.get()).write(value.take().expect("value present"));
                    }
                    owned.next.store(h, Ordering::Relaxed);
                    match self.head.compare_exchange(
                        h,
                        owned,
                        Ordering::Release,
                        Ordering::Acquire,
                        &guard,
                    ) {
                        Ok(f) => {
                            match self.fulfill(f, &guard) {
                                Ok(_) => {
                                    // SAFETY: owner reference.
                                    unsafe { Node::release(f.as_raw()) };
                                    return;
                                }
                                Err(()) => {
                                    // Backed out: reclaim the item; the
                                    // node was released from the structure
                                    // side, drop our owner reference.
                                    // SAFETY: no match occurred, item ours.
                                    let f_ref = unsafe { f.deref() };
                                    value = Some(unsafe { f_ref.take_item() });
                                    unsafe { Node::release(f.as_raw()) };
                                    continue;
                                }
                            }
                        }
                        Err(e) => {
                            let owned = e.new;
                            // SAFETY: unpublished.
                            value = Some(unsafe { (*owned.item.get()).assume_init_read() });
                            node = Some(owned);
                            continue;
                        }
                    }
                }
                Some(_) => {} // data on top: buffer below
            }

            // Empty or data on top: push a plain data node (refs = 1, the
            // structure's only — pushers never wait in the nonsync stack).
            let owned = match node.take() {
                Some(mut n) => {
                    // The node may have been prepared for a fulfilling
                    // attempt (refs = 2) in an earlier iteration.
                    n.mode = DATA;
                    n.refs.store(1, Ordering::Relaxed);
                    n
                }
                None => Node::new(DATA, 1),
            };
            // SAFETY: unpublished node.
            unsafe {
                (*owned.item.get()).write(value.take().expect("value present"));
            }
            owned.next.store(h, Ordering::Relaxed);
            match self
                .head
                .compare_exchange(h, owned, Ordering::Release, Ordering::Acquire, &guard)
            {
                Ok(_) => return,
                Err(e) => {
                    let owned = e.new;
                    // SAFETY: unpublished.
                    value = Some(unsafe { (*owned.item.get()).assume_init_read() });
                    node = Some(owned);
                    continue;
                }
            }
        }
    }

    /// Request half of the pop: takes the top value if data is present,
    /// otherwise linearizes a reservation.
    pub fn pop_reserve(&self) -> PopTicket<'_, T> {
        let mut node: Option<Owned<Node<T>>> = None;
        loop {
            let guard = epoch::pin();
            self.absorb_cancelled(&guard);
            let h = self.head.load(Ordering::Acquire, &guard);
            let h_ref = unsafe { h.as_ref() };

            match h_ref {
                Some(r) if r.is_fulfilling() => {
                    self.help(h, &guard);
                    continue;
                }
                Some(r) if r.is_data() => {
                    // Data on top: claim it through a fulfilling request.
                    let owned = match node.take() {
                        Some(mut n) => {
                            n.mode = REQUEST | FULFILLING;
                            n.refs.store(2, Ordering::Relaxed);
                            n
                        }
                        None => Node::new(REQUEST | FULFILLING, 2),
                    };
                    owned.next.store(h, Ordering::Relaxed);
                    match self.head.compare_exchange(
                        h,
                        owned,
                        Ordering::Release,
                        Ordering::Acquire,
                        &guard,
                    ) {
                        Ok(f) => match self.fulfill(f, &guard) {
                            Ok(v) => {
                                // SAFETY: owner reference.
                                unsafe { Node::release(f.as_raw()) };
                                debug_assert!(v.is_some());
                                return PopTicket {
                                    stack: self,
                                    state: TicketState::Ready(v),
                                };
                            }
                            Err(()) => {
                                // SAFETY: owner reference.
                                unsafe { Node::release(f.as_raw()) };
                                continue;
                            }
                        },
                        Err(e) => {
                            node = Some(e.new);
                            continue;
                        }
                    }
                }
                _ => {
                    // Empty or reservations: link our reservation.
                    let owned = match node.take() {
                        Some(mut n) => {
                            n.mode = REQUEST;
                            n.refs.store(2, Ordering::Relaxed);
                            n
                        }
                        None => Node::new(REQUEST, 2),
                    };
                    owned.next.store(h, Ordering::Relaxed);
                    match self.head.compare_exchange(
                        h,
                        owned,
                        Ordering::Release,
                        Ordering::Acquire,
                        &guard,
                    ) {
                        Ok(published) => {
                            return PopTicket {
                                stack: self,
                                state: TicketState::Pending(published.as_raw()),
                            };
                        }
                        Err(e) => {
                            node = Some(e.new);
                            continue;
                        }
                    }
                }
            }
        }
    }

    /// Demand pop: reserve then wait.
    pub fn pop(&self) -> T {
        self.pop_reserve().wait()
    }

    /// Totalized pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut ticket = self.pop_reserve();
        match ticket.try_followup() {
            Some(v) => Some(v),
            None => {
                if ticket.abort() {
                    None
                } else {
                    ticket.try_followup()
                }
            }
        }
    }
}

impl<T: Send> PopTicket<'_, T> {
    /// Follow-up: collects the value if the reservation has been fulfilled.
    pub fn try_followup(&mut self) -> Option<T> {
        match &mut self.state {
            TicketState::Ready(v) => {
                let v = v.take();
                self.state = TicketState::Finished;
                v
            }
            TicketState::Finished => None,
            TicketState::Pending(raw) => {
                let raw = *raw;
                // SAFETY: ticket reference.
                let node = unsafe { &*raw };
                let m = node.match_.load(Ordering::Acquire);
                if m.is_null() || std::ptr::eq(m, raw) {
                    return None;
                }
                // Matched by fulfilling data node `m`; the matcher took a
                // reference on it for us.
                // SAFETY: that reference keeps `m` alive for this read.
                let m_ref = unsafe { &*m };
                debug_assert!(m_ref.is_data());
                let v = unsafe { m_ref.take_item() };
                // SAFETY: the reference taken on our behalf.
                unsafe { Node::release(m) };
                // SAFETY: the ticket's own reference.
                unsafe { Node::release(raw) };
                self.state = TicketState::Finished;
                Some(v)
            }
        }
    }

    /// Abort: cancels the reservation; false if already fulfilled.
    pub fn abort(&mut self) -> bool {
        match &self.state {
            TicketState::Ready(_) | TicketState::Finished => false,
            TicketState::Pending(raw) => {
                let raw = *raw;
                // SAFETY: ticket reference.
                let node = unsafe { &*raw };
                if node
                    .match_
                    .compare_exchange(
                        ptr::null_mut(),
                        raw as *mut Node<T>,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    node.waiter.take();
                    let guard = epoch::pin();
                    self.stack.absorb_cancelled(&guard);
                    drop(guard);
                    // SAFETY: ticket reference.
                    unsafe { Node::release(raw) };
                    self.state = TicketState::Finished;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Demand: spin briefly, then park until fulfilled.
    pub fn wait(mut self) -> T {
        if let Some(v) = self.try_followup() {
            return v;
        }
        let raw = match &self.state {
            TicketState::Pending(raw) => *raw,
            _ => unreachable!("followup returned None on finished ticket"),
        };
        // SAFETY: ticket reference.
        let node = unsafe { &*raw };
        let parker = Parker::new();
        let mut spins = 64u32;
        loop {
            if let Some(v) = self.try_followup() {
                return v;
            }
            if spins > 0 {
                spins -= 1;
                std::hint::spin_loop();
                continue;
            }
            node.waiter.register(parker.unparker());
            if !node.match_.load(Ordering::Acquire).is_null() {
                continue;
            }
            parker.park();
        }
    }

    /// Demand with patience.
    pub fn wait_timeout(mut self, patience: Duration) -> Option<T> {
        let deadline = Instant::now() + patience;
        loop {
            if let Some(v) = self.try_followup() {
                return Some(v);
            }
            if Instant::now() >= deadline {
                return if self.abort() {
                    None
                } else {
                    self.try_followup()
                };
            }
            std::thread::yield_now();
        }
    }
}

impl<T: Send> Drop for PopTicket<'_, T> {
    fn drop(&mut self) {
        if matches!(self.state, TicketState::Pending(_)) && !self.abort() {
            drop(self.try_followup());
        }
    }
}

impl<T> Drop for DualStack<T> {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        let mut p = self.head.load(Ordering::Relaxed, &guard);
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let node = unsafe { p.deref() };
            let next = node.next.load(Ordering::Relaxed, &guard);
            unsafe { Node::release(p.as_raw()) };
            p = next;
        }
    }
}

impl<T> std::fmt::Debug for DualStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("DualStack { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lifo_buffering() {
        let s = DualStack::new();
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.try_pop(), Some(3));
        assert_eq!(s.try_pop(), Some(2));
        assert_eq!(s.try_pop(), Some(1));
        assert_eq!(s.try_pop(), None);
    }

    #[test]
    fn reservation_fulfilled_by_later_push() {
        let s = DualStack::new();
        let mut ticket = s.pop_reserve();
        assert_eq!(ticket.try_followup(), None);
        s.push(8);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(v) = ticket.try_followup() {
                assert_eq!(v, 8);
                break;
            }
            assert!(Instant::now() < deadline);
        }
    }

    #[test]
    fn abort_prevents_fulfillment() {
        let s = DualStack::new();
        let mut ticket = s.pop_reserve();
        assert!(ticket.abort());
        s.push(4);
        assert_eq!(s.try_pop(), Some(4));
    }

    #[test]
    fn wait_parks_until_pusher() {
        let s = Arc::new(DualStack::new());
        let s2 = Arc::clone(&s);
        let popper = thread::spawn(move || s2.pop());
        thread::sleep(Duration::from_millis(20));
        s.push(66);
        assert_eq!(popper.join().unwrap(), 66);
    }

    #[test]
    fn wait_timeout_aborts() {
        let s: DualStack<u32> = DualStack::new();
        let ticket = s.pop_reserve();
        assert_eq!(ticket.wait_timeout(Duration::from_millis(20)), None);
        s.push(2);
        assert_eq!(s.try_pop(), Some(2));
    }

    #[test]
    fn pushers_never_block() {
        let s: DualStack<u64> = DualStack::new();
        for i in 0..1_000 {
            s.push(i);
        }
        for i in (0..1_000).rev() {
            assert_eq!(s.try_pop(), Some(i));
        }
    }

    #[test]
    fn dropped_ticket_cancels() {
        let s: DualStack<u32> = DualStack::new();
        drop(s.pop_reserve());
        s.push(1);
        assert_eq!(s.try_pop(), Some(1));
    }

    #[test]
    fn mpmc_conservation() {
        const THREADS: usize = 3;
        const PER: usize = 400;
        let s = Arc::new(DualStack::new());
        let mut handles = Vec::new();
        for p in 0..THREADS {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    s.push((p * PER + i) as u64);
                }
            }));
        }
        let poppers: Vec<_> = (0..THREADS)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || (0..PER).map(|_| s.pop()).sum::<u64>())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = poppers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (0..(THREADS * PER) as u64).sum::<u64>());
    }

    #[test]
    fn drop_frees_buffered_values() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let s = DualStack::new();
            for _ in 0..5 {
                s.push(D);
            }
            drop(s.try_pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }
}
