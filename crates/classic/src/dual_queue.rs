//! The *nonsynchronous* dual queue of Scherer & Scott (DISC 2004) — the
//! direct ancestor of the paper's synchronous dual queue.
//!
//! A total FIFO queue in which early consumers insert *reservations*:
//! `dequeue_reserve` linearizes the request, and the returned ticket's
//! `followup` (paper Listing 2) later collects the value without bus or
//! memory contention — the waiter re-reads only its own node. Producers
//! never wait: `enqueue` either fulfills the oldest reservation or appends
//! a data node and returns.
//!
//! Node lifetime follows the same refcount + epoch discipline as
//! `synq::dual_queue` (see that module's docs); data nodes carry only the
//! structure's reference since no thread waits on them.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use synq_primitives::{CachePadded, Parker, WaiterCell};
use synq_reclaim::{self as epoch, Atomic, Guard, Owned, Shared};

const WAITING: usize = 0;
const CLAIMED: usize = 1;
const FULFILLED: usize = 2;
const CANCELLED: usize = 3;

struct Node<T> {
    state: AtomicUsize,
    item: UnsafeCell<MaybeUninit<T>>,
    consumed: AtomicBool,
    next: Atomic<Node<T>>,
    is_data: bool,
    waiter: WaiterCell,
    refs: AtomicUsize,
    unlinked: AtomicBool,
}

impl<T> Node<T> {
    fn new(is_data: bool, refs: usize) -> Owned<Node<T>> {
        Owned::new(Node {
            state: AtomicUsize::new(WAITING),
            item: UnsafeCell::new(MaybeUninit::uninit()),
            consumed: AtomicBool::new(false),
            next: Atomic::null(),
            is_data,
            waiter: WaiterCell::new(),
            refs: AtomicUsize::new(refs),
            unlinked: AtomicBool::new(false),
        })
    }

    fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) == CANCELLED
    }

    unsafe fn take_item(&self) -> T {
        let was = self.consumed.swap(true, Ordering::AcqRel);
        debug_assert!(!was, "item taken twice");
        // SAFETY: caller holds exclusive slot access.
        unsafe { (*self.item.get()).assume_init_read() }
    }

    unsafe fn release(ptr: *const Node<T>) {
        // SAFETY: caller owns one reference.
        let node = unsafe { &*ptr };
        if node.refs.fetch_sub(1, Ordering::Release) == 1 {
            std::sync::atomic::fence(Ordering::Acquire);
            // SAFETY: last reference.
            let mut owned = unsafe { Box::from_raw(ptr as *mut Node<T>) };
            let has_item = if owned.is_data {
                !*owned.consumed.get_mut()
            } else {
                *owned.state.get_mut() == FULFILLED && !*owned.consumed.get_mut()
            };
            if has_item {
                // SAFETY: slot holds a value per the state machine.
                unsafe { (*owned.item.get()).assume_init_drop() };
            }
            drop(owned);
        }
    }
}

/// Outcome-bearing ticket returned by [`DualQueue::dequeue_reserve`].
///
/// Either the value was available immediately (`Ready`), or a reservation
/// was linked and the holder polls it with
/// [`DequeueTicket::try_followup`] / waits with [`DequeueTicket::wait`] /
/// gives up with [`DequeueTicket::abort`].
pub struct DequeueTicket<'q, T: Send> {
    queue: &'q DualQueue<T>,
    state: TicketState<T>,
}

enum TicketState<T> {
    Ready(Option<T>),
    Pending(*const Node<T>),
    Finished,
}

/// The nonsynchronous dual queue.
///
/// # Examples
///
/// ```
/// use synq_classic::DualQueue;
///
/// let q = DualQueue::new();
/// // Early consumer: linearizes a reservation.
/// let mut ticket = q.dequeue_reserve();
/// assert_eq!(ticket.try_followup(), None); // not fulfilled yet
/// q.enqueue(7); // producer never waits
/// assert_eq!(ticket.wait(), 7);
/// ```
pub struct DualQueue<T> {
    /// Padded apart from `tail`: dequeue-side traffic must not invalidate
    /// enqueuers (the contention-freedom lineage of the dual structures).
    head: CachePadded<Atomic<Node<T>>>,
    tail: CachePadded<Atomic<Node<T>>>,
}

const _: () = assert!(std::mem::align_of::<DualQueue<u8>>() >= 128);
const _: () = assert!(std::mem::size_of::<DualQueue<u8>>() >= 256);

// SAFETY: same argument as synq::SyncDualQueue.
unsafe impl<T: Send> Send for DualQueue<T> {}
unsafe impl<T: Send> Sync for DualQueue<T> {}

impl<T: Send> Default for DualQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> DualQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let dummy = Node::new(false, 1);
        let guard = unsafe { epoch::unprotected() };
        let dummy = dummy.into_shared(&guard);
        let head = Atomic::null();
        let tail = Atomic::null();
        head.store(dummy, Ordering::Relaxed);
        tail.store(dummy, Ordering::Relaxed);
        DualQueue {
            head: CachePadded::new(head),
            tail: CachePadded::new(tail),
        }
    }

    fn advance_head<'g>(
        &self,
        h: Shared<'g, Node<T>>,
        nh: Shared<'g, Node<T>>,
        guard: &'g Guard,
    ) -> bool {
        if self
            .head
            .compare_exchange(h, nh, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            // SAFETY: unlinked by our CAS.
            let was = unsafe { h.deref() }.unlinked.swap(true, Ordering::AcqRel);
            debug_assert!(!was);
            let raw = h.as_raw() as usize;
            // SAFETY: deferred past the grace period.
            unsafe {
                guard.defer_unchecked(move || Node::release(raw as *const Node<T>));
            }
            true
        } else {
            false
        }
    }

    fn absorb_cancelled(&self, guard: &Guard) {
        loop {
            let h = self.head.load(Ordering::Acquire, guard);
            // SAFETY: head never null.
            let hn = unsafe { h.deref() }.next.load(Ordering::Acquire, guard);
            let Some(hn_ref) = (unsafe { hn.as_ref() }) else {
                return;
            };
            if !hn_ref.is_cancelled() {
                return;
            }
            let _ = self.advance_head(h, hn, guard);
        }
    }

    /// Total enqueue: fulfills the oldest reservation or appends data.
    /// Never waits.
    pub fn enqueue(&self, value: T) {
        let mut value = Some(value);
        let mut node: Option<Owned<Node<T>>> = None;
        loop {
            let guard = epoch::pin();
            self.absorb_cancelled(&guard);
            let h = self.head.load(Ordering::Acquire, &guard);
            let t = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: never null.
            let t_ref = unsafe { t.deref() };

            if h.ptr_eq(&t) || t_ref.is_data {
                // Append a data node.
                let n = t_ref.next.load(Ordering::Acquire, &guard);
                if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard)) {
                    continue;
                }
                if !n.is_null() {
                    let _ = self.tail.compare_exchange(
                        t,
                        n,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    continue;
                }
                let owned = match node.take() {
                    Some(n) => n,
                    None => Node::new(true, 1),
                };
                // SAFETY: unpublished node.
                unsafe { (*owned.item.get()).write(value.take().expect("value present")) };
                match t_ref.next.compare_exchange(
                    Shared::null(),
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        let _ = self.tail.compare_exchange(
                            t,
                            published,
                            Ordering::Release,
                            Ordering::Relaxed,
                            &guard,
                        );
                        return;
                    }
                    Err(e) => {
                        let owned = e.new;
                        // SAFETY: unpublished; reclaim value.
                        value = Some(unsafe { (*owned.item.get()).assume_init_read() });
                        node = Some(owned);
                        continue;
                    }
                }
            }

            // Reservations present: fulfill the oldest (Figure 1).
            // SAFETY: head never null.
            let m = unsafe { h.deref() }.next.load(Ordering::Acquire, &guard);
            if !h.ptr_eq(&self.head.load(Ordering::Acquire, &guard)) || m.is_null() {
                continue;
            }
            // SAFETY: reachable under our pin.
            let m_ref = unsafe { m.deref() };
            let fulfilled = if m_ref
                .state
                .compare_exchange(WAITING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: claim grants write access.
                unsafe { (*m_ref.item.get()).write(value.take().expect("value present")) };
                m_ref.state.store(FULFILLED, Ordering::Release);
                m_ref.waiter.wake();
                true
            } else {
                false
            };
            let _ = self.advance_head(h, m, &guard);
            if fulfilled {
                return;
            }
        }
    }

    /// Request half of the dequeue (paper Listing 2): takes a value
    /// immediately if one is present, otherwise linearizes a reservation.
    pub fn dequeue_reserve(&self) -> DequeueTicket<'_, T> {
        let mut node: Option<Owned<Node<T>>> = None;
        loop {
            let guard = epoch::pin();
            self.absorb_cancelled(&guard);
            let h = self.head.load(Ordering::Acquire, &guard);
            let t = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: never null.
            let t_ref = unsafe { t.deref() };

            if h.ptr_eq(&t) || !t_ref.is_data {
                // Empty or reservations: append ours.
                let n = t_ref.next.load(Ordering::Acquire, &guard);
                if !t.ptr_eq(&self.tail.load(Ordering::Acquire, &guard)) {
                    continue;
                }
                if !n.is_null() {
                    let _ = self.tail.compare_exchange(
                        t,
                        n,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    continue;
                }
                let owned = match node.take() {
                    Some(n) => n,
                    None => Node::new(false, 2),
                };
                match t_ref.next.compare_exchange(
                    Shared::null(),
                    owned,
                    Ordering::Release,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(published) => {
                        let _ = self.tail.compare_exchange(
                            t,
                            published,
                            Ordering::Release,
                            Ordering::Relaxed,
                            &guard,
                        );
                        return DequeueTicket {
                            queue: self,
                            state: TicketState::Pending(published.as_raw()),
                        };
                    }
                    Err(e) => {
                        node = Some(e.new);
                        continue;
                    }
                }
            }

            // Data present: take the oldest.
            // SAFETY: head never null.
            let m = unsafe { h.deref() }.next.load(Ordering::Acquire, &guard);
            if !h.ptr_eq(&self.head.load(Ordering::Acquire, &guard)) || m.is_null() {
                continue;
            }
            // SAFETY: reachable under our pin.
            let m_ref = unsafe { m.deref() };
            let mut taken = None;
            if m_ref
                .state
                .compare_exchange(WAITING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: claim grants read access.
                taken = Some(unsafe { m_ref.take_item() });
                m_ref.state.store(FULFILLED, Ordering::Release);
            }
            let _ = self.advance_head(h, m, &guard);
            if let Some(v) = taken {
                return DequeueTicket {
                    queue: self,
                    state: TicketState::Ready(Some(v)),
                };
            }
        }
    }

    /// Demand method: reserve + spin/park followups until fulfilled.
    pub fn dequeue(&self) -> T {
        self.dequeue_reserve().wait()
    }

    /// Totalized dequeue: `None` when no data is present.
    pub fn try_dequeue(&self) -> Option<T> {
        let mut ticket = self.dequeue_reserve();
        match ticket.try_followup() {
            Some(v) => Some(v),
            None => {
                let aborted = ticket.abort();
                if aborted {
                    None
                } else {
                    // Fulfilled between followup and abort.
                    ticket.try_followup()
                }
            }
        }
    }
}

impl<T: Send> DequeueTicket<'_, T> {
    /// Follow-up (paper Listing 2): returns the value if the reservation
    /// has been fulfilled. Contention-free: reads only our own node.
    pub fn try_followup(&mut self) -> Option<T> {
        match &mut self.state {
            TicketState::Ready(v) => {
                let v = v.take();
                self.state = TicketState::Finished;
                v
            }
            TicketState::Pending(raw) => {
                let raw = *raw;
                // SAFETY: the ticket holds one of the node's references.
                let node = unsafe { &*raw };
                if node.state.load(Ordering::Acquire) == FULFILLED {
                    // SAFETY: FULFILLED publishes the producer's write.
                    let v = unsafe { node.take_item() };
                    // SAFETY: the ticket's reference.
                    unsafe { Node::release(raw) };
                    self.state = TicketState::Finished;
                    Some(v)
                } else {
                    None
                }
            }
            TicketState::Finished => None,
        }
    }

    /// Abort (paper Listing 2): cancels the reservation. Returns false if
    /// it was already fulfilled (the value is then collectable via
    /// [`DequeueTicket::try_followup`]).
    pub fn abort(&mut self) -> bool {
        match &self.state {
            TicketState::Ready(_) => false,
            TicketState::Finished => false,
            TicketState::Pending(raw) => {
                let raw = *raw;
                // SAFETY: ticket reference.
                let node = unsafe { &*raw };
                loop {
                    match node.state.compare_exchange(
                        WAITING,
                        CANCELLED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            node.waiter.take();
                            let guard = epoch::pin();
                            self.queue.absorb_cancelled(&guard);
                            drop(guard);
                            // SAFETY: ticket reference.
                            unsafe { Node::release(raw) };
                            self.state = TicketState::Finished;
                            return true;
                        }
                        Err(CLAIMED) => {
                            // A producer is mid-fulfillment; the
                            // reservation can no longer be aborted.
                            std::thread::yield_now();
                            if node.state.load(Ordering::Acquire) == FULFILLED {
                                return false;
                            }
                        }
                        Err(_) => return false, // FULFILLED
                    }
                }
            }
        }
    }

    /// Demand: spin briefly, then park until fulfilled.
    pub fn wait(mut self) -> T {
        if let Some(v) = self.try_followup() {
            return v;
        }
        let raw = match &self.state {
            TicketState::Pending(raw) => *raw,
            _ => unreachable!("followup returned None on non-pending ticket"),
        };
        // SAFETY: ticket reference.
        let node = unsafe { &*raw };
        let parker = Parker::new();
        let mut spins = 64u32;
        loop {
            if node.state.load(Ordering::Acquire) == FULFILLED {
                // SAFETY: FULFILLED publishes the write.
                let v = unsafe { node.take_item() };
                // SAFETY: ticket reference.
                unsafe { Node::release(raw) };
                self.state = TicketState::Finished;
                return v;
            }
            if spins > 0 {
                spins -= 1;
                std::hint::spin_loop();
                continue;
            }
            node.waiter.register(parker.unparker());
            if node.state.load(Ordering::Acquire) == FULFILLED {
                continue;
            }
            parker.park();
        }
    }

    /// Demand with patience; `None` on timeout (the reservation is then
    /// aborted).
    pub fn wait_timeout(mut self, patience: Duration) -> Option<T> {
        let deadline = Instant::now() + patience;
        loop {
            if let Some(v) = self.try_followup() {
                return Some(v);
            }
            if Instant::now() >= deadline {
                return if self.abort() {
                    None
                } else {
                    self.try_followup()
                };
            }
            std::thread::yield_now();
        }
    }
}

impl<T: Send> Drop for DequeueTicket<'_, T> {
    fn drop(&mut self) {
        if matches!(self.state, TicketState::Pending(_)) {
            // Abandoned ticket: cancel the reservation (or collect and drop
            // the value if fulfillment won the race).
            if !self.abort() {
                drop(self.try_followup());
            }
        }
    }
}

impl<T> Drop for DualQueue<T> {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        let mut p = self.head.load(Ordering::Relaxed, &guard);
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let node = unsafe { p.deref() };
            let next = node.next.load(Ordering::Relaxed, &guard);
            unsafe { Node::release(p.as_raw()) };
            p = next;
        }
    }
}

impl<T> std::fmt::Debug for DualQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("DualQueue { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_buffering() {
        let q = DualQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.try_dequeue(), Some(1));
        assert_eq!(q.try_dequeue(), Some(2));
        assert_eq!(q.try_dequeue(), Some(3));
        assert_eq!(q.try_dequeue(), None);
    }

    #[test]
    fn reservation_fulfilled_later() {
        let q = DualQueue::new();
        let mut ticket = q.dequeue_reserve();
        assert_eq!(ticket.try_followup(), None);
        q.enqueue(9);
        // Contention-free followup eventually observes the fulfillment.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(v) = ticket.try_followup() {
                assert_eq!(v, 9);
                break;
            }
            assert!(Instant::now() < deadline);
        }
    }

    #[test]
    fn reservations_fulfilled_in_fifo_order() {
        let q = DualQueue::new();
        let mut t1 = q.dequeue_reserve();
        let mut t2 = q.dequeue_reserve();
        q.enqueue(10);
        q.enqueue(20);
        assert_eq!(t1.try_followup(), Some(10));
        assert_eq!(t2.try_followup(), Some(20));
    }

    #[test]
    fn abort_prevents_fulfillment() {
        let q = DualQueue::new();
        let mut ticket = q.dequeue_reserve();
        assert!(ticket.abort());
        q.enqueue(5);
        // The cancelled reservation was skipped: value still queued.
        assert_eq!(q.try_dequeue(), Some(5));
    }

    #[test]
    fn abort_after_fulfillment_fails_and_value_collectable() {
        let q = DualQueue::new();
        let mut ticket = q.dequeue_reserve();
        q.enqueue(6);
        // Ensure fulfillment landed.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !matches!(ticket.try_followup(), Some(6)) {
            assert!(Instant::now() < deadline);
            // try_followup consumed Finished state? No: returns None until
            // fulfilled, Some exactly once.
        }
        assert!(!ticket.abort());
    }

    #[test]
    fn wait_parks_until_producer() {
        let q = Arc::new(DualQueue::new());
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.dequeue());
        thread::sleep(Duration::from_millis(20));
        q.enqueue(77);
        assert_eq!(consumer.join().unwrap(), 77);
    }

    #[test]
    fn wait_timeout_aborts() {
        let q: DualQueue<u32> = DualQueue::new();
        let ticket = q.dequeue_reserve();
        assert_eq!(ticket.wait_timeout(Duration::from_millis(20)), None);
        q.enqueue(3);
        assert_eq!(q.try_dequeue(), Some(3));
    }

    #[test]
    fn dropped_ticket_cancels_cleanly() {
        let q: DualQueue<u32> = DualQueue::new();
        drop(q.dequeue_reserve());
        q.enqueue(4);
        assert_eq!(q.try_dequeue(), Some(4));
    }

    #[test]
    fn producers_never_block() {
        let q: DualQueue<u64> = DualQueue::new();
        for i in 0..1_000 {
            q.enqueue(i); // would hang the test if enqueue could block
        }
        for i in 0..1_000 {
            assert_eq!(q.try_dequeue(), Some(i));
        }
    }

    #[test]
    fn mpmc_conservation() {
        const PRODUCERS: usize = 3;
        const PER: usize = 500;
        let q = Arc::new(DualQueue::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.enqueue((p * PER + i) as u64);
                }
            }));
        }
        let consumers: Vec<_> = (0..PRODUCERS)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || (0..PER).map(|_| q.dequeue()).sum::<u64>())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (0..(PRODUCERS * PER) as u64).sum::<u64>());
    }

    #[test]
    fn drop_frees_buffered_values() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = DualQueue::new();
            for _ in 0..6 {
                q.enqueue(D);
            }
            drop(q.try_dequeue());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 6);
    }
}
