//! The Michael & Scott lock-free FIFO queue (PODC 1996).
//!
//! The ancestor of the paper's dual queue: a singly linked list with
//! `head` and `tail` pointers and a permanent dummy node at the head.
//! `head` always points at the dummy; the first real element is
//! `head.next`. Lagging tails are repaired by helping (`cas_tail`), which
//! is what makes the queue lock-free rather than merely obstruction-free.

use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;
use synq_primitives::{Backoff, CachePadded};
use synq_reclaim::{Atomic, Epoch, Owned, Reclaimer, Shield};

struct Node<T, R: Reclaimer> {
    /// Uninitialized in the dummy node, initialized in all others. The
    /// value is moved out by the dequeuer that advances the head past it
    /// (at which point the node *becomes* the new dummy).
    value: MaybeUninit<T>,
    next: Atomic<Node<T, R>, R>,
}

/// A lock-free FIFO queue.
///
/// # Examples
///
/// ```
/// use synq_classic::MsQueue;
///
/// let q = MsQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// assert_eq!(q.dequeue(), Some(2));
/// assert_eq!(q.dequeue(), None);
/// ```
///
/// A reclamation backend other than the default epoch collector is selected
/// with the second type parameter (see [`Reclaimer`]):
///
/// ```
/// use synq_classic::MsQueue;
/// use synq_reclaim::Hazard;
///
/// let q: MsQueue<u32, Hazard> = MsQueue::new_in();
/// q.enqueue(1);
/// assert_eq!(q.dequeue(), Some(1));
/// ```
pub struct MsQueue<T, R: Reclaimer = Epoch> {
    /// Dequeuers hammer `head`; padded apart from `tail` so the two
    /// ends of the queue do not false-share (M&S's key scalability trait).
    head: CachePadded<Atomic<Node<T, R>, R>>,
    /// Enqueuers hammer `tail`.
    tail: CachePadded<Atomic<Node<T, R>, R>>,
}

const _: () = assert!(std::mem::align_of::<MsQueue<u8>>() >= 128);
const _: () = assert!(std::mem::size_of::<MsQueue<u8>>() >= 256);

impl<T, R: Reclaimer> Default for MsQueue<T, R> {
    fn default() -> Self {
        Self::new_in()
    }
}

impl<T> MsQueue<T> {
    /// Creates an empty queue (one dummy node) under the default epoch
    /// reclaimer. (Kept non-generic so bare `MsQueue::new()` call sites
    /// infer the default backend; use [`MsQueue::new_in`] to pick another.)
    pub fn new() -> Self {
        Self::new_in()
    }
}

impl<T, R: Reclaimer> MsQueue<T, R> {
    /// Creates an empty queue (one dummy node) under the reclamation
    /// backend `R`.
    pub fn new_in() -> Self {
        let dummy = Owned::new(Node {
            value: MaybeUninit::uninit(),
            next: Atomic::null(),
        });
        // Both head and tail point at the same dummy; we must not double
        // free it, so only `head` is treated as owning in Drop.
        let guard = unsafe { R::unprotected() };
        let dummy = dummy.into_shared(&guard);
        MsQueue {
            head: CachePadded::new(Atomic::from_owned(unsafe { dummy.into_owned() })),
            tail: {
                let a = Atomic::null();
                a.store(dummy, Ordering::Relaxed);
                CachePadded::new(a)
            },
        }
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, value: T) {
        let guard = R::pin();
        let mut node = Owned::new(Node {
            value: MaybeUninit::new(value),
            next: Atomic::null(),
        });
        let backoff = Backoff::new();
        loop {
            let tail = self.tail.load(Ordering::Acquire, &guard);
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::Acquire, &guard);
            if !next.is_null() {
                // Tail is lagging: help advance it and retry.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                continue;
            }
            match tail_ref.next.compare_exchange(
                next,
                node,
                Ordering::Release,
                Ordering::Relaxed,
                &guard,
            ) {
                Ok(new) => {
                    // Swing the tail; failure means someone helped us.
                    let _ = self.tail.compare_exchange(
                        tail,
                        new,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    return;
                }
                Err(e) => {
                    node = e.new;
                    backoff.spin();
                }
            }
        }
    }

    /// Removes and returns the oldest value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        let guard = R::pin();
        let backoff = Backoff::new();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Ordering::Acquire, &guard);
            let next_ref = unsafe { next.as_ref() }?;
            // Keep the tail from pointing at the node we are about to
            // retire (classic M&S consistency step).
            let tail = self.tail.load(Ordering::Acquire, &guard);
            if head.ptr_eq(&tail) {
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, &guard)
                .is_ok()
            {
                // `next` is the new dummy; its value is ours to take (the
                // CAS success also proves `next` was still linked, so this
                // first deref of it is sound under bounded-slot backends).
                // The retired old dummy's value was consumed when it was
                // dequeued (or never written), so the deferred Box drop
                // frees only the skeleton.
                let value = unsafe { next_ref.value.assume_init_read() };
                let addr = head.as_raw() as usize;
                unsafe {
                    guard.defer_retire(addr, move || drop(Box::from_raw(addr as *mut Node<T, R>)))
                };
                return Some(value);
            }
            backoff.spin();
        }
    }

    /// True if the queue was empty at the moment of the check.
    pub fn is_empty(&self) -> bool {
        let guard = R::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        unsafe { head.deref() }
            .next
            .load(Ordering::Acquire, &guard)
            .is_null()
    }
}

impl<T, R: Reclaimer> Drop for MsQueue<T, R> {
    fn drop(&mut self) {
        // SAFETY: exclusive access in Drop.
        let guard = unsafe { R::unprotected() };
        // The head node is the dummy: its value is uninitialized.
        let mut node = self.head.load(Ordering::Relaxed, &guard);
        let mut first = true;
        while !node.is_null() {
            let mut owned = unsafe { node.into_owned() };
            node = owned.next.load(Ordering::Relaxed, &guard);
            if !first {
                unsafe { owned.value.assume_init_drop() };
            }
            first = false;
        }
    }
}

fn _assert_send_sync() {
    fn check<X: Send + Sync>() {}
    check::<MsQueue<usize>>();
    check::<MsQueue<usize, synq_reclaim::Hazard>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let q = MsQueue::new();
        assert!(q.is_empty());
        for i in 0..100 {
            q.enqueue(i);
        }
        assert!(!q.is_empty());
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn hazard_backend_fifo_order() {
        let q: MsQueue<u32, synq_reclaim::Hazard> = MsQueue::new_in();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q = MsQueue::new();
        q.enqueue(1);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO linearizability implies each producer's elements come out in
        // the order that producer inserted them.
        const PRODUCERS: usize = 4;
        const PER: usize = 2_000;
        let q = Arc::new(MsQueue::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.enqueue((p, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [None; PRODUCERS];
        let mut count = 0;
        while let Some((p, i)) = q.dequeue() {
            if let Some(prev) = last[p] {
                assert!(i > prev, "producer {p} order violated: {i} after {prev}");
            }
            last[p] = Some(i);
            count += 1;
        }
        assert_eq!(count, PRODUCERS * PER);
    }

    #[test]
    fn mpmc_conserves_all_values() {
        const THREADS: usize = 4;
        const PER: usize = 2_000;
        let q = Arc::new(MsQueue::new());
        let sum = Arc::new(AtomicUsize::new(0));
        let taken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.enqueue(t * PER + i + 1);
                }
            }));
        }
        for _ in 0..THREADS {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let taken = Arc::clone(&taken);
            handles.push(thread::spawn(move || {
                while taken.load(Ordering::Relaxed) < THREADS * PER {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        taken.fetch_add(1, Ordering::Relaxed);
                    } else {
                        thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expected: usize = (1..=THREADS * PER).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn drop_releases_remaining_values() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = MsQueue::new();
            for _ in 0..10 {
                q.enqueue(D);
            }
            drop(q.dequeue());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }
}
