//! Property tests: the classic structures against their sequential models.

use proptest::prelude::*;
use std::collections::VecDeque;
use synq_classic::{DualQueue, DualStack, MsQueue, TreiberStack};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn treiber_refines_vec_stack(ops in proptest::collection::vec(any::<Option<u16>>(), 0..300)) {
        let stack = TreiberStack::new();
        let mut model = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    stack.push(v);
                    model.push(v);
                }
                None => prop_assert_eq!(stack.pop(), model.pop()),
            }
            prop_assert_eq!(stack.is_empty(), model.is_empty());
        }
        while let Some(expect) = model.pop() {
            prop_assert_eq!(stack.pop(), Some(expect));
        }
        prop_assert_eq!(stack.pop(), None);
    }

    #[test]
    fn msqueue_refines_vecdeque(ops in proptest::collection::vec(any::<Option<u16>>(), 0..300)) {
        let queue = MsQueue::new();
        let mut model = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    queue.enqueue(v);
                    model.push_back(v);
                }
                None => prop_assert_eq!(queue.dequeue(), model.pop_front()),
            }
            prop_assert_eq!(queue.is_empty(), model.is_empty());
        }
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(queue.dequeue(), Some(expect));
        }
        prop_assert_eq!(queue.dequeue(), None);
    }

    #[test]
    fn dual_queue_refines_vecdeque_with_reservations(
        ops in proptest::collection::vec(any::<Option<u16>>(), 0..200),
    ) {
        // Sequential refinement including the reserve/abort path: a
        // `try_dequeue` that finds nothing is internally reserve+abort, so
        // this also exercises reservation cancellation and absorption.
        let queue: DualQueue<u16> = DualQueue::new();
        let mut model = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    queue.enqueue(v);
                    model.push_back(v);
                }
                None => prop_assert_eq!(queue.try_dequeue(), model.pop_front()),
            }
        }
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(queue.try_dequeue(), Some(expect));
        }
        prop_assert_eq!(queue.try_dequeue(), None);
    }

    #[test]
    fn dual_stack_refines_vec_with_reservations(
        ops in proptest::collection::vec(any::<Option<u16>>(), 0..200),
    ) {
        let stack: DualStack<u16> = DualStack::new();
        let mut model = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    stack.push(v);
                    model.push(v);
                }
                None => prop_assert_eq!(stack.try_pop(), model.pop()),
            }
        }
        while let Some(expect) = model.pop() {
            prop_assert_eq!(stack.try_pop(), Some(expect));
        }
        prop_assert_eq!(stack.try_pop(), None);
    }

    #[test]
    fn dual_queue_reservations_fulfilled_fifo(
        reservations in 1usize..6,
        values in proptest::collection::vec(any::<u16>(), 6..12),
    ) {
        // R reservations first, then enough enqueues: tickets must be
        // fulfilled in reservation order with the first R values.
        let queue: DualQueue<u16> = DualQueue::new();
        let mut tickets: Vec<_> = (0..reservations).map(|_| queue.dequeue_reserve()).collect();
        for &v in &values {
            queue.enqueue(v);
        }
        for (i, t) in tickets.iter_mut().enumerate() {
            prop_assert_eq!(t.try_followup(), Some(values[i]), "ticket {}", i);
        }
        // Remaining values come out FIFO.
        for &v in &values[reservations..] {
            prop_assert_eq!(queue.try_dequeue(), Some(v));
        }
    }
}
