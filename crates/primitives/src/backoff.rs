//! Bounded exponential backoff for CAS retry loops.
//!
//! Contention on the head/tail words of a synchronous queue is the dominant
//! scalability limiter the paper identifies; backing off after a failed CAS
//! reduces cache-line ping-pong without introducing blocking. The strategy
//! here mirrors the common two-phase scheme: spin with `core::hint::spin_loop`
//! for a geometrically growing number of iterations, then switch to
//! `thread::yield_now` once spinning exceeds a threshold (important on
//! uniprocessors, where pure spinning merely burns the quantum of the thread
//! we are waiting for).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Exponential backoff helper.
///
/// # Examples
///
/// ```
/// use synq_primitives::Backoff;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let word = AtomicUsize::new(0);
/// let backoff = Backoff::new();
/// while word
///     .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
///     .is_err()
/// {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

/// Seed of the exponential schedule: the very first backoff step busy-waits
/// `BACKOFF_SPIN_SEED` iterations, doubling from there.
pub const BACKOFF_SPIN_SEED: u32 = 1;

/// Exponent of the spin phase's ceiling: steps grow `1, 2, 4, ... 2^BACKOFF_SPIN_LIMIT`
/// and no single [`Backoff::spin`]/[`Backoff::snooze`] call busy-waits more
/// than `2^BACKOFF_SPIN_LIMIT` iterations.
pub const BACKOFF_SPIN_LIMIT: u32 = 6;

/// The fully-grown spin step, `2^BACKOFF_SPIN_LIMIT` iterations. Kept equal
/// to the adaptive wait budget's ceiling ([`crate::ADAPTIVE_SPIN_CAP`]) so
/// the CAS-retry path and the spin-then-park path draw the "cheaper than a
/// context switch" line at the same place; a compile-time assertion in
/// `spin.rs` enforces the pairing.
pub const BACKOFF_SPIN_CAP: u32 = BACKOFF_SPIN_SEED << BACKOFF_SPIN_LIMIT;

/// Past `BACKOFF_YIELD_LIMIT` total steps (spin phase included),
/// [`Backoff::is_completed`] reports saturation and callers typically park.
pub const BACKOFF_YIELD_LIMIT: u32 = 10;

// Short internal aliases; the public names above are the documented API.
const SPIN_LIMIT: u32 = BACKOFF_SPIN_LIMIT;
const YIELD_LIMIT: u32 = BACKOFF_YIELD_LIMIT;

impl Backoff {
    /// Creates a fresh backoff with zero accumulated delay.
    #[inline]
    pub fn new() -> Self {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets the accumulated delay to zero.
    #[inline]
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off without yielding the processor: pure spin. Appropriate
    /// between optimistic CAS retries on a lightly contended word.
    #[inline]
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            core::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off, escalating from spinning to `yield_now` once the budget is
    /// exhausted. Appropriate when the retry may be blocked on another
    /// thread's progress (e.g. helping a fulfilling node).
    #[inline]
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT && !uniprocessor() {
            for _ in 0..(1u32 << step) {
                core::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once the backoff has saturated; callers typically park instead
    /// of continuing to snooze.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

/// Cached result of `available_parallelism() == 1`.
///
/// On a uniprocessor, spinning can never overlap with the peer's execution,
/// so backoff escalates to `yield_now` immediately (the paper: "busy-wait is
/// useless overhead on a uniprocessor").
pub fn uniprocessor() -> bool {
    ncpus() == 1
}

/// Number of hardware threads, cached after the first query.
pub fn ncpus() -> usize {
    static NCPUS: AtomicUsize = AtomicUsize::new(0);
    match NCPUS.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            NCPUS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_grows_and_resets() {
        let b = Backoff::new();
        assert_eq!(b.step.get(), 0);
        b.spin();
        b.spin();
        assert_eq!(b.step.get(), 2);
        b.reset();
        assert_eq!(b.step.get(), 0);
    }

    #[test]
    fn snooze_saturates() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        // Saturated backoff stays saturated.
        b.snooze();
        assert!(b.is_completed());
    }

    #[test]
    fn ncpus_is_positive_and_stable() {
        let a = ncpus();
        let b = ncpus();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    #[test]
    fn default_is_fresh() {
        let b = Backoff::default();
        assert!(!b.is_completed());
    }
}
