//! A counting semaphore.
//!
//! Semaphores are "the original mechanism for scheduler-based
//! synchronization" (paper, footnote a) and the substrate of Hanson's
//! synchronous queue (Listing 1), which uses three of them per queue. Each
//! semaphore holds a counter; `acquire` decrements and waits for the result
//! to be nonnegative, `release` increments and unblocks a waiter if the
//! result is nonpositive. The paper's point — that every acquire/release is
//! a potential source of contention and blocking — is what our benchmark
//! harness measures against.
//!
//! The implementation is a straightforward `Mutex`+`Condvar` monitor with
//! targeted `notify_one` wakeups (a semaphore that did `notify_all` would
//! reintroduce the naive queue's quadratic wakeups and unfairly handicap the
//! Hanson baseline).

use crate::cache_padded::CachePadded;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counting semaphore with blocking, non-blocking and timed acquire.
///
/// The count may be initialized to any `isize`-representable value; Hanson's
/// queue initializes `sync = 0`, `send = 1`, `recv = 0`.
///
/// # Examples
///
/// ```
/// use synq_primitives::Semaphore;
///
/// let sem = Semaphore::new(1);
/// sem.acquire();
/// assert!(!sem.try_acquire());
/// sem.release();
/// assert!(sem.try_acquire());
/// ```
#[derive(Debug)]
pub struct Semaphore {
    /// Monitor state, padded: Hanson's queue packs three semaphores into
    /// one struct, and without padding their mutexes share cache lines —
    /// every `sync` handshake would then invalidate `send`/`recv` holders.
    state: CachePadded<Mutex<State>>,
    cvar: Condvar,
}

const _: () = assert!(std::mem::align_of::<Semaphore>() >= 128);

#[derive(Debug)]
struct State {
    count: i64,
    waiters: usize,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: i64) -> Self {
        Semaphore {
            state: CachePadded::new(Mutex::new(State {
                count: permits,
                waiters: 0,
            })),
            cvar: Condvar::new(),
        }
    }

    /// Blocks until a permit is available, then takes it.
    pub fn acquire(&self) {
        let mut state = self.state.lock().unwrap();
        if state.count <= 0 {
            synq_obs::probe!(SemContended);
        }
        while state.count <= 0 {
            state.waiters += 1;
            state = self.cvar.wait(state).unwrap();
            state.waiters -= 1;
        }
        state.count -= 1;
        synq_obs::probe!(SemAcquires);
    }

    /// Takes a permit if one is immediately available.
    pub fn try_acquire(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        if state.count > 0 {
            state.count -= 1;
            synq_obs::probe!(SemAcquires);
            true
        } else {
            false
        }
    }

    /// Blocks up to `timeout` for a permit. Returns whether one was taken.
    pub fn acquire_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        if state.count <= 0 {
            synq_obs::probe!(SemContended);
        }
        while state.count <= 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            state.waiters += 1;
            let (guard, _) = self.cvar.wait_timeout(state, deadline - now).unwrap();
            state = guard;
            state.waiters -= 1;
        }
        state.count -= 1;
        synq_obs::probe!(SemAcquires);
        true
    }

    /// Returns a permit, waking one waiter if any are blocked.
    pub fn release(&self) {
        let mut state = self.state.lock().unwrap();
        state.count += 1;
        if state.waiters > 0 {
            self.cvar.notify_one();
        }
        drop(state);
    }

    /// Current number of available permits.
    pub fn available(&self) -> i64 {
        self.state.lock().unwrap().count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn initial_permits_respected() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn zero_initial_blocks_until_release() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            s2.release();
        });
        let start = Instant::now();
        s.acquire();
        assert!(start.elapsed() >= Duration::from_millis(15));
        t.join().unwrap();
    }

    #[test]
    fn acquire_timeout_expires() {
        let s = Semaphore::new(0);
        assert!(!s.acquire_timeout(Duration::from_millis(15)));
    }

    #[test]
    fn acquire_timeout_succeeds_when_released() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            s2.release();
        });
        assert!(s.acquire_timeout(Duration::from_secs(30)));
        t.join().unwrap();
    }

    #[test]
    fn mutual_exclusion_invariant() {
        // Classic semaphore-as-lock test: N threads incrementing a counter
        // under a binary semaphore must never observe a torn update.
        let s = Arc::new(Semaphore::new(1));
        let shared = Arc::new(AtomicUsize::new(0));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            let shared = Arc::clone(&shared);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                for _ in 0..500 {
                    s.acquire();
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                    shared.fetch_add(1, Ordering::Relaxed);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    s.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.load(Ordering::Relaxed), 8 * 500);
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn negative_initial_count_requires_extra_releases() {
        let s = Semaphore::new(-1);
        assert!(!s.try_acquire());
        s.release();
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn release_wakes_exactly_enough_waiters() {
        let s = Arc::new(Semaphore::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            let done = Arc::clone(&done);
            handles.push(thread::spawn(move || {
                s.acquire();
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 0);
        s.release();
        s.release();
        let deadline = Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
            thread::yield_now();
        }
        assert_eq!(done.load(Ordering::SeqCst), 2);
        s.release();
        s.release();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
