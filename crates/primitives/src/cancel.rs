//! Cooperative cancellation of waiting operations.
//!
//! The paper requires that "waiting thread\[s\]" can be "asynchronously
//! interrupted" — Java's `Thread.interrupt`. Rust has no ambient thread
//! interruption, so the queues accept an optional [`CancelToken`]: a
//! lightweight flag that waiting loops re-check on every wakeup, paired with
//! a registration list so that cancelling actively *unparks* any thread
//! currently blocked on the token. `ThreadPoolExecutor::shutdown_now` uses
//! this to interrupt idle workers parked in `take`.

use crate::parker::Unparker;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    next_id: AtomicU64,
    waiters: Mutex<Vec<(u64, Unparker)>>,
}

/// A cancellation flag observed by waiting queue operations.
///
/// Cloning produces another handle on the same flag. Use [`Canceller`] (or
/// [`CancelToken::cancel`] from any clone) to trip it.
///
/// # Examples
///
/// ```
/// use synq_primitives::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

/// A send-only handle for tripping a [`CancelToken`].
#[derive(Debug, Clone)]
pub struct Canceller {
    inner: Arc<Inner>,
}

/// Removes the registration on drop, so abandoned waits don't accumulate
/// dead unparkers on long-lived tokens.
#[derive(Debug)]
pub struct Registration<'t> {
    token: &'t CancelToken,
    id: u64,
}

impl CancelToken {
    /// Creates an untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a handle that can only cancel, not wait.
    pub fn canceller(&self) -> Canceller {
        Canceller {
            inner: Arc::clone(&self.inner),
        }
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Trips the token and unparks every registered waiter.
    pub fn cancel(&self) {
        cancel_inner(&self.inner);
    }

    /// Registers `unparker` to be woken if the token is cancelled while the
    /// registration guard is alive. If the token is *already* cancelled the
    /// unparker is woken immediately (so the caller's park cannot hang).
    pub fn register(&self, unparker: Unparker) -> Registration<'_> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .waiters
            .lock()
            .unwrap()
            .push((id, unparker.clone()));
        if self.is_cancelled() {
            unparker.unpark();
        }
        Registration { token: self, id }
    }
}

impl Canceller {
    /// Trips the token and unparks every registered waiter.
    pub fn cancel(&self) {
        cancel_inner(&self.inner);
    }

    /// True once cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }
}

fn cancel_inner(inner: &Inner) {
    if inner.cancelled.swap(true, Ordering::AcqRel) {
        return; // already cancelled; waiters were already woken
    }
    let waiters = std::mem::take(&mut *inner.waiters.lock().unwrap());
    for (_, u) in waiters {
        u.unpark();
    }
}

impl Drop for Registration<'_> {
    fn drop(&mut self) {
        let mut waiters = self.token.inner.waiters.lock().unwrap();
        if let Some(pos) = waiters.iter().position(|(id, _)| *id == self.id) {
            waiters.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parker::Parker;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fresh_token_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.canceller().is_cancelled());
    }

    #[test]
    fn cancel_is_sticky_and_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn cancel_unparks_registered_waiter() {
        let t = CancelToken::new();
        let c = t.canceller();
        let p = Parker::new();
        let _reg = t.register(p.unparker());
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(15));
            c.cancel();
        });
        p.park(); // would hang forever if cancel did not unpark
        assert!(t.is_cancelled());
        h.join().unwrap();
    }

    #[test]
    fn register_on_cancelled_token_wakes_immediately() {
        let t = CancelToken::new();
        t.cancel();
        let p = Parker::new();
        let _reg = t.register(p.unparker());
        assert!(p.park_timeout(Duration::from_secs(5)));
    }

    #[test]
    fn dropped_registration_is_removed() {
        let t = CancelToken::new();
        let p = Parker::new();
        {
            let _reg = t.register(p.unparker());
        }
        t.cancel();
        // The deregistered parker receives no permit.
        assert!(!p.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn many_waiters_all_woken() {
        let t = CancelToken::new();
        let parkers: Vec<Parker> = (0..8).map(|_| Parker::new()).collect();
        let regs: Vec<_> = parkers.iter().map(|p| t.register(p.unparker())).collect();
        t.cancel();
        for p in &parkers {
            assert!(p.park_timeout(Duration::from_secs(5)));
        }
        drop(regs);
    }
}
