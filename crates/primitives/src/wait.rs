//! Pluggable waiting strategies for the shared [`crate::WaitSlot`] engine.
//!
//! The paper's "Pragmatics" section describes one policy — spin briefly,
//! then park — but the structures in this suite need four variants of it:
//! the adaptive default, a fixed budget (for ablations), park-immediately
//! (spinning disabled), and *spin-only* for the elimination arena, whose
//! visits must never deschedule the visiting thread. `WaitStrategy`
//! abstracts exactly the knobs the wait loop consumes so that every
//! structure — and the benchmark harness — can sweep them uniformly.

use crate::spin::{SpinPolicy, DEADLINE_POLL_INTERVAL};

/// How a waiter burns time between publishing its node and being matched.
///
/// Implementors only decide *budget* questions; the protocol itself (the
/// state machine, the cancel CAS, parking/unparking) is fixed by
/// [`crate::WaitSlot::await_outcome`].
pub trait WaitStrategy {
    /// Spin iterations before the first park attempt. `timed` is true when
    /// the wait carries a [`crate::Deadline`] that must be polled, which
    /// makes each spin more expensive — the classic policy spins 16x less.
    fn spin_budget(&self, timed: bool) -> u32;

    /// Whether the waiter may park once its spin budget is exhausted.
    /// Strategies returning `false` (the arena) treat budget exhaustion as
    /// a timeout instead of descheduling.
    fn parks(&self) -> bool {
        true
    }

    /// Poll the deadline and cancellation token only once per this many
    /// spin iterations. `Instant::now()` is a vDSO call but still tens of
    /// nanoseconds — hammering it every pass would dominate short spins.
    /// Defaults to [`DEADLINE_POLL_INTERVAL`].
    fn deadline_poll_interval(&self) -> u32 {
        DEADLINE_POLL_INTERVAL
    }

    /// Feedback from a finished wait: how many iterations it spun, how many
    /// times it parked, and whether it ended in a match (as opposed to a
    /// timeout or cancellation). The wait loop calls this exactly once per
    /// wait, after the outcome is decided; adaptive strategies use it to
    /// recalibrate their spin budget. The default is a no-op.
    #[inline]
    fn observe(&self, timed: bool, spun: u64, parked: u64, matched: bool) {
        let _ = (timed, spun, parked, matched);
    }
}

impl WaitStrategy for SpinPolicy {
    #[inline]
    fn spin_budget(&self, timed: bool) -> u32 {
        self.spins_for(timed)
    }

    #[inline]
    fn observe(&self, _timed: bool, spun: u64, parked: u64, matched: bool) {
        // Only matches teach us anything about handoff latency: an absent
        // peer (timeout/cancel) says nothing about how fast a present one
        // would have arrived.
        if matched {
            if let Some(c) = self.calibrator() {
                c.record_handoff(spun.min(u64::from(u32::MAX)) as u32, parked > 0);
            }
        }
    }
}

/// Spin for a fixed budget and never park; exhaustion counts as a timeout.
///
/// This is the elimination arena's contract: a visit is a *bounded* attempt
/// to eliminate against a partner, and descheduling inside the arena would
/// turn a backoff mechanism into a blocking one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinOnly(pub u32);

impl WaitStrategy for SpinOnly {
    #[inline]
    fn spin_budget(&self, _timed: bool) -> u32 {
        self.0.max(1)
    }

    #[inline]
    fn parks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_policy_is_a_strategy() {
        let p = SpinPolicy::fixed(8);
        assert_eq!(p.spin_budget(true), 8);
        assert_eq!(p.spin_budget(false), 128);
        assert!(p.parks());
        assert!(p.deadline_poll_interval() > 0);
    }

    #[test]
    fn spin_only_never_parks_and_never_spins_zero() {
        let s = SpinOnly(0);
        assert_eq!(s.spin_budget(true), 1);
        assert_eq!(s.spin_budget(false), 1);
        assert!(!s.parks());
    }
}
