//! Per-thread lane-affinity hints for striped (multi-lane) structures.
//!
//! A striped structure splits one contended coordination point into K
//! independent lanes and needs a cheap, stable way to route each thread to
//! "its" lane. Hashing `std::thread::ThreadId` would work but gives no
//! density guarantee: two threads could collide on one lane while others
//! sit idle. This module instead assigns every thread a **dense** id from a
//! process-wide counter on first use — thread n gets hint n — so any K
//! consecutively spawned threads land on K distinct lanes of a K-lane
//! structure (`hint % K` covers all residues). The hint is assigned once,
//! costs one TLS read thereafter, and is shared by every striped structure
//! in the process (deliberately: a thread keeps the *same* affine lane
//! across structures, preserving locality).
//!
//! This is the same dense-id trick `synq-obs` uses for counter-shard
//! selection, duplicated here because the obs crate compiles its version
//! out when `stats` is off, while lane routing must always work.

use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_HINT: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static HINT: usize = NEXT_HINT.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's dense affinity hint (0 for the first thread to ask,
/// 1 for the second, …). Stable for the thread's lifetime.
pub fn lane_hint() -> usize {
    HINT.with(|h| *h)
}

/// The calling thread's affine lane among `lanes` (`lane_hint() % lanes`).
///
/// # Panics
///
/// Panics if `lanes` is zero.
pub fn affine_lane(lanes: usize) -> usize {
    lane_hint() % lanes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_is_stable_within_a_thread() {
        assert_eq!(lane_hint(), lane_hint());
        assert_eq!(affine_lane(4), lane_hint() % 4);
    }

    #[test]
    fn hints_are_distinct_across_threads() {
        let mine = lane_hint();
        let theirs = std::thread::spawn(lane_hint).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn affine_lane_is_in_range() {
        for lanes in 1..9 {
            assert!(affine_lane(lanes) < lanes);
        }
    }
}
