//! The shared wait-node protocol engine.
//!
//! Every synchronous structure in this suite — the dual queue, the dual
//! stack, the §5 TransferQueue, the parking exchanger, and the elimination
//! arena — resolves a handoff the same way: a thread reserves a node, a
//! counterpart races a *fulfill* CAS against the reserver's *cancel* CAS,
//! and exactly one of them wins. `WaitSlot` is that state machine plus the
//! item cell and the spin-then-park wait loop, extracted so there is one
//! place to audit the unsafe code and the memory orderings (DESIGN.md §4.7).
//!
//! # State machine
//!
//! ```text
//!               try_claim                complete
//!   WAITING ───────────────▶ CLAIMED ──────────────▶ MATCHED
//!      │                                                ▲
//!      │  try_fulfill_token(t)  (t ≥ MIN_TOKEN)         │ (terminal)
//!      ├────────────────────────────────────────────────┘
//!      │  try_cancel
//!      └───────────────▶ CANCELLED                       (terminal)
//! ```
//!
//! Fulfillers that must move data in *both* directions (queue/transfer:
//! read the waiter's item, or deposit one) go through the two-phase
//! `try_claim` → `put_item`/`take_item` → `complete` path; `CLAIMED` is the
//! short window in which the fulfiller owns the item cell. Fulfillers that
//! only need to *announce themselves* (the dual stack publishes the
//! fulfilling node's address so the waiter can find its partner) use the
//! one-shot `try_fulfill_token`, which stores any `usize ≥ MIN_TOKEN` —
//! in practice a pointer, whose alignment guarantees it clears the four
//! reserved control values.
//!
//! # Item ownership
//!
//! The slot tracks the item cell with two flags: `filled` (an initialized
//! `T` was written) and `consumed` (it was read back out). Exactly one of
//! `take_item`/`reclaim_item`/drop consumes a filled cell, so an item is
//! never dropped twice and never leaked — `Drop` for `WaitSlot` releases a
//! filled-but-unconsumed item, which is what makes cancelled producer
//! nodes safe to reclaim without per-call-site cleanup code.

use crate::cancel::CancelToken;
use crate::deadline::Deadline;
use crate::parker::Parker;
use crate::wait::WaitStrategy;
use crate::waiter::WaiterCell;
use core::task::{Poll, Waker};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// No outcome yet; fulfillers and cancellers may race.
pub const WAITING: usize = 0;
/// A fulfiller won the race and is moving the item; match is imminent.
pub const CLAIMED: usize = 1;
/// The handoff completed (terminal).
pub const MATCHED: usize = 2;
/// The waiter withdrew before a fulfiller arrived (terminal).
pub const CANCELLED: usize = 3;
/// Smallest value usable with [`WaitSlot::try_fulfill_token`]. Pointer
/// tokens satisfy this automatically: heap nodes are at least
/// word-aligned, so their addresses are ≥ `MIN_TOKEN` and distinct from
/// the four control states.
pub const MIN_TOKEN: usize = 4;

/// Why [`WaitSlot::await_outcome`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// A fulfiller completed the handoff. The payload is the terminal
    /// state word: [`MATCHED`], or the token a [`WaitSlot::try_fulfill_token`]
    /// fulfiller stored (the dual stack reads its partner's address back
    /// out of this).
    Matched(usize),
    /// The deadline (or a non-parking strategy's spin budget) expired and
    /// the waiter won the cancel race.
    TimedOut,
    /// The cancellation token fired and the waiter won the cancel race.
    Cancelled,
}

/// One wait-node: the four-state word, the item cell, and the waiter
/// mailbox, with the spin-then-park loop that animates them.
///
/// Structures embed a `WaitSlot<T>` per node and keep only their linking
/// (queue/stack pointers, reference counts, free lists) local.
#[derive(Debug)]
pub struct WaitSlot<T> {
    state: AtomicUsize,
    item: UnsafeCell<MaybeUninit<T>>,
    /// An initialized `T` has been written to `item`.
    filled: AtomicBool,
    /// The initialized `T` has been moved back out of `item`.
    consumed: AtomicBool,
    waiter: WaiterCell,
}

// SAFETY: the item cell is transferred between threads only through the
// state-word CAS protocol (Release writes happen-before the Acquire load
// that licenses the read), and the consumed/filled guards ensure a single
// reader. T: Send suffices because only ownership moves across threads.
unsafe impl<T: Send> Send for WaitSlot<T> {}
unsafe impl<T: Send> Sync for WaitSlot<T> {}

impl<T> Default for WaitSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WaitSlot<T> {
    /// An empty slot in the `WAITING` state (a *request* node).
    pub fn new() -> Self {
        WaitSlot {
            state: AtomicUsize::new(WAITING),
            item: UnsafeCell::new(MaybeUninit::uninit()),
            filled: AtomicBool::new(false),
            consumed: AtomicBool::new(false),
            waiter: WaiterCell::new(),
        }
    }

    /// A slot in the `WAITING` state already holding `value` (a *data*
    /// node).
    pub fn with_item(value: T) -> Self {
        let slot = Self::new();
        // SAFETY: we exclusively own the fresh slot; nothing was written yet.
        unsafe { slot.put_item(value) };
        slot
    }

    /// Re-arms a recycled slot: state back to `WAITING`, item flags
    /// cleared, waiter mailbox emptied. Any pending item is dropped first.
    ///
    /// Node caches call this when handing a free-listed node back out.
    pub fn reset(&mut self) {
        self.drop_pending_item();
        *self.state.get_mut() = WAITING;
        *self.filled.get_mut() = false;
        *self.consumed.get_mut() = false;
        self.waiter.take();
    }

    /// Drops the pending item, if the cell is filled and not yet consumed.
    /// Idempotent; also run by `Drop`.
    pub fn drop_pending_item(&mut self) {
        if *self.filled.get_mut() && !std::mem::replace(self.consumed.get_mut(), true) {
            // SAFETY: filled && !consumed means the cell holds an
            // initialized T nobody has moved out; &mut self gives
            // exclusive access and the flag flip makes this the only read.
            unsafe { (*self.item.get()).assume_init_drop() };
        }
    }

    /// Shared-reference half of [`Self::reset`]: drops any pending item and
    /// clears the item flags and waiter mailbox, but leaves the state word
    /// *terminal*. The flat-combining publication records recycle their
    /// embedded slot through a `&self` (the record stays linked in a shared
    /// intrusive list), so `&mut`-based `reset` is unavailable; keeping the
    /// state terminal until [`Self::reopen`] runs is what keeps a straggling
    /// fulfiller's `try_claim` failing throughout the re-arm window.
    ///
    /// # Safety
    ///
    /// The caller must be the slot's logical owner, with the slot in a
    /// terminal state (or never published) and no fulfiller holding a live
    /// claim. Concurrent *failed* claim/cancel attempts are fine — they
    /// only touch the state word, which this method does not.
    pub unsafe fn recycle(&self) {
        if self.filled.load(Ordering::Relaxed) && !self.consumed.swap(true, Ordering::Relaxed) {
            // SAFETY: filled && !consumed means an initialized T nobody
            // moved out; the caller's exclusivity contract plus the flag
            // flip make this the only read.
            unsafe { (*self.item.get()).assume_init_drop() };
        }
        self.filled.store(false, Ordering::Relaxed);
        self.consumed.store(false, Ordering::Relaxed);
        self.waiter.take();
    }

    /// Re-opens a recycled slot for a new round: terminal → `WAITING`
    /// (Release, publishing any item armed since [`Self::recycle`]).
    ///
    /// Call order matters: `recycle` → optional [`Self::put_item`] →
    /// `reopen`. Arming the cell *before* the state store means any
    /// fulfiller whose claim lands the instant the slot reopens sees a
    /// fully armed request (its direction read of [`Self::has_item`] is
    /// accurate), never a half-built one.
    ///
    /// # Safety
    ///
    /// Same ownership contract as [`Self::recycle`], which must have run
    /// since the last terminal transition.
    pub unsafe fn reopen(&self) {
        debug_assert!(!matches!(
            self.state.load(Ordering::Relaxed),
            WAITING | CLAIMED
        ));
        self.state.store(WAITING, Ordering::Release);
    }

    /// Releases a claim without completing it: `CLAIMED → WAITING`. For
    /// fulfillers that claim speculatively and may find no counterpart — a
    /// combiner sweep claims every pending request it sees, pairs what it
    /// can, and hands the leftovers back. The waiter's spin/park loop
    /// treats `CLAIMED` as "match imminent", so an unclaimed slot simply
    /// resumes normal waiting (the parked waiter's mailbox is untouched, so
    /// a later real fulfiller still wakes it).
    ///
    /// # Safety
    ///
    /// The caller must have won [`Self::try_claim`], not called
    /// [`Self::complete`], and left the item cell exactly as the claim
    /// found it.
    pub unsafe fn unclaim(&self) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), CLAIMED);
        self.state.store(WAITING, Ordering::Release);
    }

    /// Current state word (Acquire). Terminal values license reading the
    /// item cell the fulfiller published.
    #[inline]
    pub fn state(&self) -> usize {
        self.state.load(Ordering::Acquire)
    }

    /// True while fulfillers and cancellers may still race for the slot.
    #[inline]
    pub fn is_waiting(&self) -> bool {
        self.state() == WAITING
    }

    /// True once a canceller has won the slot.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.state() == CANCELLED
    }

    /// If the slot was fulfilled via [`Self::try_fulfill_token`], the token.
    #[inline]
    pub fn matched_token(&self) -> Option<usize> {
        let s = self.state();
        (s >= MIN_TOKEN).then_some(s)
    }

    /// Fulfiller side, phase one: claim exclusive ownership of the item
    /// cell (`WAITING → CLAIMED`). Returns false if a canceller (or
    /// another fulfiller) got there first.
    ///
    /// A successful claim *must* be followed by [`Self::complete`] — the
    /// waiter yields, rather than cancels, while `CLAIMED`, trusting the
    /// match to be imminent.
    #[inline]
    pub fn try_claim(&self) -> bool {
        self.state
            .compare_exchange(WAITING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Fulfiller side, phase two: publish the terminal `MATCHED` state and
    /// wake the waiter. All item-cell writes made while `CLAIMED` are
    /// released by this store.
    #[inline]
    pub fn complete(&self) {
        self.state.store(MATCHED, Ordering::Release);
        self.waiter.wake();
    }

    /// Claims the slot, deposits `value`, and completes — the fulfiller
    /// path for request nodes (a producer satisfying a waiting consumer).
    ///
    /// # Safety
    ///
    /// The caller must have won [`Self::try_claim`] and not yet called
    /// [`Self::complete`]; the claim is what grants item-cell ownership.
    #[inline]
    pub unsafe fn fulfill(&self, value: T) {
        // SAFETY: per contract the caller holds the CLAIMED ownership
        // window, so the cell is ours to write.
        unsafe { self.put_item(value) };
        self.complete();
    }

    /// One-shot fulfiller CAS: `WAITING → token`, waking the waiter on
    /// success. `token` must be ≥ [`MIN_TOKEN`] (asserted) — the dual
    /// stack passes its fulfilling node's address so the waiter learns who
    /// matched it. On failure returns the actual state observed, which the
    /// stack compares against its own pointer to detect "a helper already
    /// matched this pair for us".
    #[inline]
    pub fn try_fulfill_token(&self, token: usize) -> Result<(), usize> {
        debug_assert!(
            token >= MIN_TOKEN,
            "token {token} collides with control states"
        );
        match self
            .state
            .compare_exchange(WAITING, token, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                self.waiter.wake();
                Ok(())
            }
            Err(actual) => Err(actual),
        }
    }

    /// Canceller side: `WAITING → CANCELLED`. On success the slot's
    /// registered unparker (if any) is discarded — the canceller *is* the
    /// waiter, so there is nobody to wake.
    #[inline]
    pub fn try_cancel(&self) -> bool {
        if self
            .state
            .compare_exchange(WAITING, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.waiter.take();
            true
        } else {
            false
        }
    }

    /// Writes `value` into the item cell (does not change the state word).
    /// Used to arm data nodes before publication and by fulfillers inside
    /// their `CLAIMED` window.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive ownership of the item cell (node not
    /// yet published, or a won claim) and the cell must be empty.
    #[inline]
    pub unsafe fn put_item(&self, value: T) {
        debug_assert!(!self.filled.load(Ordering::Relaxed), "item written twice");
        // SAFETY: exclusive cell ownership per contract.
        unsafe { (*self.item.get()).write(value) };
        self.filled.store(true, Ordering::Relaxed);
    }

    /// Moves the item out of the cell. The `consumed` swap makes this
    /// one-shot even if racing call sites misbehave (debug-asserted).
    ///
    /// # Safety
    ///
    /// The caller must be entitled to the item: a fulfiller inside its
    /// `CLAIMED` window, a waiter whose slot reached a terminal state, or
    /// a canceller taking its own item back. The cell must be filled.
    #[inline]
    pub unsafe fn take_item(&self) -> T {
        debug_assert!(
            self.filled.load(Ordering::Relaxed),
            "taking from empty cell"
        );
        let already = self.consumed.swap(true, Ordering::AcqRel);
        debug_assert!(!already, "item taken twice");
        // SAFETY: the cell is filled per contract and the consumed swap
        // made us the unique reader.
        unsafe { (*self.item.get()).assume_init_read() }
    }

    /// Takes the item back out of a slot that was armed with
    /// [`Self::put_item`] but never published (a failed linking CAS),
    /// re-arming the cell so the retry loop can `put_item` again.
    ///
    /// # Safety
    ///
    /// The caller must still exclusively own the node (it was never made
    /// visible to other threads) and the cell must be filled.
    #[inline]
    pub unsafe fn reclaim_item(&self) -> T {
        debug_assert!(self.filled.load(Ordering::Relaxed), "reclaiming empty cell");
        debug_assert!(!self.consumed.load(Ordering::Relaxed));
        self.filled.store(false, Ordering::Relaxed);
        // SAFETY: exclusive ownership per contract; filled flag cleared so
        // a later put_item/drop sees an empty cell.
        unsafe { (*self.item.get()).assume_init_read() }
    }

    /// True if the cell currently holds an initialized item. Only
    /// meaningful once the slot has reached a terminal state (or under
    /// exclusive ownership).
    #[inline]
    pub fn has_item(&self) -> bool {
        self.filled.load(Ordering::Relaxed) && !self.consumed.load(Ordering::Relaxed)
    }

    /// Spins (never parks, never cancels) until the slot leaves the
    /// `WAITING`/`CLAIMED` states, returning the terminal word. For call
    /// sites that already *know* fulfillment is imminent — e.g. an
    /// exchanger that lost its slot-retraction CAS to a claimer mid-swap.
    pub fn await_completion(&self) -> usize {
        loop {
            let s = self.state();
            if s != WAITING && s != CLAIMED {
                debug_assert_ne!(s, CANCELLED, "await_completion on a cancelled slot");
                return s;
            }
            std::thread::yield_now();
        }
    }

    /// The paper's `awaitFulfill`: spin for the strategy's budget, then
    /// park until matched, the deadline passes, or `token` fires. Timeout
    /// and cancellation are reported only after *winning* the cancel CAS,
    /// so every return value is an exclusive verdict: `Matched` means the
    /// fulfiller owns the handoff, `TimedOut`/`Cancelled` mean the slot is
    /// terminally `CANCELLED` and no fulfiller touched it.
    ///
    /// The deadline and token are polled once per
    /// [`WaitStrategy::deadline_poll_interval`] spin iterations (and
    /// immediately after every unpark) rather than every pass.
    pub fn await_outcome<S: WaitStrategy + ?Sized>(
        &self,
        deadline: Deadline,
        token: Option<&CancelToken>,
        strategy: &S,
    ) -> WaitOutcome {
        self.wait_loop(deadline, token, strategy, true)
            .unwrap_or_else(|o| o)
    }

    /// `await_outcome` without the cancel CAS: on expiry the slot is left
    /// `WAITING` and `None` is returned. For structures that arbitrate
    /// cancellation *outside* the slot — the exchanger and arena retract
    /// their published pointer instead, and a retraction loser must then
    /// [`Self::await_completion`].
    pub fn await_match<S: WaitStrategy + ?Sized>(
        &self,
        deadline: Deadline,
        strategy: &S,
    ) -> Option<usize> {
        match self.wait_loop(deadline, None, strategy, false) {
            Ok(WaitOutcome::Matched(s)) => Some(s),
            Ok(_) => unreachable!("cancel-free wait loop produced a cancel verdict"),
            Err(_) => None,
        }
    }

    /// Poll-mode `awaitFulfill`: the counterpart of [`Self::await_outcome`]
    /// for async waiters. One call makes one pass of the protocol — it
    /// never spins, never parks — and suspension is expressed by returning
    /// [`Poll::Pending`] *after* registering `waker` in the slot's mailbox,
    /// so the fulfiller's `complete`/`try_fulfill_token` wake reaches the
    /// task. Registration happens before the terminal re-check, which is
    /// what makes the no-lost-wakeup argument go through: a fulfiller that
    /// lands between our state load and our registration either finds the
    /// waker (and wakes it) or has already published the terminal state our
    /// re-check observes (the register and take swaps on the mailbox hit
    /// one atomic cell, so whichever runs second synchronizes with the
    /// first).
    ///
    /// As in the blocking loop, `TimedOut`/`Cancelled` are reported only
    /// after *winning* the cancel CAS, so every verdict is exclusive.
    /// Unlike the blocking loop there is no internal timer: a `Pending`
    /// return with an unexpired [`Deadline::At`] relies on the *caller* to
    /// arrange a wake at (or after) the deadline — `synq-async` routes
    /// this through its timer thread. A spurious wake merely costs one
    /// extra poll.
    pub fn poll_outcome(
        &self,
        waker: &Waker,
        deadline: Deadline,
        token: Option<&CancelToken>,
    ) -> Poll<WaitOutcome> {
        // Fast path: already terminal, skip the waker clone.
        let s = self.state();
        if s != WAITING && s != CLAIMED {
            debug_assert_ne!(s, CANCELLED, "polling a slot cancelled by someone else");
            return Poll::Ready(WaitOutcome::Matched(s));
        }
        self.waiter.register_waker(waker);
        if token.is_some_and(|t| t.is_cancelled()) && self.try_cancel() {
            return Poll::Ready(WaitOutcome::Cancelled);
        }
        if deadline.expired() && self.try_cancel() {
            return Poll::Ready(WaitOutcome::TimedOut);
        }
        // Re-check after registering (and after any *lost* cancel race —
        // losing means a fulfiller owns the slot, so the match is imminent
        // or already terminal).
        match self.state() {
            WAITING | CLAIMED => Poll::Pending,
            CANCELLED => unreachable!("cancel verdicts return above"),
            s => Poll::Ready(WaitOutcome::Matched(s)),
        }
    }

    /// Poll-mode counterpart of [`Self::await_match`]: no cancel CAS. On an
    /// expired deadline the slot is left `WAITING` and `Ready(None)` is
    /// returned — for structures that arbitrate cancellation outside the
    /// slot. `Ready(Some(state))` is a terminal match; `Pending` registers
    /// `waker` exactly as [`Self::poll_outcome`] does.
    pub fn poll_match(&self, waker: &Waker, deadline: Deadline) -> Poll<Option<usize>> {
        let s = self.state();
        if s != WAITING && s != CLAIMED {
            debug_assert_ne!(s, CANCELLED, "polling a slot cancelled by someone else");
            return Poll::Ready(Some(s));
        }
        self.waiter.register_waker(waker);
        match self.state() {
            // Expiry is only reportable while the slot is still WAITING; a
            // CLAIMED slot belongs to a fulfiller whose `complete` is
            // imminent (and will wake the waker we just registered).
            WAITING if deadline.expired() => Poll::Ready(None),
            WAITING | CLAIMED => Poll::Pending,
            CANCELLED => unreachable!("cancel-free poll observed a cancelled slot"),
            s => Poll::Ready(Some(s)),
        }
    }

    /// Shared loop. `Ok(outcome)` is a terminal verdict; `Err(outcome)` is
    /// an expiry observed with `arbitrate = false` (slot still `WAITING`).
    fn wait_loop<S: WaitStrategy + ?Sized>(
        &self,
        deadline: Deadline,
        token: Option<&CancelToken>,
        strategy: &S,
        arbitrate: bool,
    ) -> Result<WaitOutcome, WaitOutcome> {
        let mut spins = strategy.spin_budget(deadline.is_timed());
        let poll_interval = strategy.deadline_poll_interval().max(1);
        // Poll on the very first pass (Deadline::Now must not spin through
        // a whole interval), then once per interval.
        let mut until_poll = 0u32;
        let mut parker: Option<Parker> = None;
        // Wait accounting, flushed to the stats layer in one batch on exit
        // so the loop body stays probe-free (paper §5 attributes throughput
        // to the spin/park split — these two tallies are that split).
        let mut spun: u64 = 0;
        let mut parked: u64 = 0;

        let result = 'outcome: loop {
            match self.state() {
                WAITING => {}
                CLAIMED => {
                    // A fulfiller owns the cell; the match is imminent and
                    // cancellation has already lost. Stay out of its way.
                    std::thread::yield_now();
                    continue;
                }
                CANCELLED => unreachable!("waiting on a slot cancelled by someone else"),
                s => break 'outcome Ok(WaitOutcome::Matched(s)),
            }

            if until_poll == 0 {
                until_poll = poll_interval;
                if token.is_some_and(|t| t.is_cancelled()) {
                    if arbitrate {
                        if self.try_cancel() {
                            break 'outcome Ok(WaitOutcome::Cancelled);
                        }
                        // Lost the race: a fulfiller is finishing.
                        synq_obs::probe!(WaitCancelRaceLost);
                        continue;
                    }
                    break 'outcome Err(WaitOutcome::Cancelled);
                }
                if deadline.expired() {
                    if arbitrate {
                        if self.try_cancel() {
                            break 'outcome Ok(WaitOutcome::TimedOut);
                        }
                        synq_obs::probe!(WaitCancelRaceLost);
                        continue;
                    }
                    break 'outcome Err(WaitOutcome::TimedOut);
                }
            }

            if spins > 0 {
                spins -= 1;
                until_poll -= 1;
                spun += 1;
                std::hint::spin_loop();
                continue;
            }

            if !strategy.parks() {
                // Spin-only strategies treat budget exhaustion as expiry.
                if arbitrate {
                    if self.try_cancel() {
                        break 'outcome Ok(WaitOutcome::TimedOut);
                    }
                    synq_obs::probe!(WaitCancelRaceLost);
                    continue;
                }
                break 'outcome Err(WaitOutcome::TimedOut);
            }

            let parker = parker.get_or_insert_with(Parker::new);
            self.waiter.register(parker.unparker());
            let _registration = token.map(|t| t.register(parker.unparker()));
            // Re-check after registering: a fulfiller may have taken the
            // slot between our state load and the register, in which case
            // it may already have consumed (or missed) our unparker.
            if self.state() != WAITING {
                continue;
            }
            match deadline {
                Deadline::Never => {
                    parked += 1;
                    parker.park();
                }
                Deadline::Now => {}
                Deadline::At(t) => {
                    parked += 1;
                    parker.park_deadline(t);
                }
            }
            // Whatever woke us (unpark, deadline, spurious), re-poll the
            // deadline/token immediately on the next pass.
            until_poll = 0;
        };

        if spun > 0 {
            synq_obs::probe!(WaitSpins, spun);
        }
        if parked > 0 {
            synq_obs::probe!(WaitParks, parked);
        }
        // One calibration sample per wait: adaptive strategies learn the
        // spin/park split of this handoff (no-op for fixed policies).
        strategy.observe(
            deadline.is_timed(),
            spun,
            parked,
            matches!(result, Ok(WaitOutcome::Matched(_))),
        );
        match result {
            Ok(WaitOutcome::Matched(_)) => {
                if parked == 0 {
                    synq_obs::probe!(WaitDirectHandoffs);
                } else {
                    synq_obs::probe!(WaitParkedHandoffs);
                }
            }
            Ok(WaitOutcome::TimedOut) | Err(WaitOutcome::TimedOut) => {
                synq_obs::probe!(WaitTimeouts);
            }
            Ok(WaitOutcome::Cancelled) | Err(WaitOutcome::Cancelled) => {
                synq_obs::probe!(WaitCancels);
            }
            Err(WaitOutcome::Matched(_)) => unreachable!("matches are always Ok"),
        }
        result
    }
}

impl<T> Drop for WaitSlot<T> {
    fn drop(&mut self) {
        self.drop_pending_item();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spin::SpinPolicy;
    use crate::wait::SpinOnly;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn claim_fulfill_complete_roundtrip() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        assert!(slot.is_waiting());
        assert!(slot.try_claim());
        assert!(!slot.try_claim());
        assert!(!slot.try_cancel());
        unsafe { slot.fulfill(7) };
        assert_eq!(slot.state(), MATCHED);
        assert_eq!(unsafe { slot.take_item() }, 7);
        assert!(!slot.has_item());
    }

    #[test]
    fn cancel_wins_then_fulfillers_fail() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        assert!(slot.try_cancel());
        assert!(slot.is_cancelled());
        assert!(!slot.try_claim());
        assert_eq!(slot.try_fulfill_token(MIN_TOKEN * 2), Err(CANCELLED));
    }

    #[test]
    fn token_fulfill_reports_and_returns_token() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let token = 0xdead0usize;
        assert_eq!(slot.try_fulfill_token(token), Ok(()));
        assert_eq!(slot.matched_token(), Some(token));
        assert_eq!(slot.try_fulfill_token(token), Err(token));
        assert_eq!(
            slot.await_outcome(Deadline::Never, None, &SpinPolicy::fixed(1)),
            WaitOutcome::Matched(token)
        );
    }

    #[test]
    fn data_slot_drop_releases_item() {
        let payload = Arc::new(());
        let slot = WaitSlot::with_item(Arc::clone(&payload));
        assert!(slot.has_item());
        drop(slot);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn taken_item_is_not_double_dropped() {
        let payload = Arc::new(());
        let slot = WaitSlot::with_item(Arc::clone(&payload));
        let got = unsafe { slot.take_item() };
        drop(slot);
        assert_eq!(Arc::strong_count(&payload), 2);
        drop(got);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn reclaim_rearms_the_cell() {
        let slot: WaitSlot<String> = WaitSlot::with_item("a".into());
        let back = unsafe { slot.reclaim_item() };
        assert_eq!(back, "a");
        assert!(!slot.has_item());
        unsafe { slot.put_item("b".into()) };
        assert_eq!(unsafe { slot.take_item() }, "b");
    }

    #[test]
    fn reset_recycles_state_and_drops_item() {
        let payload = Arc::new(());
        let mut slot = WaitSlot::with_item(Arc::clone(&payload));
        assert!(slot.try_cancel());
        slot.reset();
        assert_eq!(Arc::strong_count(&payload), 1);
        assert!(slot.is_waiting());
        assert!(!slot.has_item());
        assert!(slot.try_claim());
    }

    #[test]
    fn recycle_reopen_rearms_through_shared_ref() {
        let payload = Arc::new(());
        let slot = WaitSlot::with_item(Arc::clone(&payload));
        assert!(slot.try_cancel());
        // SAFETY: we are the only owner and the slot is terminal.
        unsafe { slot.recycle() };
        assert_eq!(Arc::strong_count(&payload), 1, "pending item dropped");
        assert!(slot.is_cancelled(), "state stays terminal until reopen");
        assert!(!slot.try_claim(), "claims keep failing mid-recycle");
        unsafe { slot.put_item(Arc::new(())) };
        unsafe { slot.reopen() };
        assert!(slot.is_waiting());
        assert!(slot.has_item());
        assert!(slot.try_claim());
        drop(unsafe { slot.take_item() });
    }

    #[test]
    fn unclaim_returns_slot_to_fulfillable_waiting() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        assert!(slot.try_claim());
        assert!(!slot.try_cancel(), "cancel loses while claimed");
        // SAFETY: we won the claim above and wrote nothing.
        unsafe { slot.unclaim() };
        assert!(slot.is_waiting());
        // A later fulfiller (or canceller) proceeds normally.
        assert!(slot.try_claim());
        unsafe { slot.fulfill(3) };
        assert_eq!(unsafe { slot.take_item() }, 3);
    }

    #[test]
    fn unclaim_does_not_consume_parked_waiter_mailbox() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let (waker, hits) = flag_waker();
        assert!(slot
            .poll_outcome(&waker, Deadline::Never, None)
            .is_pending());
        assert!(slot.try_claim());
        unsafe { slot.unclaim() };
        assert_eq!(hits.load(Ordering::SeqCst), 0, "unclaim must not wake");
        assert!(slot.try_claim());
        unsafe { slot.fulfill(8) };
        assert_eq!(hits.load(Ordering::SeqCst), 1, "real fulfiller still wakes");
    }

    #[test]
    fn await_outcome_now_times_out_and_cancels_slot() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let out = slot.await_outcome(Deadline::Now, None, &SpinPolicy::adaptive());
        assert_eq!(out, WaitOutcome::TimedOut);
        assert!(slot.is_cancelled());
    }

    #[test]
    fn await_match_expiry_leaves_slot_waiting() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        assert_eq!(
            slot.await_match(Deadline::Now, &SpinPolicy::adaptive()),
            None
        );
        assert!(slot.is_waiting());
        assert_eq!(slot.await_match(Deadline::Never, &SpinOnly(64)), None);
        assert!(slot.is_waiting());
        // A late fulfiller can still land.
        assert!(slot.try_claim());
    }

    #[test]
    fn await_outcome_parks_until_fulfilled() {
        let slot: Arc<WaitSlot<u32>> = Arc::new(WaitSlot::new());
        let other = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            assert!(other.try_claim());
            unsafe { other.fulfill(99) };
        });
        let out = slot.await_outcome(Deadline::Never, None, &SpinPolicy::park_immediately());
        assert_eq!(out, WaitOutcome::Matched(MATCHED));
        assert_eq!(unsafe { slot.take_item() }, 99);
        h.join().unwrap();
    }

    #[test]
    fn await_outcome_deadline_expires_while_parked() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let start = std::time::Instant::now();
        let out = slot.await_outcome(
            Deadline::after(Duration::from_millis(40)),
            None,
            &SpinPolicy::park_immediately(),
        );
        assert_eq!(out, WaitOutcome::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(40));
        assert!(slot.is_cancelled());
    }

    #[test]
    fn await_outcome_cancelled_by_token_while_parked() {
        let slot: Arc<WaitSlot<u32>> = Arc::new(WaitSlot::new());
        let token = Arc::new(CancelToken::new());
        let canceller = token.canceller();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            canceller.cancel();
        });
        let out = slot.await_outcome(Deadline::Never, Some(&token), &SpinPolicy::adaptive());
        assert_eq!(out, WaitOutcome::Cancelled);
        assert!(slot.is_cancelled());
        h.join().unwrap();
    }

    #[test]
    fn spin_only_expires_without_parking() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        assert_eq!(slot.await_match(Deadline::Never, &SpinOnly(128)), None);
    }

    #[test]
    fn await_completion_returns_terminal_state() {
        let slot: Arc<WaitSlot<u32>> = Arc::new(WaitSlot::new());
        let other = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            assert!(other.try_claim());
            std::thread::sleep(Duration::from_millis(10));
            unsafe { other.fulfill(5) };
        });
        assert_eq!(slot.await_completion(), MATCHED);
        assert_eq!(unsafe { slot.take_item() }, 5);
        h.join().unwrap();
    }

    /// A waker that counts its wakes and can park-free "block" via a flag.
    fn flag_waker() -> (std::task::Waker, Arc<std::sync::atomic::AtomicUsize>) {
        struct W(Arc<std::sync::atomic::AtomicUsize>);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        (std::task::Waker::from(Arc::new(W(Arc::clone(&hits)))), hits)
    }

    #[test]
    fn poll_outcome_pending_then_fulfilled_wakes_and_completes() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let (waker, hits) = flag_waker();
        assert!(slot
            .poll_outcome(&waker, Deadline::Never, None)
            .is_pending());
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert!(slot.try_claim());
        unsafe { slot.fulfill(42) };
        assert_eq!(hits.load(Ordering::SeqCst), 1, "complete() wakes the task");
        assert_eq!(
            slot.poll_outcome(&waker, Deadline::Never, None),
            std::task::Poll::Ready(WaitOutcome::Matched(MATCHED))
        );
        assert_eq!(unsafe { slot.take_item() }, 42);
    }

    #[test]
    fn poll_outcome_token_fulfill_reports_token_and_wakes() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let (waker, hits) = flag_waker();
        assert!(slot
            .poll_outcome(&waker, Deadline::Never, None)
            .is_pending());
        let token = 0xbeef0usize;
        assert_eq!(slot.try_fulfill_token(token), Ok(()));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(
            slot.poll_outcome(&waker, Deadline::Never, None),
            std::task::Poll::Ready(WaitOutcome::Matched(token))
        );
    }

    #[test]
    fn poll_outcome_expired_deadline_cancels_exclusively() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let (waker, _) = flag_waker();
        assert_eq!(
            slot.poll_outcome(&waker, Deadline::Now, None),
            std::task::Poll::Ready(WaitOutcome::TimedOut)
        );
        assert!(slot.is_cancelled());
        // Late fulfillers lose cleanly.
        assert!(!slot.try_claim());
    }

    #[test]
    fn poll_outcome_cancelled_token_wins_cancel_cas() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let token = CancelToken::new();
        token.cancel();
        let (waker, _) = flag_waker();
        assert_eq!(
            slot.poll_outcome(&waker, Deadline::Never, Some(&token)),
            std::task::Poll::Ready(WaitOutcome::Cancelled)
        );
        assert!(slot.is_cancelled());
    }

    #[test]
    fn poll_outcome_lost_cancel_race_reports_match() {
        // The fulfiller claims before the expired poll's cancel CAS: the
        // poll must NOT report timeout, and once complete() lands the next
        // poll reports the match.
        let slot: WaitSlot<u32> = WaitSlot::new();
        let (waker, hits) = flag_waker();
        assert!(slot
            .poll_outcome(&waker, Deadline::Never, None)
            .is_pending());
        assert!(slot.try_claim());
        // Deadline long expired, but the claim owns the slot: Pending.
        assert!(slot.poll_outcome(&waker, Deadline::Now, None).is_pending());
        unsafe { slot.fulfill(9) };
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(
            slot.poll_outcome(&waker, Deadline::Now, None),
            std::task::Poll::Ready(WaitOutcome::Matched(MATCHED))
        );
    }

    #[test]
    fn poll_match_expiry_leaves_slot_waiting() {
        let slot: WaitSlot<u32> = WaitSlot::new();
        let (waker, _) = flag_waker();
        assert_eq!(
            slot.poll_match(&waker, Deadline::Now),
            std::task::Poll::Ready(None)
        );
        assert!(slot.is_waiting());
        assert!(slot.poll_match(&waker, Deadline::Never).is_pending());
        assert!(slot.is_waiting());
        // A late fulfiller can still land.
        let token = MIN_TOKEN * 3;
        assert_eq!(slot.try_fulfill_token(token), Ok(()));
        assert_eq!(
            slot.poll_match(&waker, Deadline::Now),
            std::task::Poll::Ready(Some(token))
        );
    }

    #[test]
    fn poll_vs_fulfill_race_never_loses_wakeup() {
        // Hammer the register-then-recheck window: a fulfiller completing
        // concurrently with a pending poll must either be observed by the
        // re-check (Ready) or wake the registered waker.
        for _ in 0..300 {
            let slot: Arc<WaitSlot<u32>> = Arc::new(WaitSlot::new());
            let (waker, hits) = flag_waker();
            let fulfiller = {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    assert!(slot.try_claim());
                    unsafe { slot.fulfill(1) };
                })
            };
            let polled = slot.poll_outcome(&waker, Deadline::Never, None);
            fulfiller.join().unwrap();
            if polled.is_pending() {
                assert_eq!(
                    hits.load(Ordering::SeqCst),
                    1,
                    "pending poll missed the fulfiller's wake"
                );
            }
            assert_eq!(
                slot.poll_outcome(&waker, Deadline::Never, None),
                std::task::Poll::Ready(WaitOutcome::Matched(MATCHED))
            );
            let _ = unsafe { slot.take_item() };
        }
    }

    /// The core arbitration guarantee: a racing fulfiller and canceller
    /// agree on a single winner, and the item is dropped exactly once.
    #[test]
    fn fulfill_vs_cancel_race_is_exclusive() {
        for _ in 0..300 {
            let slot: Arc<WaitSlot<Arc<()>>> = Arc::new(WaitSlot::new());
            let payload = Arc::new(());
            let fulfiller = {
                let slot = Arc::clone(&slot);
                let payload = Arc::clone(&payload);
                std::thread::spawn(move || {
                    if slot.try_claim() {
                        unsafe { slot.fulfill(payload) };
                        true
                    } else {
                        false
                    }
                })
            };
            let canceller = {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || slot.try_cancel())
            };
            let fulfilled = fulfiller.join().unwrap();
            let cancelled = canceller.join().unwrap();
            assert_ne!(fulfilled, cancelled, "exactly one side must win");
            drop(slot);
            assert_eq!(
                Arc::strong_count(&payload),
                1,
                "item leaked or double-freed"
            );
        }
    }

    /// Same guarantee against the wait loop's own timeout arbitration: a
    /// fulfiller racing a waiter whose deadline expires either lands the
    /// match (waiter gets the item) or loses the cancel CAS cleanly
    /// (fulfiller still owns its item) — never both, never neither.
    #[test]
    fn fulfill_vs_timeout_race_is_exclusive() {
        for round in 0..300 {
            let slot: Arc<WaitSlot<Arc<()>>> = Arc::new(WaitSlot::new());
            let payload = Arc::new(());
            let fulfiller = {
                let slot = Arc::clone(&slot);
                let payload = Arc::clone(&payload);
                std::thread::spawn(move || {
                    // Jitter the approach so the CAS lands on every side of
                    // the deadline across rounds.
                    for _ in 0..(round % 64) {
                        std::hint::spin_loop();
                    }
                    if slot.try_claim() {
                        unsafe { slot.fulfill(payload) };
                        None
                    } else {
                        Some(payload) // lost: the item is still ours
                    }
                })
            };
            let out = slot.await_outcome(
                Deadline::after(Duration::from_micros(50)),
                None,
                &SpinPolicy::fixed(32),
            );
            let kept = fulfiller.join().unwrap();
            match out {
                WaitOutcome::Matched(_) => {
                    assert!(kept.is_none(), "matched but fulfiller kept the item");
                    let got = unsafe { slot.take_item() };
                    drop(got);
                }
                WaitOutcome::TimedOut => {
                    assert!(slot.is_cancelled());
                    assert!(kept.is_some(), "timed out but the item was deposited");
                }
                WaitOutcome::Cancelled => unreachable!("no token in play"),
            }
            drop(kept);
            drop(slot);
            assert_eq!(
                Arc::strong_count(&payload),
                1,
                "item leaked or double-freed"
            );
        }
    }
}
