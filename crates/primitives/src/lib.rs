//! Scheduling and synchronization primitives for the `synq` suite.
//!
//! The synchronous queue algorithms of Scherer, Lea & Scott (PPoPP 2006) sit
//! on top of a small set of substrates that the paper's Java implementation
//! gets from `java.util.concurrent`:
//!
//! * [`Parker`]/[`Unparker`] — the analogue of
//!   `java.util.concurrent.locks.LockSupport.park/unpark`: one-permit
//!   suspension with targeted wakeup, used by every waiting strategy.
//! * [`SpinPolicy`] — the *spin-then-park* strategy from the paper's
//!   "Pragmatics" section: on multiprocessors, nodes next in line for
//!   fulfillment spin briefly (about a quarter of a context switch) before
//!   parking; on uniprocessors spinning is useless and disabled.
//! * [`Backoff`] — bounded exponential backoff for CAS retry loops.
//! * [`Semaphore`] — a counting semaphore, the substrate of Hanson's
//!   synchronous queue (Listing 1 in the paper).
//! * [`TicketLock`] — a strictly FIFO ("fair-mode") lock with queued
//!   parking, used to reproduce the Java SE 5.0 fair-mode entry lock whose
//!   pileups the paper identifies as the main fair-mode bottleneck.
//! * [`WaiterCell`] — a lock-free, single-slot mailbox through which a
//!   waiter publishes its [`WakeHandle`] — a thread [`Unparker`] or an
//!   async task `Waker` — to whichever thread fulfills it. This is the
//!   point where the blocking and poll-mode wait loops converge.
//! * [`CancelToken`] — cooperative cancellation (the paper's "asynchronous
//!   interrupt" of waiting threads).
//! * [`CachePadded`] — 128-byte alignment wrapper keeping independently
//!   contended hot words on separate cache lines (the layout discipline
//!   behind the paper's contention-freedom property).
//! * [`WaitSlot`] — the shared wait-node protocol engine: the
//!   `WAITING/CLAIMED/MATCHED/CANCELLED` state machine, the item cell, and
//!   the paper's `awaitFulfill` spin-then-park loop, parameterized by a
//!   [`WaitStrategy`] — plus the poll-mode counterparts
//!   (`poll_outcome`/`poll_match`) that drive the same state machine from
//!   async tasks. Every synchronous structure in the suite resolves its
//!   handoffs through this one state machine.
//! * [`Deadline`] — patience bound consumed by the wait loop (re-exported
//!   as `synq::Deadline`).
//!
//! Everything here is built from `std` only (mutexes, condition variables,
//! atomics); no external crates.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backoff;
pub mod cache_padded;
pub mod cancel;
pub mod deadline;
pub mod fast_semaphore;
pub mod lane_hint;
pub mod mcs_lock;
pub mod parker;
pub mod semaphore;
pub mod spin;
pub mod ticket_lock;
pub mod wait;
pub mod wait_slot;
pub mod waiter;

pub use backoff::{
    Backoff, BACKOFF_SPIN_CAP, BACKOFF_SPIN_LIMIT, BACKOFF_SPIN_SEED, BACKOFF_YIELD_LIMIT,
};
pub use cache_padded::CachePadded;
pub use cancel::{CancelToken, Canceller};
pub use deadline::Deadline;
pub use fast_semaphore::FastSemaphore;
pub use mcs_lock::{McsLock, McsLockGuard};
pub use parker::{CondvarParker, CondvarUnparker, Parker, Unparker};
pub use semaphore::Semaphore;
pub use spin::{SpinCalibrator, SpinPolicy, ADAPTIVE_SPIN_CAP};
pub use ticket_lock::{TicketLock, TicketLockGuard};
pub use wait::{SpinOnly, WaitStrategy};
pub use wait_slot::{WaitOutcome, WaitSlot, MIN_TOKEN};
pub use waiter::{WaiterCell, WakeHandle};
