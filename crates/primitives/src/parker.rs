//! Thread parking with permit semantics.
//!
//! This is the Rust analogue of `java.util.concurrent.locks.LockSupport`,
//! which the paper's implementation uses "to remove threads from and restore
//! threads to the ready list". The semantics are the classic one-permit
//! protocol:
//!
//! * [`Unparker::unpark`] makes a single permit available (idempotent — at
//!   most one permit is ever banked).
//! * [`Parker::park`] consumes a permit if one is available and returns
//!   immediately; otherwise it blocks until a permit arrives.
//! * [`Parker::park_timeout`]/[`Parker::park_deadline`] additionally give up
//!   after a patience interval, which is what the synchronous queues' timed
//!   `offer`/`poll` operations are built on.
//!
//! A permit posted *before* the corresponding `park` is never lost: this is
//! exactly the property that lets lock-free algorithms publish a waiter,
//! re-check their precondition, and only then park, without missing a wakeup
//! that raced in between.
//!
//! # Backends
//!
//! On Linux (x86-64 and aarch64) the parker is a single `AtomicU32` word
//! driven by raw `futex(2)` wait/wake: `unpark` is one atomic swap plus — only
//! when the peer is actually asleep — one `FUTEX_WAKE` syscall, with no lock
//! on either side. Everywhere else a `Mutex` + `Condvar` pair provides the
//! same permit contract; the fallback is compiled (and unit-tested) on all
//! platforms so a non-Linux build can never rot unnoticed. See DESIGN.md
//! §4.15 for the full state machine and memory-ordering contract.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parker state word: no permit, nobody asleep.
const EMPTY: u32 = 0;
/// Parker state word: the owning thread is asleep (or committing to sleep).
const PARKED: u32 = 1;
/// Parker state word: one permit banked.
const NOTIFIED: u32 = 2;

/// `futex(2)`-backed parker. One `AtomicU32` word, no locks.
///
/// State machine (`EMPTY`/`PARKED`/`NOTIFIED` as above):
///
/// ```text
///   park:   NOTIFIED --CAS(Acquire)--> EMPTY          (consume, no syscall)
///           EMPTY    --CAS(Acquire)--> PARKED         (publish intent)
///           ... FUTEX_WAIT(word, PARKED [, timeout])  (sleep)
///           NOTIFIED --CAS(Acquire)--> EMPTY          (consume after wake)
///           timeout: swap(EMPTY, AcqRel)              (retract; prev==NOTIFIED
///                                                      means the race was won
///                                                      by the unparker)
///   unpark: swap(NOTIFIED, Release)
///           prev == PARKED  => FUTEX_WAKE(word, 1)    (peer is asleep)
///           prev != PARKED  => done                   (permit banked free)
/// ```
///
/// The kernel re-checks `word == PARKED` under its own hashed-bucket lock
/// before sleeping, which is what makes the lock-free publish safe: an
/// `unpark` whose swap lands between our CAS and our `FUTEX_WAIT` changes the
/// word to `NOTIFIED`, so the wait returns `EAGAIN` immediately instead of
/// sleeping through the wake.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod futex_imp {
    use super::{EMPTY, NOTIFIED, PARKED};
    use std::ffi::{c_int, c_long};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Instant;

    #[cfg(target_arch = "x86_64")]
    const SYS_FUTEX: c_long = 202;
    #[cfg(target_arch = "aarch64")]
    const SYS_FUTEX: c_long = 98;

    const FUTEX_WAIT: c_int = 0;
    const FUTEX_WAKE: c_int = 1;
    /// Process-private futex: skips the cross-process hash, and is what Miri's
    /// futex shim models.
    const FUTEX_PRIVATE_FLAG: c_int = 128;

    /// `struct timespec` on the LP64 Linux targets we gate on (both fields
    /// are 64-bit there, so no `__kernel_timespec` dance is needed).
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        /// libc's variadic syscall trampoline; std already links libc, so
        /// declaring it here adds no dependency.
        fn syscall(num: c_long, ...) -> c_long;
    }

    /// Sleeps while `word == expected`, for at most `timeout` (forever if
    /// `None`). `FUTEX_WAIT` takes a *relative* timeout measured against
    /// `CLOCK_MONOTONIC`, which matches how we derive it from [`Instant`]s.
    /// All error returns (`EAGAIN`, `EINTR`, `ETIMEDOUT`) are handled the
    /// same way: return to the caller, which re-reads the word.
    fn futex_wait(word: &AtomicU32, expected: u32, timeout: Option<std::time::Duration>) {
        let ts = timeout.map(|d| Timespec {
            tv_sec: d.as_secs().min(i64::MAX as u64) as i64,
            tv_nsec: i64::from(d.subsec_nanos()),
        });
        let ts_ptr = ts
            .as_ref()
            .map_or(std::ptr::null(), |t| t as *const Timespec);
        synq_obs::probe!(ParkFutexWaits);
        // SAFETY: the futex word outlives the call (it is borrowed), the
        // timespec (when present) is a live stack value, and FUTEX_WAIT
        // writes through neither pointer.
        unsafe {
            syscall(
                SYS_FUTEX,
                word.as_ptr(),
                FUTEX_WAIT | FUTEX_PRIVATE_FLAG,
                expected,
                ts_ptr,
            );
        }
    }

    /// Wakes at most one thread sleeping on `word`.
    fn futex_wake_one(word: &AtomicU32) {
        synq_obs::probe!(ParkFutexWakes);
        // SAFETY: the futex word outlives the call; FUTEX_WAKE reads no
        // user-space pointers beyond the word address itself.
        unsafe {
            syscall(
                SYS_FUTEX,
                word.as_ptr(),
                FUTEX_WAKE | FUTEX_PRIVATE_FLAG,
                1u32,
            );
        }
    }

    #[derive(Debug)]
    pub(super) struct Inner {
        state: AtomicU32,
    }

    impl Inner {
        pub(super) fn new() -> Self {
            Inner {
                state: AtomicU32::new(EMPTY),
            }
        }

        pub(super) fn park(&self, deadline: Option<Instant>) -> bool {
            // Fast path: consume a banked permit without any syscall.
            if self
                .state
                .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                synq_obs::probe!(ParkFastPaths);
                return true;
            }
            // Publish that we are about to sleep. An unpark that raced ahead
            // of us left NOTIFIED behind, which the failed exchange consumes
            // (Acquire on failure: the permit carries a happens-before edge).
            match self
                .state
                .compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => {}
                Err(actual) => {
                    debug_assert_eq!(actual, NOTIFIED);
                    self.state.store(EMPTY, Ordering::Relaxed);
                    synq_obs::probe!(ParkFastPaths);
                    return true;
                }
            }
            loop {
                match deadline {
                    None => futex_wait(&self.state, PARKED, None),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            // Timed out. Retract the PARKED claim; if an
                            // unpark slipped in concurrently, consume its
                            // permit so it is not spuriously banked for an
                            // unrelated later park.
                            let prev = self.state.swap(EMPTY, Ordering::AcqRel);
                            if prev == NOTIFIED {
                                return true;
                            }
                            synq_obs::probe!(ParkTimeouts);
                            return false;
                        }
                        futex_wait(&self.state, PARKED, Some(d - now));
                    }
                }
                // Woken (or EINTR/timeout): consume the permit if one landed,
                // otherwise loop — the deadline check above decides expiry.
                if self
                    .state
                    .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return true;
                }
            }
        }

        pub(super) fn unpark(&self) {
            // One swap; a syscall only if the peer is actually asleep.
            if self.state.swap(NOTIFIED, Ordering::Release) == PARKED {
                futex_wake_one(&self.state);
            } else {
                synq_obs::probe!(ParkWakeSkips);
            }
        }
    }
}

/// Portable `Mutex` + `Condvar` parker. The permit lives in an atomic word so
/// the banked-permit fast path takes no lock; the lock only bridges the
/// publish-then-sleep window (`unpark` acquires it before notifying, so its
/// notify cannot land between the parker's state check and its wait).
///
/// Compiled everywhere — it is the live backend off Linux, and on it both a
/// contract-tested reference implementation and the baseline behind the
/// public [`CondvarParker`] that the `park` benchmark compares against — so
/// the fallback can never bit-rot.
mod condvar_imp {
    use super::{EMPTY, NOTIFIED, PARKED};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Condvar, Mutex};
    use std::time::Instant;

    #[derive(Debug)]
    pub(super) struct Inner {
        state: AtomicU32,
        lock: Mutex<()>,
        cvar: Condvar,
    }

    impl Inner {
        pub(super) fn new() -> Self {
            Inner {
                state: AtomicU32::new(EMPTY),
                lock: Mutex::new(()),
                cvar: Condvar::new(),
            }
        }

        pub(super) fn park(&self, deadline: Option<Instant>) -> bool {
            // Fast path: consume a banked permit without taking the lock.
            if self
                .state
                .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                synq_obs::probe!(ParkFastPaths);
                return true;
            }
            let mut guard = self.lock.lock().unwrap();
            // Publish that we are about to sleep. An unparker that runs after
            // this CAS will take the lock and notify, so we cannot sleep
            // through its wakeup; an unparker that ran before it left
            // NOTIFIED behind, which the exchange observes.
            match self
                .state
                .compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => {}
                Err(actual) => {
                    debug_assert_eq!(actual, NOTIFIED);
                    self.state.store(EMPTY, Ordering::Relaxed);
                    synq_obs::probe!(ParkFastPaths);
                    return true;
                }
            }
            loop {
                let notified = match deadline {
                    None => {
                        synq_obs::probe!(ParkFutexWaits);
                        guard = self.cvar.wait(guard).unwrap();
                        self.state.load(Ordering::Acquire) == NOTIFIED
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            false
                        } else {
                            synq_obs::probe!(ParkFutexWaits);
                            let (g, _res) = self.cvar.wait_timeout(guard, d - now).unwrap();
                            guard = g;
                            self.state.load(Ordering::Acquire) == NOTIFIED
                        }
                    }
                };
                if notified {
                    self.state.store(EMPTY, Ordering::Release);
                    return true;
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        // Timed out. Retract the PARKED claim; if an unpark
                        // slipped in concurrently, consume it so the permit
                        // is not spuriously banked for an unrelated later
                        // park.
                        let prev = self.state.swap(EMPTY, Ordering::AcqRel);
                        if prev == NOTIFIED {
                            return true;
                        }
                        synq_obs::probe!(ParkTimeouts);
                        return false;
                    }
                }
                // Spurious wakeup: go around.
            }
        }

        pub(super) fn unpark(&self) {
            match self.state.swap(NOTIFIED, Ordering::Release) {
                PARKED => {
                    // The parker holds (or is acquiring) the lock around its
                    // sleep; taking it here ensures our notify cannot land in
                    // the window between its state check and its wait.
                    drop(self.lock.lock().unwrap());
                    synq_obs::probe!(ParkFutexWakes);
                    self.cvar.notify_one();
                }
                _ => {
                    synq_obs::probe!(ParkWakeSkips);
                }
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
use condvar_imp as imp;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
use futex_imp as imp;

/// The waiting side of a parker pair. Owned by exactly one thread.
///
/// # Examples
///
/// ```
/// use synq_primitives::Parker;
///
/// let parker = Parker::new();
/// let unparker = parker.unparker();
/// let t = std::thread::spawn(move || unparker.unpark());
/// parker.park(); // returns once the permit arrives
/// t.join().unwrap();
/// ```
#[derive(Debug)]
pub struct Parker {
    inner: Arc<imp::Inner>,
}

/// The waking side of a parker pair. Cheap to clone and `Send`/`Sync`.
#[derive(Debug, Clone)]
pub struct Unparker {
    inner: Arc<imp::Inner>,
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

impl Parker {
    /// Creates a parker with no banked permit.
    pub fn new() -> Self {
        Parker {
            inner: Arc::new(imp::Inner::new()),
        }
    }

    /// Returns a handle that can wake this parker from any thread.
    pub fn unparker(&self) -> Unparker {
        Unparker {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks the current thread until a permit is available, then consumes
    /// it. Returns immediately if a permit was already banked.
    pub fn park(&self) {
        self.inner.park(None);
    }

    /// Like [`Parker::park`] but gives up after `timeout`. Returns `true` if
    /// a permit was consumed, `false` on timeout.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        self.inner.park(Some(Instant::now() + timeout))
    }

    /// Like [`Parker::park_timeout`] with an absolute deadline.
    pub fn park_deadline(&self, deadline: Instant) -> bool {
        self.inner.park(Some(deadline))
    }
}

impl Unparker {
    /// Makes one permit available, waking the parked thread if there is one.
    /// Idempotent: multiple unparks bank at most one permit.
    pub fn unpark(&self) {
        self.inner.unpark();
    }
}

/// The portable `Mutex` + `Condvar` parker behind a public face: the same
/// permit contract as [`Parker`], always backed by the fallback
/// implementation regardless of platform. Exists so the `park` benchmark
/// (and anyone auditing the futex win) can measure the futex backend
/// against the condvar baseline on the same host. Use [`Parker`] for real
/// work — it picks the fastest backend automatically.
#[derive(Debug)]
pub struct CondvarParker {
    inner: Arc<condvar_imp::Inner>,
}

/// The waking side of a [`CondvarParker`] pair.
#[derive(Debug, Clone)]
pub struct CondvarUnparker {
    inner: Arc<condvar_imp::Inner>,
}

impl Default for CondvarParker {
    fn default() -> Self {
        Self::new()
    }
}

impl CondvarParker {
    /// Creates a condvar-backed parker with no banked permit.
    pub fn new() -> Self {
        CondvarParker {
            inner: Arc::new(condvar_imp::Inner::new()),
        }
    }

    /// Returns a handle that can wake this parker from any thread.
    pub fn unparker(&self) -> CondvarUnparker {
        CondvarUnparker {
            inner: Arc::clone(&self.inner),
        }
    }

    /// See [`Parker::park`].
    pub fn park(&self) {
        self.inner.park(None);
    }

    /// See [`Parker::park_timeout`].
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        self.inner.park(Some(Instant::now() + timeout))
    }

    /// See [`Parker::park_deadline`].
    pub fn park_deadline(&self, deadline: Instant) -> bool {
        self.inner.park(Some(deadline))
    }
}

impl CondvarUnparker {
    /// See [`Unparker::unpark`].
    pub fn unpark(&self) {
        self.inner.unpark();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the full permit-contract suite against one backend. The public
    /// `Parker` wraps whichever backend the platform selects; the macro also
    /// pins the *other* backend to the same contract so the Condvar fallback
    /// stays correct even though Linux never routes through it.
    macro_rules! permit_contract_tests {
        ($backend:path) => {
            use std::sync::Arc;
            use std::thread;
            use std::time::{Duration, Instant};
            type Inner = $backend;

            fn new_pair() -> (Arc<Inner>, Arc<Inner>) {
                let p = Arc::new(Inner::new());
                (Arc::clone(&p), p)
            }

            #[test]
            fn unpark_before_park_is_banked() {
                let (p, u) = new_pair();
                u.unpark();
                // Must return immediately.
                assert!(p.park(Some(Instant::now() + Duration::from_secs(60))));
            }

            #[test]
            fn unpark_is_idempotent() {
                let (p, u) = new_pair();
                u.unpark();
                u.unpark();
                u.unpark();
                assert!(p.park(Some(Instant::now() + Duration::from_secs(60))));
                // Only one permit was banked: a timed park must now time out.
                assert!(!p.park(Some(Instant::now() + Duration::from_millis(10))));
            }

            #[test]
            fn park_timeout_expires_without_permit() {
                let (p, _u) = new_pair();
                let start = Instant::now();
                assert!(!p.park(Some(start + Duration::from_millis(20))));
                assert!(start.elapsed() >= Duration::from_millis(20));
            }

            #[test]
            fn cross_thread_wakeup() {
                let (p, u) = new_pair();
                let t = thread::spawn(move || {
                    thread::sleep(Duration::from_millis(30));
                    u.unpark();
                });
                let start = Instant::now();
                p.park(None);
                assert!(start.elapsed() >= Duration::from_millis(20));
                t.join().unwrap();
            }

            #[test]
            fn timed_park_woken_early() {
                let (p, u) = new_pair();
                let t = thread::spawn(move || {
                    thread::sleep(Duration::from_millis(10));
                    u.unpark();
                });
                assert!(p.park(Some(Instant::now() + Duration::from_secs(60))));
                t.join().unwrap();
            }

            #[test]
            fn permit_not_banked_after_timeout_race() {
                // Repeatedly race a timeout against an unpark; whatever the
                // winner, the parker must end each round with no banked
                // permit unless the park itself reported success.
                let rounds = if cfg!(miri) { 8 } else { 100 };
                let (p, u) = new_pair();
                for _ in 0..rounds {
                    let u2 = Arc::clone(&u);
                    let t = thread::spawn(move || {
                        u2.unpark();
                    });
                    let woke = p.park(Some(Instant::now() + Duration::from_micros(50)));
                    t.join().unwrap();
                    if !woke {
                        // The unpark must still be pending exactly once.
                        p.park(None);
                    }
                    // State must now be EMPTY for the next round.
                    assert!(!p.park(Some(Instant::now() + Duration::from_micros(1))));
                }
            }

            #[test]
            fn unpark_race_with_publish() {
                // Hammer the publish window: the unpark fires with no sleep
                // offset at all, so its swap frequently lands between the
                // parker's EMPTY->PARKED CAS and its sleep. The wait must
                // never be missed (each round would otherwise hang).
                let rounds = if cfg!(miri) { 8 } else { 200 };
                let (p, u) = new_pair();
                for _ in 0..rounds {
                    let u2 = Arc::clone(&u);
                    let t = thread::spawn(move || u2.unpark());
                    p.park(None);
                    t.join().unwrap();
                }
            }

            #[test]
            fn reusable_across_rounds() {
                let rounds = if cfg!(miri) { 4 } else { 50 };
                let (p, u) = new_pair();
                for _ in 0..rounds {
                    let u2 = Arc::clone(&u);
                    let t = thread::spawn(move || {
                        thread::sleep(Duration::from_millis(1));
                        u2.unpark();
                    });
                    p.park(None);
                    t.join().unwrap();
                }
            }

            #[test]
            fn park_deadline_in_past_returns_immediately() {
                let (p, _u) = new_pair();
                assert!(!p.park(Some(Instant::now())));
            }
        };
    }

    mod platform_backend {
        permit_contract_tests!(super::super::imp::Inner);
    }

    mod condvar_backend {
        permit_contract_tests!(super::super::condvar_imp::Inner);
    }

    // The public wrapper, exercised once end to end (the backends above cover
    // the state machine; this covers the Arc plumbing and API surface).
    #[test]
    fn public_api_round_trip() {
        let p = Parker::new();
        let u = p.unparker();
        u.unpark();
        p.park();
        assert!(!p.park_timeout(Duration::from_millis(5)));
        let t = std::thread::spawn(move || u.unpark());
        assert!(p.park_deadline(Instant::now() + Duration::from_secs(60)));
        t.join().unwrap();
    }
}
