//! Thread parking with permit semantics.
//!
//! This is the Rust analogue of `java.util.concurrent.locks.LockSupport`,
//! which the paper's implementation uses "to remove threads from and restore
//! threads to the ready list". The semantics are the classic one-permit
//! protocol:
//!
//! * [`Unparker::unpark`] makes a single permit available (idempotent — at
//!   most one permit is ever banked).
//! * [`Parker::park`] consumes a permit if one is available and returns
//!   immediately; otherwise it blocks until a permit arrives.
//! * [`Parker::park_timeout`]/[`Parker::park_deadline`] additionally give up
//!   after a patience interval, which is what the synchronous queues' timed
//!   `offer`/`poll` operations are built on.
//!
//! A permit posted *before* the corresponding `park` is never lost: this is
//! exactly the property that lets lock-free algorithms publish a waiter,
//! re-check their precondition, and only then park, without missing a wakeup
//! that raced in between.
//!
//! Built on `Mutex` + `Condvar` from `std`; the fast path (permit already
//! available) takes no lock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const EMPTY: usize = 0;
const PARKED: usize = 1;
const NOTIFIED: usize = 2;

#[derive(Debug)]
struct Inner {
    state: AtomicUsize,
    lock: Mutex<()>,
    cvar: Condvar,
}

/// The waiting side of a parker pair. Owned by exactly one thread.
///
/// # Examples
///
/// ```
/// use synq_primitives::Parker;
///
/// let parker = Parker::new();
/// let unparker = parker.unparker();
/// let t = std::thread::spawn(move || unparker.unpark());
/// parker.park(); // returns once the permit arrives
/// t.join().unwrap();
/// ```
#[derive(Debug)]
pub struct Parker {
    inner: Arc<Inner>,
}

/// The waking side of a parker pair. Cheap to clone and `Send`/`Sync`.
#[derive(Debug, Clone)]
pub struct Unparker {
    inner: Arc<Inner>,
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

impl Parker {
    /// Creates a parker with no banked permit.
    pub fn new() -> Self {
        Parker {
            inner: Arc::new(Inner {
                state: AtomicUsize::new(EMPTY),
                lock: Mutex::new(()),
                cvar: Condvar::new(),
            }),
        }
    }

    /// Returns a handle that can wake this parker from any thread.
    pub fn unparker(&self) -> Unparker {
        Unparker {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks the current thread until a permit is available, then consumes
    /// it. Returns immediately if a permit was already banked.
    pub fn park(&self) {
        self.park_inner(None);
    }

    /// Like [`Parker::park`] but gives up after `timeout`. Returns `true` if
    /// a permit was consumed, `false` on timeout.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        self.park_inner(Some(Instant::now() + timeout))
    }

    /// Like [`Parker::park_timeout`] with an absolute deadline.
    pub fn park_deadline(&self, deadline: Instant) -> bool {
        self.park_inner(Some(deadline))
    }

    fn park_inner(&self, deadline: Option<Instant>) -> bool {
        let inner = &*self.inner;
        // Fast path: consume a banked permit without taking the lock.
        if inner
            .state
            .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return true;
        }
        let mut guard = inner.lock.lock().unwrap();
        // Publish that we are about to sleep. An unparker that runs after
        // this CAS will take the lock and notify, so we cannot sleep through
        // its wakeup; an unparker that ran before it left NOTIFIED behind,
        // which the exchange observes.
        match inner
            .state
            .compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(_) => {}
            Err(actual) => {
                debug_assert_eq!(actual, NOTIFIED);
                inner.state.store(EMPTY, Ordering::Release);
                return true;
            }
        }
        loop {
            let notified = match deadline {
                None => {
                    guard = inner.cvar.wait(guard).unwrap();
                    inner.state.load(Ordering::Acquire) == NOTIFIED
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        false
                    } else {
                        let (g, _res) = inner.cvar.wait_timeout(guard, d - now).unwrap();
                        guard = g;
                        inner.state.load(Ordering::Acquire) == NOTIFIED
                    }
                }
            };
            if notified {
                inner.state.store(EMPTY, Ordering::Release);
                return true;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    // Timed out. Retract the PARKED claim; if an unpark
                    // slipped in concurrently, consume it so the permit is
                    // not spuriously banked for an unrelated later park.
                    let prev = inner.state.swap(EMPTY, Ordering::AcqRel);
                    return prev == NOTIFIED;
                }
            }
            // Spurious wakeup: go around.
        }
    }
}

impl Unparker {
    /// Makes one permit available, waking the parked thread if there is one.
    /// Idempotent: multiple unparks bank at most one permit.
    pub fn unpark(&self) {
        let inner = &*self.inner;
        match inner.state.swap(NOTIFIED, Ordering::Release) {
            EMPTY | NOTIFIED => {}
            PARKED => {
                // The parker holds (or is acquiring) the lock around its
                // sleep; taking it here ensures our notify cannot land in
                // the window between its state check and its wait.
                drop(inner.lock.lock().unwrap());
                inner.cvar.notify_one();
            }
            _ => unreachable!("invalid parker state"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unpark_before_park_is_banked() {
        let p = Parker::new();
        p.unparker().unpark();
        // Must return immediately.
        p.park();
    }

    #[test]
    fn unpark_is_idempotent() {
        let p = Parker::new();
        let u = p.unparker();
        u.unpark();
        u.unpark();
        u.unpark();
        p.park();
        // Only one permit was banked: a timed park must now time out.
        assert!(!p.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn park_timeout_expires_without_permit() {
        let p = Parker::new();
        let start = Instant::now();
        assert!(!p.park_timeout(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn cross_thread_wakeup() {
        let p = Parker::new();
        let u = p.unparker();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            u.unpark();
        });
        let start = Instant::now();
        p.park();
        assert!(start.elapsed() >= Duration::from_millis(20));
        t.join().unwrap();
    }

    #[test]
    fn timed_park_woken_early() {
        let p = Parker::new();
        let u = p.unparker();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            u.unpark();
        });
        assert!(p.park_timeout(Duration::from_secs(60)));
        t.join().unwrap();
    }

    #[test]
    fn permit_not_banked_after_timeout_race() {
        // Repeatedly race a timeout against an unpark; whatever the winner,
        // the parker must end each round with no banked permit unless the
        // park itself reported success.
        let p = Parker::new();
        let u = p.unparker();
        for _ in 0..100 {
            let u2 = u.clone();
            let t = thread::spawn(move || {
                u2.unpark();
            });
            let woke = p.park_timeout(Duration::from_micros(50));
            t.join().unwrap();
            if !woke {
                // The unpark must still be pending exactly once.
                p.park();
            }
            // State must now be EMPTY for the next round.
            assert!(!p.park_timeout(Duration::from_micros(1)));
        }
    }

    #[test]
    fn reusable_across_rounds() {
        let p = Parker::new();
        let u = p.unparker();
        for _ in 0..50 {
            let u2 = u.clone();
            let t = thread::spawn(move || u2.unpark());
            p.park();
            t.join().unwrap();
        }
    }

    #[test]
    fn park_deadline_in_past_returns_immediately() {
        let p = Parker::new();
        assert!(!p.park_deadline(Instant::now()));
    }
}
