//! A lock-free single-slot mailbox for handing an [`Unparker`] to a
//! fulfilling thread.
//!
//! Every node in the synchronous dual queue/stack owns one `WaiterCell`. The
//! waiting thread *registers* its unparker just before parking; the thread
//! that matches (or cancels) the node *takes* the unparker and wakes the
//! waiter. Both sides race freely: registration and take are single
//! `AtomicPtr` swaps, so the cell never blocks and never loses a wakeup —
//! if `take` runs before `register`, the waiter's pre-park re-check of the
//! node state observes the match and skips parking (and if it does park, the
//! matcher's subsequent `take`+unpark wakes it).

use crate::parker::Unparker;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// Single-slot, lock-free unparker mailbox.
///
/// # Examples
///
/// ```
/// use synq_primitives::{Parker, WaiterCell};
///
/// let cell = WaiterCell::new();
/// let parker = Parker::new();
/// cell.register(parker.unparker());
/// if let Some(u) = cell.take() {
///     u.unpark();
/// }
/// parker.park();
/// ```
#[derive(Debug)]
pub struct WaiterCell {
    slot: AtomicPtr<Unparker>,
}

impl Default for WaiterCell {
    fn default() -> Self {
        Self::new()
    }
}

impl WaiterCell {
    /// Creates an empty cell.
    pub fn new() -> Self {
        WaiterCell {
            slot: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Publishes `unparker` so a matching thread can wake us. If an
    /// unparker was already registered it is replaced (and dropped).
    pub fn register(&self, unparker: Unparker) {
        let new = Box::into_raw(Box::new(unparker));
        let old = self.slot.swap(new, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: non-null slot values are always Box::into_raw results
            // and the swap transferred exclusive ownership to us.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// Removes and returns the registered unparker, if any. At most one
    /// caller obtains it.
    pub fn take(&self) -> Option<Unparker> {
        let old = self.slot.swap(ptr::null_mut(), Ordering::AcqRel);
        if old.is_null() {
            None
        } else {
            // SAFETY: as in `register`, ownership transferred by the swap.
            Some(*unsafe { Box::from_raw(old) })
        }
    }

    /// Takes the unparker and wakes the waiter if one was registered.
    /// Convenience for the matcher/canceller side.
    pub fn wake(&self) {
        if let Some(u) = self.take() {
            u.unpark();
        }
    }

    /// True if no unparker is currently registered.
    pub fn is_empty(&self) -> bool {
        self.slot.load(Ordering::Acquire).is_null()
    }
}

impl Drop for WaiterCell {
    fn drop(&mut self) {
        let old = *self.slot.get_mut();
        if !old.is_null() {
            // SAFETY: exclusive access in Drop; slot values are boxed.
            drop(unsafe { Box::from_raw(old) });
        }
    }
}

// SAFETY: the cell hands `Unparker`s (which are Send + Sync) across threads
// through an atomic pointer with AcqRel transfer-of-ownership.
unsafe impl Send for WaiterCell {}
unsafe impl Sync for WaiterCell {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parker::Parker;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn take_from_empty_is_none() {
        let c = WaiterCell::new();
        assert!(c.take().is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn register_then_take() {
        let c = WaiterCell::new();
        let p = Parker::new();
        c.register(p.unparker());
        assert!(!c.is_empty());
        let u = c.take().expect("registered");
        assert!(c.is_empty());
        u.unpark();
        p.park();
    }

    #[test]
    fn second_take_is_none() {
        let c = WaiterCell::new();
        let p = Parker::new();
        c.register(p.unparker());
        assert!(c.take().is_some());
        assert!(c.take().is_none());
    }

    #[test]
    fn reregistration_replaces() {
        let c = WaiterCell::new();
        let p1 = Parker::new();
        let p2 = Parker::new();
        c.register(p1.unparker());
        c.register(p2.unparker());
        c.wake();
        // p2 got the permit, p1 did not.
        assert!(p2.park_timeout(Duration::from_millis(100)));
        assert!(!p1.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn dropping_nonempty_cell_frees_unparker() {
        let c = WaiterCell::new();
        let p = Parker::new();
        c.register(p.unparker());
        drop(c); // must not leak or double-free (asserted by miri/asan runs)
    }

    #[test]
    fn concurrent_takers_get_at_most_one() {
        for _ in 0..200 {
            let c = Arc::new(WaiterCell::new());
            let p = Parker::new();
            c.register(p.unparker());
            let mut handles = Vec::new();
            let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let hits = Arc::clone(&hits);
                handles.push(thread::spawn(move || {
                    if c.take().is_some() {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(hits.load(Ordering::Relaxed), 1);
        }
    }
}
