//! A lock-free single-slot mailbox for handing a wake handle to a
//! fulfilling thread.
//!
//! Every node in the synchronous dual queue/stack owns one `WaiterCell`. The
//! waiting side *registers* how it wants to be woken just before suspending;
//! the thread that matches (or cancels) the node *takes* the handle and
//! wakes the waiter. Since PR 3 the registered handle is a [`WakeHandle`]:
//! either a thread [`Unparker`] (the blocking wait loop) or a
//! [`core::task::Waker`] (the poll-mode wait loop used by `synq-async`) —
//! the cell itself is the point where the two wait modes converge, so a
//! fulfiller never needs to know *what* is waiting on the other side.
//!
//! Both sides race freely: registration and take are single `AtomicPtr`
//! swaps, so the cell never blocks and never loses a wakeup — if `take`
//! runs before `register`, the waiter's post-register re-check of the node
//! state observes the match and skips suspending (and if it does suspend,
//! the matcher's subsequent `take`+wake wakes it).

use crate::parker::Unparker;
use core::task::Waker;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// How to wake a waiter: unpark its thread or wake its task.
///
/// The two arms are the paper's `LockSupport.unpark` and the async world's
/// `Waker::wake` — same role, different scheduler.
#[derive(Debug, Clone)]
pub enum WakeHandle {
    /// A blocked thread; waking unparks it.
    Thread(Unparker),
    /// A suspended async task; waking schedules it for re-poll.
    Task(Waker),
}

impl WakeHandle {
    /// Wakes the waiter this handle stands for.
    pub fn wake(self) {
        match self {
            WakeHandle::Thread(u) => u.unpark(),
            WakeHandle::Task(w) => w.wake(),
        }
    }
}

impl From<Unparker> for WakeHandle {
    fn from(u: Unparker) -> Self {
        WakeHandle::Thread(u)
    }
}

impl From<Waker> for WakeHandle {
    fn from(w: Waker) -> Self {
        WakeHandle::Task(w)
    }
}

/// Single-slot, lock-free wake-handle mailbox.
///
/// # Examples
///
/// ```
/// use synq_primitives::{Parker, WaiterCell};
///
/// let cell = WaiterCell::new();
/// let parker = Parker::new();
/// cell.register(parker.unparker());
/// if let Some(handle) = cell.take() {
///     handle.wake();
/// }
/// parker.park();
/// ```
#[derive(Debug)]
pub struct WaiterCell {
    slot: AtomicPtr<WakeHandle>,
}

impl Default for WaiterCell {
    fn default() -> Self {
        Self::new()
    }
}

impl WaiterCell {
    /// Creates an empty cell.
    pub fn new() -> Self {
        WaiterCell {
            slot: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Publishes `unparker` so a matching thread can wake us. If a handle
    /// was already registered it is replaced (and dropped).
    pub fn register(&self, unparker: Unparker) {
        self.register_handle(WakeHandle::Thread(unparker));
    }

    /// Publishes a clone of `waker` so a matching thread can reschedule our
    /// task. If a handle was already registered it is replaced (and
    /// dropped) — the poll contract's "only the most recent waker need be
    /// woken".
    pub fn register_waker(&self, waker: &Waker) {
        self.register_handle(WakeHandle::Task(waker.clone()));
    }

    /// Publishes an explicit [`WakeHandle`].
    pub fn register_handle(&self, handle: WakeHandle) {
        let new = Box::into_raw(Box::new(handle));
        let old = self.slot.swap(new, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: non-null slot values are always Box::into_raw results
            // and the swap transferred exclusive ownership to us.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// Removes and returns the registered handle, if any. At most one
    /// caller obtains it.
    pub fn take(&self) -> Option<WakeHandle> {
        let old = self.slot.swap(ptr::null_mut(), Ordering::AcqRel);
        if old.is_null() {
            None
        } else {
            // SAFETY: as in `register_handle`, ownership transferred by the
            // swap.
            Some(*unsafe { Box::from_raw(old) })
        }
    }

    /// Takes the handle and wakes the waiter if one was registered.
    /// Convenience for the matcher/canceller side.
    pub fn wake(&self) {
        if let Some(h) = self.take() {
            h.wake();
        }
    }

    /// True if no handle is currently registered.
    pub fn is_empty(&self) -> bool {
        self.slot.load(Ordering::Acquire).is_null()
    }
}

impl Drop for WaiterCell {
    fn drop(&mut self) {
        let old = *self.slot.get_mut();
        if !old.is_null() {
            // SAFETY: exclusive access in Drop; slot values are boxed.
            drop(unsafe { Box::from_raw(old) });
        }
    }
}

// SAFETY: the cell hands `WakeHandle`s (Unparker and Waker are both
// Send + Sync) across threads through an atomic pointer with AcqRel
// transfer-of-ownership.
unsafe impl Send for WaiterCell {}
unsafe impl Sync for WaiterCell {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parker::Parker;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn take_from_empty_is_none() {
        let c = WaiterCell::new();
        assert!(c.take().is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn register_then_take() {
        let c = WaiterCell::new();
        let p = Parker::new();
        c.register(p.unparker());
        assert!(!c.is_empty());
        let h = c.take().expect("registered");
        assert!(c.is_empty());
        h.wake();
        p.park();
    }

    #[test]
    fn second_take_is_none() {
        let c = WaiterCell::new();
        let p = Parker::new();
        c.register(p.unparker());
        assert!(c.take().is_some());
        assert!(c.take().is_none());
    }

    #[test]
    fn reregistration_replaces() {
        let c = WaiterCell::new();
        let p1 = Parker::new();
        let p2 = Parker::new();
        c.register(p1.unparker());
        c.register(p2.unparker());
        c.wake();
        // p2 got the permit, p1 did not.
        assert!(p2.park_timeout(Duration::from_millis(100)));
        assert!(!p1.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn dropping_nonempty_cell_frees_handle() {
        let c = WaiterCell::new();
        let p = Parker::new();
        c.register(p.unparker());
        drop(c); // must not leak or double-free (asserted by miri/asan runs)
    }

    #[test]
    fn concurrent_takers_get_at_most_one() {
        for _ in 0..200 {
            let c = Arc::new(WaiterCell::new());
            let p = Parker::new();
            c.register(p.unparker());
            let mut handles = Vec::new();
            let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let hits = Arc::clone(&hits);
                handles.push(thread::spawn(move || {
                    if c.take().is_some() {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(hits.load(Ordering::Relaxed), 1);
        }
    }

    /// A countable waker for the task arm.
    fn counting_waker(hits: Arc<std::sync::atomic::AtomicUsize>) -> Waker {
        struct W(Arc<std::sync::atomic::AtomicUsize>);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        Waker::from(Arc::new(W(hits)))
    }

    #[test]
    fn waker_registration_wakes_task() {
        let c = WaiterCell::new();
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        c.register_waker(&counting_waker(Arc::clone(&hits)));
        assert!(!c.is_empty());
        c.wake();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // One-shot: the handle is consumed.
        c.wake();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn waker_replaces_unparker_and_vice_versa() {
        let c = WaiterCell::new();
        let p = Parker::new();
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        c.register(p.unparker());
        c.register_waker(&counting_waker(Arc::clone(&hits)));
        c.wake();
        assert_eq!(hits.load(Ordering::SeqCst), 1, "waker replaced unparker");
        assert!(!p.park_timeout(Duration::from_millis(10)));
        // And back: an unparker replaces a registered waker.
        c.register_waker(&counting_waker(Arc::clone(&hits)));
        c.register(p.unparker());
        c.wake();
        assert_eq!(hits.load(Ordering::SeqCst), 1, "unparker replaced waker");
        assert!(p.park_timeout(Duration::from_millis(100)));
    }
}
