//! Patience bounds for blocking operations.
//!
//! `Deadline` used to live next to the `Transferer` trait in `synq-core`,
//! but the shared [`crate::WaitSlot`] engine needs it too, so it lives here
//! at the bottom of the crate graph. `synq::Deadline` remains a re-export.

use std::time::{Duration, Instant};

/// How long a blocking operation is willing to wait for a counterpart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// Wait indefinitely (`put`/`take`).
    Never,
    /// Do not wait at all (`offer`/`poll`).
    Now,
    /// Wait until the given instant (`offer`/`poll` with patience).
    At(Instant),
}

impl Deadline {
    /// Deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Deadline::At(Instant::now() + timeout)
    }

    /// True for `Now` and `At` — waits that must track time.
    #[inline]
    pub fn is_timed(&self) -> bool {
        !matches!(self, Deadline::Never)
    }

    /// True if no waiting is permitted.
    #[inline]
    pub fn is_now(&self) -> bool {
        matches!(self, Deadline::Now)
    }

    /// True once the deadline has passed (always for `Now`, never for
    /// `Never`).
    #[inline]
    pub fn expired(&self) -> bool {
        match self {
            Deadline::Never => false,
            Deadline::Now => true,
            Deadline::At(t) => Instant::now() >= *t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_now_is_expired_and_timed() {
        assert!(Deadline::Now.expired());
        assert!(Deadline::Now.is_timed());
        assert!(Deadline::Now.is_now());
    }

    #[test]
    fn deadline_never_never_expires() {
        assert!(!Deadline::Never.expired());
        assert!(!Deadline::Never.is_timed());
        assert!(!Deadline::Never.is_now());
    }

    #[test]
    fn deadline_after_expires_in_the_future() {
        let d = Deadline::after(Duration::from_millis(30));
        assert!(d.is_timed());
        assert!(!d.is_now());
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(40));
        assert!(d.expired());
    }
}
