//! Cache-line padding for contended atomics.
//!
//! The paper's contention-freedom property (§2.2) is about keeping waiting
//! threads off cache lines that other threads must write; that discipline
//! is wasted if two independently contended words share one physical line
//! and ping-pong anyway (false sharing). [`CachePadded`] aligns its
//! contents to 128 bytes: on modern x86 the spatial prefetcher treats
//! aligned 128-byte blocks as a unit (two 64-byte lines), and several arm64
//! parts (Apple M-series, some Cortex) have true 128-byte lines, so 128 is
//! the safe portable choice — the same one crossbeam-utils makes.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so it owns its cache line(s).
///
/// Wrap each independently contended hot word (a queue's `head` and `tail`,
/// a ticket lock's two counters, per-thread epoch records) so writers of
/// one word do not invalidate readers of its neighbours.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`, padding it out to its own cache line(s).
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value, consuming the wrapper.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

// The padding bytes carry no data, so the wrapper is exactly as thread-safe
// as its contents.
unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use core::mem::{align_of, size_of};
    use core::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn alignment_is_at_least_128() {
        assert!(align_of::<CachePadded<u8>>() >= 128);
        assert!(align_of::<CachePadded<AtomicUsize>>() >= 128);
        assert!(align_of::<CachePadded<[u8; 1024]>>() >= 128);
    }

    #[test]
    fn size_rounds_up_to_alignment_multiples() {
        assert_eq!(size_of::<CachePadded<u8>>(), 128);
        assert_eq!(size_of::<CachePadded<AtomicUsize>>(), 128);
        assert_eq!(size_of::<CachePadded<[u8; 130]>>(), 256);
        // Arrays of padded values put each element on its own line(s).
        assert_eq!(size_of::<[CachePadded<AtomicUsize>; 4]>(), 4 * 128);
    }

    #[test]
    fn deref_and_deref_mut_reach_the_value() {
        let mut padded = CachePadded::new(AtomicUsize::new(7));
        assert_eq!(padded.load(Ordering::Relaxed), 7);
        padded.store(9, Ordering::Relaxed);
        assert_eq!(padded.load(Ordering::Relaxed), 9);
        *padded.get_mut() = 11;
        assert_eq!(padded.into_inner().into_inner(), 11);
    }

    #[test]
    fn default_debug_from_behave() {
        let padded: CachePadded<usize> = CachePadded::default();
        assert_eq!(*padded, 0);
        let from: CachePadded<usize> = 42.into();
        assert_eq!(*from, 42);
        assert_eq!(format!("{from:?}"), "CachePadded(42)");
    }

    #[test]
    fn const_constructible() {
        static SHARED: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(3));
        assert_eq!(SHARED.load(Ordering::Relaxed), 3);
    }
}
