//! A semaphore with a lock-free fast path (a *benaphore*).
//!
//! The paper notes that Hanson-style queues can be improved "by using a
//! fast-path acquire sequence \[11\]; this was done in early releases of
//! the `dl.util.concurrent` package which evolved into
//! `java.util.concurrent`". This is that optimization: an atomic counter
//! gates entry, and the mutex/condvar machinery of [`crate::Semaphore`] is
//! touched only when a thread must actually block or unblock. An
//! uncontended acquire or release is a single atomic RMW — no lock, no
//! syscall.
//!
//! The scheme (Benoit Schillings' "benaphore"):
//!
//! * `acquire`: `count.fetch_sub(1)`; a positive previous value means a
//!   permit was free — done. Otherwise wait for a token on the inner
//!   semaphore.
//! * `release`: `count.fetch_add(1)`; a negative previous value means
//!   someone is (or will be) waiting — post one token.
//!
//! Tokens and waiters pair one-to-one, so no wakeup is lost and none is
//! spurious. Timed acquire is deliberately **not** offered: a timed-out
//! waiter can race an in-flight token and either leak it or steal a later
//! waiter's wakeup; Hanson's queue (the consumer of this type) does not
//! need it — which is exactly the paper's point about that design's
//! inflexibility.

use crate::cache_padded::CachePadded;
use crate::semaphore::Semaphore;
use std::sync::atomic::{AtomicI64, Ordering};

/// Counting semaphore with an uncontended fast path.
///
/// # Examples
///
/// ```
/// use synq_primitives::FastSemaphore;
///
/// let sem = FastSemaphore::new(1);
/// sem.acquire();           // fast path: one atomic op
/// assert!(!sem.try_acquire());
/// sem.release();           // fast path: one atomic op
/// assert!(sem.try_acquire());
/// ```
#[derive(Debug)]
pub struct FastSemaphore {
    /// Available permits minus pending waiters. Padded so the RMW-heavy
    /// fast path never contends with the slow-path monitor state below.
    count: CachePadded<AtomicI64>,
    /// Wakeup tokens for threads that lost the fast path.
    tokens: Semaphore,
}

// The whole point of the benaphore is that the fast path touches only
// `count`; keep the slow-path machinery off its cache line.
const _: () = assert!(std::mem::align_of::<FastSemaphore>() >= 128);

impl FastSemaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: i64) -> Self {
        FastSemaphore {
            count: CachePadded::new(AtomicI64::new(permits)),
            tokens: Semaphore::new(0),
        }
    }

    /// Takes a permit, blocking if none is available.
    pub fn acquire(&self) {
        if self.count.fetch_sub(1, Ordering::AcqRel) > 0 {
            return; // fast path
        }
        self.tokens.acquire();
    }

    /// Takes a permit only if one is immediately available (never blocks,
    /// never joins the waiter protocol).
    pub fn try_acquire(&self) -> bool {
        let mut c = self.count.load(Ordering::Acquire);
        while c > 0 {
            match self
                .count
                .compare_exchange_weak(c, c - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(actual) => c = actual,
            }
        }
        false
    }

    /// Returns a permit, waking one waiter if any lost the fast path.
    pub fn release(&self) {
        if self.count.fetch_add(1, Ordering::AcqRel) < 0 {
            self.tokens.release();
        }
    }

    /// Current logical permit count (negative = waiters outstanding).
    pub fn permits(&self) -> i64 {
        self.count.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as O};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn uncontended_roundtrip() {
        let s = FastSemaphore::new(2);
        s.acquire();
        s.acquire();
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        s.release();
        s.release();
        assert_eq!(s.permits(), 2);
    }

    #[test]
    fn blocked_acquire_woken_by_release() {
        let s = Arc::new(FastSemaphore::new(0));
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || {
            s2.acquire();
        });
        thread::sleep(Duration::from_millis(20));
        s.release();
        t.join().unwrap();
    }

    #[test]
    fn negative_initial_count() {
        let s = FastSemaphore::new(-1);
        assert!(!s.try_acquire());
        s.release();
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn mutual_exclusion_as_binary_semaphore() {
        let s = Arc::new(FastSemaphore::new(1));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            let in_cs = Arc::clone(&in_cs);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                for _ in 0..500 {
                    s.acquire();
                    assert_eq!(in_cs.fetch_add(1, O::SeqCst), 0);
                    total.fetch_add(1, O::Relaxed);
                    in_cs.fetch_sub(1, O::SeqCst);
                    s.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(O::Relaxed), 8 * 500);
        assert_eq!(s.permits(), 1);
    }

    #[test]
    fn token_waiter_pairing_under_churn() {
        // N producers release, N consumers acquire, counts must balance
        // with no thread left asleep.
        let s = Arc::new(FastSemaphore::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..1_000 {
                    s.acquire();
                }
            }));
        }
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..1_000 {
                    s.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.permits(), 0);
    }
}
