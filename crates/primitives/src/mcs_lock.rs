//! An MCS queue lock (Mellor-Crummey & Scott, paper reference \[13\]).
//!
//! The paper's *contention-freedom* definition descends from the
//! "local-spin" property that MCS locks introduced: every waiting thread
//! spins only on a flag in its **own** queue node, so lock handoff causes
//! exactly one remote cache-line transfer regardless of how many threads
//! wait. The synchronous dual queue/stack inherit the same discipline —
//! waiters poll their own node's state word — which is why this lock lives
//! here as the canonical ancestor (and as an alternative fair lock for the
//! Java 5 baseline: like [`crate::TicketLock`] it grants strictly FIFO, but
//! by pointer-chasing a queue instead of a counter).
//!
//! The waiting strategy is spin-then-park: pure local spinning is correct
//! but wasteful on oversubscribed machines, so after a short budget the
//! waiter parks and the releaser unparks it.

use crate::parker::{Parker, Unparker};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

struct McsNode {
    locked: AtomicBool,
    next: AtomicPtr<McsNode>,
    /// Set by the waiter before parking; consumed by the releaser.
    unparker: AtomicPtr<Unparker>,
}

impl McsNode {
    fn new() -> Box<McsNode> {
        Box::new(McsNode {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
            unparker: AtomicPtr::new(ptr::null_mut()),
        })
    }
}

/// A strictly FIFO queue lock with local spinning.
///
/// # Examples
///
/// ```
/// use synq_primitives::McsLock;
///
/// let lock = McsLock::new();
/// {
///     let _guard = lock.lock();
///     // critical section
/// }
/// assert!(lock.try_lock().is_some());
/// ```
#[derive(Debug)]
pub struct McsLock {
    tail: AtomicPtr<McsNode>,
}

/// RAII guard for [`McsLock`].
pub struct McsLockGuard<'a> {
    lock: &'a McsLock,
    node: *mut McsNode,
}

impl std::fmt::Debug for McsLockGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("McsLockGuard { .. }")
    }
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Local spins before parking (scaled down to zero on uniprocessors by the
/// same reasoning as [`crate::SpinPolicy`]).
fn spin_budget() -> u32 {
    if crate::backoff::ncpus() < 2 {
        0
    } else {
        256
    }
}

impl McsLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Acquires the lock, queueing FIFO behind existing waiters and
    /// spinning only on our own node.
    pub fn lock(&self) -> McsLockGuard<'_> {
        let node = Box::into_raw(McsNode::new());
        // Swap ourselves in as the tail; our predecessor (if any) will
        // hand us the lock through OUR node.
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if pred.is_null() {
            // Uncontended: we hold the lock.
            return McsLockGuard { lock: self, node };
        }
        // SAFETY: a predecessor node stays alive until it passes us the
        // lock (it frees itself only after its unlock, which first
        // publishes to our node).
        unsafe { (*pred).next.store(node, Ordering::Release) };

        // Local spin on our own `locked` flag, then park.
        let mut spins = spin_budget();
        let mut parker: Option<Parker> = None;
        // SAFETY: `node` is ours; the releaser only touches its atomics.
        let node_ref = unsafe { &*node };
        loop {
            if !node_ref.locked.load(Ordering::Acquire) {
                // Consume any unparker we registered but never needed.
                let u = node_ref.unparker.swap(ptr::null_mut(), Ordering::AcqRel);
                if !u.is_null() {
                    // SAFETY: we boxed it below.
                    drop(unsafe { Box::from_raw(u) });
                }
                return McsLockGuard { lock: self, node };
            }
            if spins > 0 {
                spins -= 1;
                std::hint::spin_loop();
                continue;
            }
            let parker = parker.get_or_insert_with(Parker::new);
            let u = Box::into_raw(Box::new(parker.unparker()));
            let old = node_ref.unparker.swap(u, Ordering::AcqRel);
            if !old.is_null() {
                // SAFETY: previous registration we own again.
                drop(unsafe { Box::from_raw(old) });
            }
            // Re-check after publishing the unparker (avoid lost wakeup).
            if !node_ref.locked.load(Ordering::Acquire) {
                continue;
            }
            parker.park();
        }
    }

    /// Acquires only if nobody holds or waits for the lock.
    pub fn try_lock(&self) -> Option<McsLockGuard<'_>> {
        let node = Box::into_raw(McsNode::new());
        match self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Some(McsLockGuard { lock: self, node }),
            Err(_) => {
                // SAFETY: node never published.
                drop(unsafe { Box::from_raw(node) });
                None
            }
        }
    }

    fn unlock(&self, node: *mut McsNode) {
        // SAFETY: we own `node` until we hand off / retire below.
        let node_ref = unsafe { &*node };
        let mut next = node_ref.next.load(Ordering::Acquire);
        if next.is_null() {
            // No known successor: try to swing the tail back to null.
            if self
                .tail
                .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: unpublished everywhere; retire our node.
                drop(unsafe { Box::from_raw(node) });
                return;
            }
            // A successor is mid-enqueue (swapped the tail but has not yet
            // linked `next`): wait for the link. This window is a handful
            // of its instructions.
            loop {
                next = node_ref.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                std::hint::spin_loop();
            }
        }
        // Hand the lock to the successor through ITS node (local to it).
        // SAFETY: successor's node is alive until we flip its flag.
        let next_ref = unsafe { &*next };
        next_ref.locked.store(false, Ordering::Release);
        let u = next_ref.unparker.swap(ptr::null_mut(), Ordering::AcqRel);
        if !u.is_null() {
            // SAFETY: boxed by the waiter.
            let u = unsafe { Box::from_raw(u) };
            u.unpark();
        }
        // SAFETY: nobody references our node anymore.
        drop(unsafe { Box::from_raw(node) });
    }
}

impl Drop for McsLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock(self.node);
    }
}

// SAFETY: the queue protocol hands node ownership across threads through
// acquire/release atomics.
unsafe impl Send for McsLock {}
unsafe impl Sync for McsLock {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_unlock_uncontended() {
        let lock = McsLock::new();
        drop(lock.lock());
        drop(lock.lock());
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = McsLock::new();
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                for _ in 0..500 {
                    let _g = lock.lock();
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                    counter.fetch_add(1, Ordering::Relaxed);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 500);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn fifo_handoff_order() {
        // Queue waiters in a deterministic order; they must acquire FIFO.
        let lock = Arc::new(McsLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let queued = Arc::new(AtomicUsize::new(0));
        let guard = lock.lock();
        let mut handles = Vec::new();
        for i in 0..5 {
            let lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            let queued2 = Arc::clone(&queued);
            handles.push(thread::spawn(move || {
                queued2.fetch_add(1, Ordering::SeqCst);
                let _g = lock.lock();
                order.lock().unwrap().push(i);
            }));
            // Wait until thread i has (very probably) swapped itself into
            // the queue before spawning i+1: it increments `queued` right
            // before lock(), and we give it a grace period to reach the
            // tail swap.
            while queued.load(Ordering::SeqCst) < i + 1 {
                thread::yield_now();
            }
            thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(guard);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parked_waiter_is_woken() {
        // With a long-held lock, the waiter exhausts its spin budget and
        // parks; release must unpark it.
        let lock = Arc::new(McsLock::new());
        let g = lock.lock();
        let lock2 = Arc::clone(&lock);
        let waiter = thread::spawn(move || {
            let _g = lock2.lock();
        });
        thread::sleep(std::time::Duration::from_millis(60)); // force the park
        drop(g);
        waiter.join().unwrap();
    }

    #[test]
    fn stress_alternating_with_try_lock() {
        let lock = Arc::new(McsLock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                let mut acquired = 0;
                for _ in 0..300 {
                    if let Some(_g) = lock.try_lock() {
                        acquired += 1;
                    } else {
                        let _g = lock.lock();
                        acquired += 1;
                    }
                }
                acquired
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 4 * 300);
    }
}
