//! The spin-then-park waiting policy from the paper's "Pragmatics" section.
//!
//! > "On multiprocessors (only), nodes next in line for fulfillment spin
//! > briefly (about one-quarter the time of a typical context switch) before
//! > parking. On very busy synchronous queues, spinning can dramatically
//! > improve throughput because it handles the case of a near-simultaneous
//! > 'flyby' between a producer and consumer without stalling either."
//!
//! The constants mirror the Java 6 `SynchronousQueue` implementation:
//! `max_timed_spins = 32` on multiprocessors (0 on uniprocessors), and
//! untimed waits spin 16x longer because there is no deadline bookkeeping
//! inside the loop.

use crate::backoff::ncpus;

/// Spin iterations between deadline/cancellation polls in the wait loop.
///
/// `Instant::now()` is a vDSO call but still tens of nanoseconds — polling
/// it every spin would dominate short spins, so [`crate::WaitStrategy`]
/// amortizes it over this many iterations by default. The worst-case
/// deadline overshoot is therefore this many `spin_loop` hints, well under
/// a scheduling quantum. See DESIGN.md §4.7.
pub const DEADLINE_POLL_INTERVAL: u32 = 16;

/// How long a waiter spins on its own node before descheduling itself.
///
/// A `SpinPolicy` is deliberately tiny and `Copy`: the queues embed one per
/// instance so benchmarks can ablate spinning (experiment A1 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinPolicy {
    /// Spin iterations before parking when the wait has a deadline.
    pub max_timed_spins: u32,
    /// Spin iterations before parking when the wait is unbounded.
    pub max_untimed_spins: u32,
}

impl SpinPolicy {
    /// The adaptive default: spin only when more than one hardware thread
    /// is available, exactly as the paper prescribes.
    pub fn adaptive() -> Self {
        let timed = if ncpus() < 2 { 0 } else { 32 };
        SpinPolicy {
            max_timed_spins: timed,
            max_untimed_spins: timed * 16,
        }
    }

    /// Never spin; park immediately. One arm of ablation A1.
    pub fn park_immediately() -> Self {
        SpinPolicy {
            max_timed_spins: 0,
            max_untimed_spins: 0,
        }
    }

    /// Spin `n` times (timed) and `16 n` times (untimed) regardless of the
    /// processor count. Used by the ablation harness.
    pub fn fixed(n: u32) -> Self {
        SpinPolicy {
            max_timed_spins: n,
            max_untimed_spins: n.saturating_mul(16),
        }
    }

    /// Spin budget applicable to a wait that may or may not have a deadline.
    #[inline]
    pub fn spins_for(&self, timed: bool) -> u32 {
        if timed {
            self.max_timed_spins
        } else {
            self.max_untimed_spins
        }
    }
}

impl Default for SpinPolicy {
    fn default() -> Self {
        Self::adaptive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_matches_processor_count() {
        let p = SpinPolicy::adaptive();
        if ncpus() < 2 {
            assert_eq!(p.max_timed_spins, 0);
            assert_eq!(p.max_untimed_spins, 0);
        } else {
            assert_eq!(p.max_timed_spins, 32);
            assert_eq!(p.max_untimed_spins, 512);
        }
    }

    #[test]
    fn fixed_and_park_immediately() {
        assert_eq!(SpinPolicy::fixed(10).spins_for(true), 10);
        assert_eq!(SpinPolicy::fixed(10).spins_for(false), 160);
        assert_eq!(SpinPolicy::park_immediately().spins_for(true), 0);
        assert_eq!(SpinPolicy::park_immediately().spins_for(false), 0);
    }

    #[test]
    fn default_is_adaptive() {
        assert_eq!(SpinPolicy::default(), SpinPolicy::adaptive());
    }
}
