//! The spin-then-park waiting policy from the paper's "Pragmatics" section.
//!
//! > "On multiprocessors (only), nodes next in line for fulfillment spin
//! > briefly (about one-quarter the time of a typical context switch) before
//! > parking. On very busy synchronous queues, spinning can dramatically
//! > improve throughput because it handles the case of a near-simultaneous
//! > 'flyby' between a producer and consumer without stalling either."
//!
//! The Java 6 `SynchronousQueue` hard-codes that "briefly" as 32 iterations
//! (timed) / 512 (untimed). Since PR 10 the default policy instead
//! *calibrates* the budget online: a [`SpinCalibrator`] shared by every
//! waiter of one structure tracks an EWMA of how many spin iterations recent
//! direct (flyby) handoffs actually took and budgets ~2x that, decaying
//! toward pure parking when peers routinely arrive too late to catch
//! spinning. This is the paper's "optimal spin" knob made self-tuning; the
//! fixed settings remain available for the ablation harness (experiment A1).
//! Calibration math is specified in DESIGN.md §4.15.

use crate::backoff::ncpus;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Spin iterations between deadline/cancellation polls in the wait loop.
///
/// `Instant::now()` is a vDSO call but still tens of nanoseconds — polling
/// it every spin would dominate short spins, so [`crate::WaitStrategy`]
/// amortizes it over this many iterations by default. The worst-case
/// deadline overshoot is therefore this many `spin_loop` hints, well under
/// a scheduling quantum. See DESIGN.md §4.7.
pub const DEADLINE_POLL_INTERVAL: u32 = 16;

/// Hard ceiling on the calibrated *timed* spin budget, in spin iterations.
///
/// Chosen to equal the exponential backoff's full-grown step,
/// [`crate::backoff::BACKOFF_SPIN_CAP`] (`2^6`), so a waiter that exhausts
/// its adaptive budget has spun no longer than one maximal backoff round:
/// the two tuning knobs agree on what "a context switch is cheaper than
/// this" means. Untimed waits get 16x this, as in the Java implementation,
/// because they do no deadline bookkeeping inside the loop.
pub const ADAPTIVE_SPIN_CAP: u32 = 64;

// The "one context switch is worth this many spins" line must be drawn in
// the same place by both tuning knobs (see `BACKOFF_SPIN_CAP`'s docs).
const _: () = assert!(ADAPTIVE_SPIN_CAP == crate::backoff::BACKOFF_SPIN_CAP);

/// EWMA seed, in spin iterations. `2 x 16 = 32` initial timed budget — the
/// classic Java constant — until real handoff samples arrive.
const EWMA_SEED_SPINS: u32 = 16;

/// EWMA smoothing factor `alpha = 1/8` as a right-shift.
const EWMA_ALPHA_SHIFT: u32 = 3;

/// Fixed-point scale for the EWMA word (`x16`), so decay below one whole
/// spin iteration is representable.
const EWMA_FP_SHIFT: u32 = 4;

/// Online estimator of direct-handoff latency, shared (via `Arc`) by all
/// waiters of one structure.
///
/// The unit of measurement is *spin-loop iterations*, not nanoseconds: the
/// wait loop already counts how many iterations it spun before its slot was
/// fulfilled, so sampling costs zero extra clock reads on the hot path
/// (a nanosecond EWMA would add two `Instant::now()` calls per handoff,
/// comparable to the cost of the spins it is trying to optimise).
///
/// All accesses are `Relaxed` read-modify-write-free loads and stores: a
/// lost update under contention merely drops one sample from the average,
/// which is harmless for a smoothing filter and keeps the observation path
/// wait-free.
#[derive(Debug)]
pub struct SpinCalibrator {
    /// EWMA of handoff samples, fixed-point `x16`.
    ewma_x16: AtomicU32,
}

impl Default for SpinCalibrator {
    fn default() -> Self {
        Self::new()
    }
}

impl SpinCalibrator {
    /// Creates a calibrator seeded at the classic fixed budget (timed budget
    /// 32) so an uncalibrated structure behaves exactly like the Java
    /// constants until evidence accumulates.
    pub fn new() -> Self {
        SpinCalibrator {
            ewma_x16: AtomicU32::new(EWMA_SEED_SPINS << EWMA_FP_SHIFT),
        }
    }

    /// Feeds one completed-wait observation into the filter.
    ///
    /// * A **direct handoff** (fulfilled while still spinning, `parked == 0`)
    ///   samples the number of iterations it actually spun: the budget
    ///   converges to ~2x the latency of the handoffs that spinning can win.
    /// * A **parked handoff** (`parked > 0`) samples zero: if peers routinely
    ///   arrive later than any reasonable spin, the spins preceding each park
    ///   are pure waste, so the budget decays toward park-immediately.
    ///
    /// Timeouts and cancellations are *not* fed in by callers — an absent
    /// peer says nothing about how fast a present one hands off.
    pub fn record_handoff(&self, spun_iters: u32, parked: bool) {
        let sample = if parked {
            0
        } else {
            spun_iters.min(ADAPTIVE_SPIN_CAP)
        };
        let sample_x16 = (sample << EWMA_FP_SHIFT) as i32;
        let cur = self.ewma_x16.load(Ordering::Relaxed) as i32;
        // ewma += (sample - ewma) * alpha, in fixed point, rounding the step
        // away from zero so a sustained level is reached *exactly* in both
        // directions (truncation would stall an upward approach just below
        // the target, and a downward one just above zero).
        let delta = sample_x16 - cur;
        let step = if delta >= 0 {
            (delta + (1 << EWMA_ALPHA_SHIFT) - 1) >> EWMA_ALPHA_SHIFT
        } else {
            delta >> EWMA_ALPHA_SHIFT
        };
        let next = cur + step;
        self.ewma_x16.store(next as u32, Ordering::Relaxed);
    }

    /// Current spin budget: ~2x the observed direct-handoff latency, capped
    /// at [`ADAPTIVE_SPIN_CAP`] (timed) or 16x that (untimed).
    #[inline]
    pub fn budget(&self, timed: bool) -> u32 {
        let ewma = self.ewma_x16.load(Ordering::Relaxed) >> EWMA_FP_SHIFT;
        let timed_budget = (ewma * 2).min(ADAPTIVE_SPIN_CAP);
        if timed {
            timed_budget
        } else {
            timed_budget * 16
        }
    }
}

/// How long a waiter spins on its own node before descheduling itself.
///
/// A `SpinPolicy` is cheap to clone — two words plus an optional shared
/// [`SpinCalibrator`] handle — and the queues embed one per instance so
/// benchmarks can ablate spinning (experiment A1 in DESIGN.md). Clones share
/// the calibrator, so handing one policy to several lanes of a striped
/// structure keeps a single per-structure estimate, which is the intent.
#[derive(Debug, Clone)]
pub struct SpinPolicy {
    /// Spin iterations before parking when the wait has a deadline. For a
    /// calibrated policy this is the cap; the live budget comes from the
    /// calibrator.
    pub max_timed_spins: u32,
    /// Spin iterations before parking when the wait is unbounded.
    pub max_untimed_spins: u32,
    /// Online budget estimator; `None` for the fixed ablation settings and
    /// on uniprocessors (where any spinning only delays the peer).
    calibrator: Option<Arc<SpinCalibrator>>,
}

impl PartialEq for SpinPolicy {
    /// Two policies are equal when they *behave* the same family-wise: same
    /// fixed bounds and same calibrated-or-not mode. The calibrator's live
    /// EWMA state is deliberately excluded so `SpinPolicy::default() ==
    /// SpinPolicy::adaptive()` holds regardless of traffic history.
    fn eq(&self, other: &Self) -> bool {
        self.max_timed_spins == other.max_timed_spins
            && self.max_untimed_spins == other.max_untimed_spins
            && self.calibrator.is_some() == other.calibrator.is_some()
    }
}

impl SpinPolicy {
    /// The adaptive default: on multiprocessors, a fresh [`SpinCalibrator`]
    /// tunes the budget online (seeded at the classic 32/512); on
    /// uniprocessors the budget is zero, exactly as the paper prescribes.
    pub fn adaptive() -> Self {
        if ncpus() < 2 {
            SpinPolicy {
                max_timed_spins: 0,
                max_untimed_spins: 0,
                calibrator: None,
            }
        } else {
            SpinPolicy {
                max_timed_spins: ADAPTIVE_SPIN_CAP,
                max_untimed_spins: ADAPTIVE_SPIN_CAP * 16,
                calibrator: Some(Arc::new(SpinCalibrator::new())),
            }
        }
    }

    /// Never spin; park immediately. One arm of ablation A1.
    pub fn park_immediately() -> Self {
        SpinPolicy {
            max_timed_spins: 0,
            max_untimed_spins: 0,
            calibrator: None,
        }
    }

    /// Spin `n` times (timed) and `16 n` times (untimed) regardless of the
    /// processor count, with no calibration. Used by the ablation harness.
    pub fn fixed(n: u32) -> Self {
        SpinPolicy {
            max_timed_spins: n,
            max_untimed_spins: n.saturating_mul(16),
            calibrator: None,
        }
    }

    /// Spin budget applicable to a wait that may or may not have a deadline.
    #[inline]
    pub fn spins_for(&self, timed: bool) -> u32 {
        match &self.calibrator {
            Some(c) => c.budget(timed),
            None => {
                if timed {
                    self.max_timed_spins
                } else {
                    self.max_untimed_spins
                }
            }
        }
    }

    /// The calibrator backing this policy, if it is an adaptive one.
    #[inline]
    pub fn calibrator(&self) -> Option<&SpinCalibrator> {
        self.calibrator.as_deref()
    }
}

impl Default for SpinPolicy {
    fn default() -> Self {
        Self::adaptive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_matches_processor_count() {
        let p = SpinPolicy::adaptive();
        if ncpus() < 2 {
            assert_eq!(p.max_timed_spins, 0);
            assert!(p.calibrator().is_none());
            assert_eq!(p.spins_for(true), 0);
        } else {
            assert_eq!(p.max_timed_spins, ADAPTIVE_SPIN_CAP);
            assert_eq!(p.max_untimed_spins, ADAPTIVE_SPIN_CAP * 16);
            // Seeded at the classic Java constants until samples arrive.
            assert_eq!(p.spins_for(true), 32);
            assert_eq!(p.spins_for(false), 512);
        }
    }

    #[test]
    fn fixed_and_park_immediately() {
        assert_eq!(SpinPolicy::fixed(10).spins_for(true), 10);
        assert_eq!(SpinPolicy::fixed(10).spins_for(false), 160);
        assert_eq!(SpinPolicy::park_immediately().spins_for(true), 0);
        assert_eq!(SpinPolicy::park_immediately().spins_for(false), 0);
    }

    #[test]
    fn default_is_adaptive() {
        assert_eq!(SpinPolicy::default(), SpinPolicy::adaptive());
    }

    #[test]
    fn clones_share_one_calibrator() {
        let c = SpinCalibrator::new();
        // Feed via one handle, observe via budget(): fast direct handoffs.
        for _ in 0..64 {
            c.record_handoff(4, false);
        }
        assert_eq!(c.budget(true), 8); // converged to 2 x 4
        let p = SpinPolicy {
            max_timed_spins: ADAPTIVE_SPIN_CAP,
            max_untimed_spins: ADAPTIVE_SPIN_CAP * 16,
            calibrator: Some(Arc::new(c)),
        };
        let q = p.clone();
        // A sample recorded through one clone is visible through the other.
        for _ in 0..64 {
            p.calibrator().unwrap().record_handoff(32, false);
        }
        assert_eq!(q.spins_for(true), 64);
    }

    #[test]
    fn parked_handoffs_decay_to_park_immediately() {
        let c = SpinCalibrator::new();
        for _ in 0..64 {
            c.record_handoff(ADAPTIVE_SPIN_CAP, true);
        }
        assert_eq!(c.budget(true), 0);
        assert_eq!(c.budget(false), 0);
    }

    #[test]
    fn budget_is_capped() {
        let c = SpinCalibrator::new();
        for _ in 0..128 {
            c.record_handoff(u32::MAX, false);
        }
        assert_eq!(c.budget(true), ADAPTIVE_SPIN_CAP);
        assert_eq!(c.budget(false), ADAPTIVE_SPIN_CAP * 16);
    }

    #[test]
    fn equality_ignores_live_ewma_state() {
        let a = SpinPolicy::adaptive();
        let b = SpinPolicy::adaptive();
        if let Some(c) = a.calibrator() {
            c.record_handoff(64, false);
        }
        assert_eq!(a, b);
        assert_ne!(SpinPolicy::fixed(32), SpinPolicy::park_immediately());
    }
}
